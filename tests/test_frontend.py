"""Unit tests for the loop-kernel front end (lexer, parser, DFG extraction)."""

import pytest

from repro.arch.isa import Opcode
from repro.frontend import (
    EXAMPLE_KERNELS,
    ExtractionError,
    LexerError,
    ParseError,
    example_kernel_source,
    extract_dfg,
    parse_program,
    tokenize,
)
from repro.frontend.ast_nodes import Assignment, BinaryOp, StoreStatement
from repro.frontend.lexer import TokenKind, parse_number
from repro.graphs.analysis import rec_ii


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("acc x = 0xFF; for i in 0..4 { x = x + 1; }")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] is TokenKind.EOF
        texts = [t.text for t in tokens]
        assert "acc" in texts and ".." in texts and "0xFF" in texts

    def test_comments_and_newlines_skipped(self):
        tokens = tokenize("# a comment\n// another\n x")
        assert [t.text for t in tokens[:-1]] == ["x"]
        assert tokens[0].line == 3

    def test_operators_longest_match(self):
        texts = [t.text for t in tokenize("a << 2 >= b") if t.kind is TokenKind.OP]
        assert texts == ["<<", ">="]

    def test_unknown_character(self):
        with pytest.raises(LexerError):
            tokenize("x = $;")

    def test_parse_number(self):
        assert parse_number("0x10") == 16
        assert parse_number("42") == 42


class TestParser:
    def test_program_structure(self):
        program = parse_program(EXAMPLE_KERNELS["dot_product"])
        assert len(program.arrays()) == 2
        assert program.loop.trip_count == 64
        assert program.loop.induction_variable == "i"
        assert isinstance(program.loop.body[0], Assignment)

    def test_declaration_values(self):
        program = parse_program("acc s = 5; input t; for i in 0..2 { s = s + t; }")
        assert program.declaration("s").value == 5
        assert program.declaration("t").value is None
        assert program.declaration("missing") is None

    def test_negative_initialiser(self):
        program = parse_program("acc s = -3; for i in 0..2 { s = s + 1; }")
        assert program.declaration("s").value == -3

    def test_precedence(self):
        program = parse_program("for i in 0..1 { x = 1 + 2 * 3; }")
        expr = program.loop.body[0].value
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_store_statement(self):
        program = parse_program("array a[4]; for i in 0..4 { store(a, i, i); }")
        assert isinstance(program.loop.body[0], StoreStatement)

    def test_ternary_and_calls(self):
        program = parse_program(
            "for i in 0..4 { x = i > 2 ? min(i, 3) : abs(0 - i); }")
        assert program.loop.body[0].value.__class__.__name__ == "Ternary"

    @pytest.mark.parametrize("source", [
        "for i in 0..4 { x = ; }",
        "for i in 0..4 { store(a, 1); }",
        "acc x 3; for i in 0..1 { x = 1; }",
        "for i in 0..4 { x = 1 }",
        "for i in 0..4 { x = min(1); }",
        "x = 3;",
    ])
    def test_malformed_programs_rejected(self, source):
        with pytest.raises(ParseError):
            parse_program(source)


class TestExtraction:
    def test_dot_product_structure(self):
        program = extract_dfg(EXAMPLE_KERNELS["dot_product"], name="dot")
        dfg = program.dfg
        assert dfg.name == "dot"
        opcodes = [n.opcode for n in dfg.nodes()]
        assert opcodes.count(Opcode.LOAD) == 2
        assert Opcode.MUL in opcodes and Opcode.ADD in opcodes
        assert len(dfg.loop_carried_edges()) == 1
        assert program.arrays == {"a": 64, "b": 64}
        assert program.accumulators == {"sum": 0}
        assert program.trip_count == 64
        assert "sum" in program.outputs

    def test_loop_carried_initial_values(self):
        program = extract_dfg(EXAMPLE_KERNELS["crc8"])
        (edge,) = [e for e in program.dfg.loop_carried_edges()]
        assert program.initial_values[edge.src] == 255

    def test_induction_variable_shared(self):
        program = extract_dfg("""
            array a[8];
            acc s = 0;
            for i in 0..8 { s = s + load(a, i) + i; }
        """)
        inductions = [n for n in program.dfg.nodes()
                      if n.opcode is Opcode.INDUCTION]
        assert len(inductions) == 1
        assert program.induction_node == inductions[0].id

    def test_constants_are_deduplicated(self):
        program = extract_dfg("for i in 0..4 { x = 3 + 3; y = x * 3; }")
        constants = [n for n in program.dfg.nodes() if n.opcode is Opcode.CONST]
        assert len(constants) == 1

    def test_use_after_redefinition_is_a_data_edge(self):
        program = extract_dfg("""
            acc s = 0;
            for i in 0..4 {
                s = s + 1;
                t = s * 2;
            }
        """)
        # `t` consumes the *new* value of s: a data edge, not loop-carried.
        dfg = program.dfg
        assert len(dfg.loop_carried_edges()) == 1
        mul_nodes = [n for n in dfg.nodes() if n.opcode is Opcode.MUL]
        assert all(e.kind.value == "data" for e in dfg.in_edges(mul_nodes[0].id))

    def test_fir_delay_line_has_two_recurrences(self):
        program = extract_dfg(EXAMPLE_KERNELS["fir3"])
        assert len(program.dfg.loop_carried_edges()) >= 2
        assert rec_ii(program.dfg) >= 1
        program.dfg.validate()

    def test_memory_ordering_edges(self):
        with_order = extract_dfg(EXAMPLE_KERNELS["stencil3"], order_memory=True)
        without_order = extract_dfg(EXAMPLE_KERNELS["stencil3"],
                                    order_memory=False)
        assert with_order.dfg.num_edges >= without_order.dfg.num_edges

    def test_every_example_kernel_extracts_and_validates(self):
        for name in EXAMPLE_KERNELS:
            program = extract_dfg(example_kernel_source(name), name=name)
            program.dfg.validate()
            assert program.dfg.num_nodes >= 4

    @pytest.mark.parametrize("source,message_part", [
        ("for i in 0..4 { x = y + 1; }", "undefined"),
        ("array a[4]; for i in 0..4 { x = load(b, i); }", "undeclared"),
        ("for i in 0..4 { store(a, i, 1); }", "undeclared"),
        ("input t; for i in 0..4 { t = 1; }", "cannot assign"),
        ("for i in 0..4 { i = 1; }", "induction"),
        ("acc s = 0; for i in 0..4 { x = s + 1; }", "never assigned"),
    ])
    def test_semantic_errors(self, source, message_part):
        with pytest.raises(ExtractionError) as excinfo:
            extract_dfg(source)
        assert message_part in str(excinfo.value)

    def test_unknown_kernel_name(self):
        with pytest.raises(KeyError):
            example_kernel_source("nope")
