"""Differential quality suite for the heuristic and portfolio engines.

The satellite contract of the heuristic subsystem:

(a) every mapping the heuristic or portfolio engine returns passes the
    full validator *and* executes on the cycle-level executor with a value
    trace identical to the sequential reference interpreter -- across
    mesh and torus arrays and two heterogeneous presets;
(b) quality never beats exactness: ``II(heuristic) >= II(exact)`` on every
    solved case, with *equality* on the paper's small kernels under the
    pinned seeds.

Seeds follow the repository convention: the base is fixed and overridable
through ``REPRO_PROPERTY_SEED``, and the heuristic engine resolves its own
RNG seed through the same variable, so one knob pins the whole suite.
"""

import os

import pytest

from repro.arch.cgra import CGRA
from repro.arch.spec import build_preset
from repro.arch.topology import Topology
from repro.core.config import HeuristicConfig, MapperConfig, PortfolioConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.validation import validate_mapping
from repro.graphs.generators import executable_random_dfg
from repro.heuristic.engine import HeuristicMapper
from repro.heuristic.portfolio import PortfolioMapper
from repro.sim.executor import run_and_compare
from repro.workloads.running_example import running_example_dfg
from repro.workloads.suite import load_benchmark

SEED_BASE = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))
ITERATIONS = 6

HOMOGENEOUS = [Topology.TORUS, Topology.MESH]
HETEROGENEOUS_PRESETS = ["memory_column_mesh", "mul_sparse_checkerboard"]

#: the paper's small kernels: the heuristic must *match* the exact II on
#: these under the pinned seeds (they map at mII, which both engines find)
SMALL_KERNELS = ["bitcount", "susan", "sha1", "stringsearch"]


def _heuristic_config(seed: int) -> HeuristicConfig:
    return HeuristicConfig(budget_seconds=30.0, seed=seed)


def _exact_config() -> MapperConfig:
    return MapperConfig(
        time_timeout_seconds=20.0,
        space_timeout_seconds=20.0,
        total_timeout_seconds=40.0,
    )


def _check_differentially(dfg, cgra, result) -> None:
    """Validator + op support + executor-vs-reference trace equality."""
    assert result.success, f"{dfg.name}: {result.summary()}"
    mapping = result.mapping
    assert validate_mapping(mapping) == []
    for node in dfg.nodes():
        assert cgra.pe(mapping.pe(node.id)).supports(node.opcode)
    mapped_trace, reference_trace = run_and_compare(
        mapping, iterations=ITERATIONS)
    assert mapped_trace.values == reference_trace.values


class TestHeuristicHomogeneous:
    @pytest.mark.parametrize("topology", HOMOGENEOUS,
                             ids=[t.value for t in HOMOGENEOUS])
    @pytest.mark.parametrize("offset", range(3))
    def test_mapping_matches_reference(self, topology, offset):
        seed = SEED_BASE + offset
        dfg = executable_random_dfg(8 + offset, seed=seed)
        cgra = CGRA(3, 3, topology=topology)
        result = HeuristicMapper(cgra, _heuristic_config(seed)).map(dfg)
        _check_differentially(dfg, cgra, result)


class TestHeuristicHeterogeneous:
    @pytest.mark.parametrize("preset", HETEROGENEOUS_PRESETS)
    @pytest.mark.parametrize("offset", range(3))
    def test_mapping_matches_reference(self, preset, offset):
        seed = SEED_BASE + 300 + offset
        dfg = executable_random_dfg(8 + offset, seed=seed)
        cgra = build_preset(preset, 3, 3).build()
        result = HeuristicMapper(cgra, _heuristic_config(seed)).map(dfg)
        _check_differentially(dfg, cgra, result)


class TestPortfolioDifferential:
    @pytest.mark.parametrize("preset", [None] + HETEROGENEOUS_PRESETS)
    def test_portfolio_mapping_matches_reference(self, preset):
        seed = SEED_BASE + 400
        dfg = executable_random_dfg(9, seed=seed)
        if preset is None:
            cgra = CGRA(3, 3)
        else:
            cgra = build_preset(preset, 3, 3).build()
        result = PortfolioMapper(
            cgra, PortfolioConfig(budget_seconds=60.0, seed=seed)
        ).map(dfg)
        _check_differentially(dfg, cgra, result)


class TestQualityGate:
    @pytest.mark.parametrize("offset", range(4))
    def test_heuristic_never_beats_exact(self, offset):
        seed = SEED_BASE + 500 + offset
        dfg = executable_random_dfg(8 + offset, seed=seed)
        cgra = CGRA(3, 3)
        exact = MonomorphismMapper(cgra, _exact_config()).map(dfg)
        heuristic = HeuristicMapper(cgra, _heuristic_config(seed)).map(dfg)
        assert exact.success and heuristic.success
        assert heuristic.ii >= exact.ii

    @pytest.mark.parametrize("kernel", SMALL_KERNELS)
    def test_equality_on_the_papers_small_kernels(self, kernel):
        dfg = load_benchmark(kernel)
        cgra = CGRA(4, 4)
        exact = MonomorphismMapper(cgra, _exact_config()).map(dfg)
        heuristic = HeuristicMapper(
            cgra, _heuristic_config(SEED_BASE)).map(dfg)
        assert exact.success and heuristic.success
        assert heuristic.ii == exact.ii, (
            f"{kernel}: heuristic II={heuristic.ii} vs "
            f"exact II={exact.ii} under seed {SEED_BASE}"
        )
        _check_differentially(dfg, cgra, heuristic)

    def test_running_example_maps_at_the_papers_ii(self):
        dfg = running_example_dfg()
        cgra = CGRA(2, 2)
        exact = MonomorphismMapper(cgra, _exact_config()).map(dfg)
        heuristic = HeuristicMapper(
            cgra, _heuristic_config(SEED_BASE)).map(dfg)
        assert exact.success and heuristic.success
        assert heuristic.ii == exact.ii == 4  # paper Fig. 2
