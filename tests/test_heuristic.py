"""Unit tests of the stochastic anytime engine (`repro.heuristic`)."""

import random

import pytest

from repro.arch.cgra import CGRA
from repro.arch.spec import build_preset
from repro.core.config import HeuristicConfig, PortfolioConfig
from repro.core.engine import create_engine, normalize_engine
from repro.core.mapper import MappingStatus, MonomorphismMapper
from repro.core.validation import validate_mapping
from repro.heuristic.anneal import anneal_placement, hop_distances
from repro.heuristic.engine import (
    DEFAULT_HEURISTIC_SEED,
    HeuristicMapper,
    resolve_seed,
)
from repro.heuristic.scheduler import list_schedule
from repro.workloads.suite import load_benchmark


class TestListScheduler:
    def test_schedule_satisfies_all_constraint_families(self, cgra_3x3):
        # gsm needs one slack step at II=4 on 9 PEs (the engine's horizon
        # escalation finds it; here it is passed explicitly)
        dfg = load_benchmark("gsm")
        schedule = list_schedule(dfg, cgra_3x3, ii=4, slack=1)
        assert schedule is not None
        assert schedule.validate_dependences() == []
        assert schedule.max_slot_population() <= cgra_3x3.num_pes
        degree = cgra_3x3.connectivity_degree
        for node_id in dfg.node_ids():
            for slot in range(schedule.ii):
                assert schedule.neighbor_slot_count(node_id, slot) <= degree

    def test_capacity_makes_too_small_ii_fail(self, cgra_2x2):
        # 7 nodes cannot fit 4 PEs at II=1 (capacity), whatever the order
        dfg = load_benchmark("bitcount")
        assert list_schedule(dfg, cgra_2x2, ii=1) is None

    def test_respects_recurrence_upper_bounds(self, cgra_3x3, example_dfg):
        # the running example has RecII 4; a schedule at II=4 must exist
        # and satisfy its loop-carried dependences
        schedule = list_schedule(example_dfg, cgra_3x3, ii=4)
        assert schedule is not None
        assert schedule.validate_dependences() == []

    def test_jitter_is_deterministic_under_a_pinned_rng(self, cgra_3x3):
        dfg = load_benchmark("fft")
        first = list_schedule(dfg, cgra_3x3, ii=7,
                              rng=random.Random(5), jitter=900.0)
        second = list_schedule(dfg, cgra_3x3, ii=7,
                               rng=random.Random(5), jitter=900.0)
        assert first is not None and second is not None
        assert first.start_times == second.start_times

    def test_heterogeneous_support_class_bounds_hold(self):
        cgra = build_preset("mul_sparse_checkerboard", 3, 3).build()
        dfg = load_benchmark("fft")  # contains MULs
        schedule = list_schedule(dfg, cgra, ii=7)
        assert schedule is not None
        from repro.arch.isa import Opcode

        mul_pes = cgra.supporting_pes(Opcode.MUL)
        for slot, nodes in enumerate(schedule.slot_population()):
            muls = [n for n in nodes
                    if dfg.node(n).opcode is Opcode.MUL]
            assert len(muls) <= len(mul_pes)


class TestAnnealPlacement:
    def test_hop_distances_match_torus_structure(self):
        cgra = CGRA(3, 3)
        dist = hop_distances(cgra)
        for pe in range(cgra.num_pes):
            assert dist[pe][pe] == 0
            for other in cgra.neighbors(pe):
                assert dist[pe][other] == 1

    def test_finds_zero_cost_placement(self, cgra_3x3):
        dfg = load_benchmark("gsm")
        schedule = list_schedule(dfg, cgra_3x3, ii=4, slack=1)
        outcome = anneal_placement(schedule, cgra_3x3, random.Random(11))
        assert outcome.found
        assert outcome.cost == 0.0
        # zero cost is validity: wrap it in a Mapping and check for real
        from repro.core.mapping import Mapping

        mapping = Mapping(dfg=dfg, cgra=cgra_3x3, schedule=schedule,
                          placement=outcome.placement)
        assert validate_mapping(mapping) == []

    def test_move_budget_is_honoured(self, cgra_2x2):
        dfg = load_benchmark("aes")
        schedule = list_schedule(dfg, cgra_2x2, ii=14)
        outcome = anneal_placement(schedule, cgra_2x2, random.Random(3),
                                   max_moves=5)
        assert outcome.moves <= 5

    def test_unplaceable_schedule_fails_with_ripups(self, cgra_2x2,
                                                    monkeypatch):
        # 5 operations hand-forced into one kernel slot of a 4-PE array:
        # some (slot, PE) pair is overused in every placement, so the
        # cost can never reach zero -- the annealer must run its rip-up
        # passes and still report failure, never a bogus placement
        import repro.heuristic.anneal as anneal_module
        from repro.core.time_solver import Schedule
        from repro.graphs.dfg import DFG, DependenceKind

        dfg = DFG("overfull")
        for i in range(5):
            dfg.add_node(i)
        for i in range(4):
            dfg.add_edge(i, i + 1, kind=DependenceKind.LOOP_CARRIED,
                         distance=1)
        schedule = Schedule(dfg=dfg, ii=1,
                            start_times={i: 0 for i in range(5)})
        monkeypatch.setattr(anneal_module, "STALL_LIMIT", 5)
        outcome = anneal_placement(schedule, cgra_2x2, random.Random(1),
                                   max_moves=300)
        assert not outcome.found
        assert outcome.cost > 0.0
        assert outcome.ripups >= 1


class TestResolveSeed:
    def test_explicit_seed_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROPERTY_SEED", "123")
        assert resolve_seed(42) == 42

    def test_env_var_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROPERTY_SEED", "123")
        assert resolve_seed(None) == 123

    def test_built_in_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROPERTY_SEED", raising=False)
        assert resolve_seed(None) == DEFAULT_HEURISTIC_SEED


class TestHeuristicMapper:
    def test_maps_the_running_example(self, cgra_3x3, example_dfg):
        result = HeuristicMapper(
            cgra_3x3, HeuristicConfig(budget_seconds=20.0, seed=1)
        ).map(example_dfg)
        assert result.success
        assert result.ii is not None and result.ii >= result.mii
        assert validate_mapping(result.mapping) == []

    def test_same_seed_same_mapping(self, cgra_3x3):
        dfg = load_benchmark("lud")
        config = HeuristicConfig(budget_seconds=20.0, seed=99)
        first = HeuristicMapper(cgra_3x3, config).map(dfg)
        second = HeuristicMapper(cgra_3x3, config).map(dfg)
        assert first.success and second.success
        assert first.ii == second.ii
        assert first.mapping.placement == second.mapping.placement
        assert first.mapping.schedule.start_times == \
            second.mapping.schedule.start_times

    def test_stats_payload_records_the_heuristic_counters(self, cgra_3x3):
        dfg = load_benchmark("bitcount")
        result = HeuristicMapper(
            cgra_3x3, HeuristicConfig(budget_seconds=20.0, seed=2)
        ).map(dfg)
        assert result.success
        stats = result.stats
        assert stats["engine"] == "heuristic"
        assert stats["seed"] == 2
        counters = stats["heuristic"]
        assert counters["schedule_attempts"] >= 1
        assert counters["sa_runs"] >= 1
        assert stats["per_ii"][-1]["ii"] == result.ii
        assert stats["per_ii"][-1]["schedules"] >= 1

    def test_budget_exhaustion_reports_total_timeout(self, cgra_2x2):
        dfg = load_benchmark("cfd")  # 51 nodes on 4 PEs: plenty of work
        result = HeuristicMapper(
            cgra_2x2, HeuristicConfig(budget_seconds=1e-4, seed=1)
        ).map(dfg)
        assert result.status is MappingStatus.TOTAL_TIMEOUT
        assert result.mapping is None
        assert "budget" in result.message

    def test_infeasible_fabric_reports_cleanly(self):
        cgra = build_preset("mul_free_torus", 4, 4).build()
        dfg = load_benchmark("fft")  # contains MULs
        result = HeuristicMapper(
            cgra, HeuristicConfig(budget_seconds=10.0, seed=1)
        ).map(dfg)
        assert result.status is MappingStatus.INFEASIBLE

    def test_opt_pipeline_threads_through(self, cgra_4x4):
        dfg = load_benchmark("aes")
        plain = HeuristicMapper(
            cgra_4x4, HeuristicConfig(budget_seconds=30.0, seed=1)
        ).map(dfg)
        optimized = HeuristicMapper(
            cgra_4x4, HeuristicConfig(budget_seconds=30.0, seed=1,
                                      opt_level="O2")
        ).map(dfg)
        assert plain.success and optimized.success
        assert optimized.opt is not None and optimized.opt.changed
        assert optimized.ii < plain.ii

    def test_never_beats_the_exact_engine(self, cgra_3x3, fast_config):
        for name in ("bitcount", "gsm", "susan"):
            dfg = load_benchmark(name)
            exact = MonomorphismMapper(cgra_3x3, fast_config).map(dfg)
            heuristic = HeuristicMapper(
                cgra_3x3, HeuristicConfig(budget_seconds=30.0, seed=4)
            ).map(dfg)
            assert exact.success and heuristic.success
            assert heuristic.ii >= exact.ii


class TestEngineRegistry:
    def test_aliases_normalize(self):
        assert normalize_engine("mono") == "monomorphism"
        assert normalize_engine("baseline") == "satmapit"
        assert normalize_engine("sa") == "heuristic"
        assert normalize_engine("race") == "portfolio"
        with pytest.raises(ValueError):
            normalize_engine("quantum")

    def test_create_engine_builds_each_backend(self, cgra_2x2):
        from repro.baseline.satmapit import SatMapItMapper
        from repro.heuristic.portfolio import PortfolioMapper

        assert isinstance(create_engine("mono", cgra_2x2),
                          MonomorphismMapper)
        assert isinstance(create_engine("baseline", cgra_2x2),
                          SatMapItMapper)
        assert isinstance(create_engine("heuristic", cgra_2x2, seed=1),
                          HeuristicMapper)
        assert isinstance(create_engine("portfolio", cgra_2x2),
                          PortfolioMapper)

    def test_engines_share_the_map_protocol(self, cgra_2x2, example_dfg):
        for name in ("monomorphism", "heuristic"):
            engine = create_engine(name, cgra_2x2, timeout_seconds=20.0,
                                   seed=1)
            result = engine.map(example_dfg)
            assert result.success
            assert validate_mapping(result.mapping) == []

    def test_portfolio_config_rejects_bad_compositions(self):
        with pytest.raises(ValueError):
            PortfolioConfig(engines=("heuristic", "portfolio"))
        with pytest.raises(ValueError):
            PortfolioConfig(engines=("mono", "monomorphism"))
        with pytest.raises(ValueError):
            PortfolioConfig(engines=())
        with pytest.raises(ValueError):
            PortfolioConfig(budget_seconds=0.0)

    def test_heuristic_config_validation(self):
        with pytest.raises(ValueError):
            HeuristicConfig(budget_seconds=0.0)
        with pytest.raises(ValueError):
            HeuristicConfig(schedules_per_ii=0)
        with pytest.raises(ValueError):
            HeuristicConfig(moves_per_node=0)
