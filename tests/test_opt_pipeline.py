"""Pipeline-level properties of the repro.opt middle-end.

Extends the PR-2 differential harness to the optimizer: every pass
pipeline must preserve executor-vs-reference trace equality on seeded
``executable_random_dfg`` graphs across homogeneous topologies and the
heterogeneous presets, and mapping at O2 must never yield a worse II than
O0 on the built-in benchmarks and frontend kernels.

The seed base is fixed (overridable through ``REPRO_PROPERTY_SEED`` so CI
can pin a second seed explicitly), making every run reproducible.
"""

import os

import pytest

from repro.arch.cgra import CGRA
from repro.arch.spec import build_preset
from repro.arch.topology import Topology
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.validation import validate_mapping
from repro.core.mapper import MonomorphismMapper
from repro.frontend import EXAMPLE_KERNELS, extract_dfg
from repro.graphs.generators import executable_random_dfg
from repro.opt import optimize_dfg, verify_equivalence
from repro.sim.executor import run_and_compare
from repro.sim.machine import DataMemory
from repro.workloads.suite import load_benchmark

SEED_BASE = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))
ITERATIONS = 6

TOPOLOGIES = [Topology.TORUS, Topology.MESH, Topology.DIAGONAL]
HETEROGENEOUS_PRESETS = ["memory_column_mesh", "mul_sparse_checkerboard"]

#: a cross-section of the Table III suite: chain-heavy (big folding wins),
#: split/tree shaped, and the smallest one (nothing to optimize)
BENCHMARK_SAMPLE = ["aes", "sha2", "gsm", "bitcount", "susan"]


def _config(opt_level=0):
    return MapperConfig(
        time_timeout_seconds=20.0,
        space_timeout_seconds=20.0,
        total_timeout_seconds=60.0,
        opt_level=opt_level,
    )


class TestPipelinePreservesSemantics:
    """Every pipeline proves trace equality against the reference."""

    @pytest.mark.parametrize("opt_level", [1, 2])
    @pytest.mark.parametrize("offset", range(4))
    def test_random_executable_graphs(self, opt_level, offset):
        dfg = executable_random_dfg(9 + offset, seed=SEED_BASE + offset)
        result = optimize_dfg(dfg, opt_level=opt_level, verify=True)
        assert result.verified
        assert result.nodes_after <= result.nodes_before
        # and explicitly once more, end to end
        report = verify_equivalence(dfg, result.optimized, result.node_map,
                                    iterations=ITERATIONS)
        assert report.equivalent

    @pytest.mark.parametrize("preset", HETEROGENEOUS_PRESETS)
    def test_heterogeneous_targets_gate_the_pipeline(self, preset):
        dfg = executable_random_dfg(10, seed=SEED_BASE + 17)
        cgra = build_preset(preset, 3, 3).build()
        result = optimize_dfg(dfg, opt_level=2, target=cgra, verify=True)
        assert result.verified


class TestOptimizedMappingDifferential:
    """Optimized graphs map, validate, and execute exactly like the
    reference -- the PR-2 oracle applied after the optimizer."""

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t.value for t in TOPOLOGIES])
    @pytest.mark.parametrize("offset", range(2))
    def test_homogeneous(self, topology, offset):
        dfg = executable_random_dfg(8 + offset, seed=SEED_BASE + 50 + offset)
        cgra = CGRA(3, 3, topology=topology)
        result = MonomorphismMapper(cgra, _config(opt_level=2)).map(dfg)
        assert result.success, result.summary()
        assert validate_mapping(result.mapping) == []
        mapped, reference = run_and_compare(result.mapping,
                                            iterations=ITERATIONS)
        assert mapped.values == reference.values

    @pytest.mark.parametrize("preset", HETEROGENEOUS_PRESETS)
    @pytest.mark.parametrize("offset", range(2))
    def test_heterogeneous(self, preset, offset):
        dfg = executable_random_dfg(8 + offset, seed=SEED_BASE + 80 + offset)
        cgra = build_preset(preset, 3, 3).build()
        result = MonomorphismMapper(cgra, _config(opt_level=2)).map(dfg)
        assert result.success, result.summary()
        assert validate_mapping(result.mapping) == []
        for node in result.mapping.dfg.nodes():
            assert cgra.pe(result.mapping.pe(node.id)).supports(node.opcode)
        mapped, reference = run_and_compare(result.mapping,
                                            iterations=ITERATIONS)
        assert mapped.values == reference.values


class TestO2NeverWorseThanO0:
    """The acceptance bar: O2 yields a validated mapping with II <= O0."""

    @pytest.mark.parametrize("bench_name", BENCHMARK_SAMPLE)
    def test_benchmarks(self, bench_name):
        dfg = load_benchmark(bench_name)
        cgra = CGRA(4, 4)
        base = MonomorphismMapper(cgra, _config(opt_level=0)).map(dfg)
        opt = MonomorphismMapper(cgra, _config(opt_level=2)).map(dfg)
        assert base.success and opt.success
        assert validate_mapping(opt.mapping) == []
        assert opt.ii <= base.ii
        assert opt.mii <= base.mii

    @pytest.mark.parametrize("kernel", sorted(EXAMPLE_KERNELS))
    def test_kernel_examples_map_and_simulate(self, kernel):
        program = extract_dfg(EXAMPLE_KERNELS[kernel], name=kernel)
        cgra = CGRA(4, 4)
        base = MonomorphismMapper(cgra, _config(opt_level=0)).map(program.dfg)
        opt = MonomorphismMapper(cgra, _config(opt_level=2)).map(program.dfg)
        assert base.success and opt.success
        assert opt.ii <= base.ii
        # full frontend flow: initial values remapped onto the optimized
        # graph, mapped execution identical to the sequential reference
        remapped = (program.remapped(opt.opt)
                    if opt.opt is not None else program)
        run_and_compare(opt.mapping, iterations=ITERATIONS,
                        memory=DataMemory(),
                        initial_values=remapped.initial_values)

    def test_baseline_engine_agrees(self):
        dfg = load_benchmark("crc32")
        cgra = CGRA(4, 4)
        base = SatMapItMapper(
            cgra, BaselineConfig(timeout_seconds=30.0)
        ).map(dfg)
        opt = SatMapItMapper(
            cgra, BaselineConfig(timeout_seconds=30.0, opt_level=2)
        ).map(dfg)
        assert base.success and opt.success
        assert opt.ii <= base.ii
        assert opt.opt is not None and opt.opt.verified


class TestMapperIntegration:
    def test_result_carries_the_opt_report(self):
        dfg = load_benchmark("aes")
        result = MonomorphismMapper(CGRA(4, 4),
                                    _config(opt_level=2)).map(dfg)
        assert result.opt is not None
        assert result.opt.nodes_after < result.opt.nodes_before
        assert result.opt.verified
        assert result.opt_seconds > 0.0
        # the returned mapping refers to the optimized graph
        assert result.mapping.dfg.num_nodes == result.opt.nodes_after
        # mII was recomputed post-opt: far below the unoptimized RecII 14
        assert result.mii <= 6
        assert "opt 23->10 nodes" in result.summary()

    def test_opt_level_accepts_labels_and_rejects_junk(self):
        assert MapperConfig(opt_level="O2").opt_level == 2
        assert MapperConfig(opt_level="1").opt_level == 1
        with pytest.raises(ValueError):
            MapperConfig(opt_level="O9")
        with pytest.raises(ValueError):
            MapperConfig(opt_passes=("constfold", "unknown-pass"))

    def test_explicit_passes_through_the_mapper(self):
        dfg = load_benchmark("basicmath")
        config = _config()
        config.opt_passes = ("constfold", "dce")
        result = MonomorphismMapper(CGRA(4, 4), config).map(dfg)
        assert result.success
        assert result.opt is not None and result.opt.changed

    def test_infeasible_still_reports_opt(self):
        program = extract_dfg(EXAMPLE_KERNELS["dot_product"],
                              name="dot_product")
        cgra = build_preset("mul_free_torus", 4, 4).build()
        result = MonomorphismMapper(cgra, _config(opt_level=1)).map(program.dfg)
        assert result.status.value == "infeasible"
        assert result.opt is not None


class TestNonExecutableGraphs:
    """Structural test graphs (decorative opcodes, arity-inconsistent)
    cannot be replayed; verification must skip, not crash, and the
    mapper must still map the optimized graph."""

    def test_chain_dfg_maps_with_opt(self):
        from repro.graphs.generators import chain_dfg, random_dfg
        from repro.opt.verify import is_executable

        chain = chain_dfg(6)
        assert not is_executable(chain)  # ADD nodes with one operand
        result = MonomorphismMapper(CGRA(3, 3), _config(opt_level=2)).map(chain)
        assert result.success
        assert result.opt is not None
        assert result.opt.verification is not None
        assert result.opt.verification.skipped

        rand = random_dfg(10, seed=SEED_BASE)
        result = MonomorphismMapper(CGRA(3, 3), _config(opt_level=1)).map(rand)
        assert result.success

    def test_opt_result_summary_shapes(self):
        from repro.graphs.generators import chain_dfg

        unchanged = optimize_dfg(load_benchmark("bitcount"), opt_level=1)
        assert "no change" in unchanged.summary()
        assert unchanged.remap_node(0) == 0
        changed = optimize_dfg(chain_dfg(4), opt_level=2)
        assert changed.rounds >= 1
