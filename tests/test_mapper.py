"""End-to-end tests of the decoupled mapper and of the coupled baseline."""

import pytest

from repro.arch.cgra import CGRA
from repro.arch.mrrg import TimeAdjacency
from repro.arch.topology import Topology
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MappingStatus, MonomorphismMapper
from repro.core.validation import validate_mapping
from repro.graphs.generators import chain_dfg, random_dfg
from repro.workloads.running_example import running_example_dfg
from repro.workloads.suite import load_benchmark


class TestMonomorphismMapper:
    def test_running_example_reaches_paper_ii(self, cgra_2x2, fast_config):
        result = MonomorphismMapper(cgra_2x2, fast_config).map(running_example_dfg())
        assert result.success
        assert result.mii == 4
        assert result.ii == 4          # the paper's Fig. 2b mapping quality
        assert validate_mapping(result.mapping) == []
        assert result.time_phase_seconds >= 0
        assert result.space_phase_seconds >= 0

    @pytest.mark.parametrize("workload,expected_mii",
                             [("bitcount", 3), ("susan", 2), ("fft", 7),
                              ("crc32", 8), ("sha1", 2)])
    def test_benchmarks_on_4x4(self, workload, expected_mii, fast_config):
        cgra = CGRA(4, 4)
        result = MonomorphismMapper(cgra, fast_config).map(
            load_benchmark(workload))
        assert result.success
        assert result.mii == expected_mii
        assert result.ii >= result.mii
        assert validate_mapping(result.mapping) == []

    def test_larger_cgra_never_worsens_ii(self, fast_config):
        dfg = load_benchmark("lud")
        small = MonomorphismMapper(CGRA(2, 2), fast_config).map(dfg)
        large = MonomorphismMapper(CGRA(5, 5), fast_config).map(dfg)
        assert small.success and large.success
        assert large.ii <= small.ii

    def test_mesh_topology_supported(self, fast_config):
        mapper = MonomorphismMapper(CGRA(3, 3, topology=Topology.MESH),
                                    fast_config)
        result = mapper.map(load_benchmark("bitcount"))
        assert result.success
        assert validate_mapping(result.mapping) == []

    def test_consecutive_mrrg_still_maps_chains(self):
        config = MapperConfig(time_adjacency=TimeAdjacency.CONSECUTIVE,
                              total_timeout_seconds=30)
        result = MonomorphismMapper(CGRA(3, 3), config).map(chain_dfg(6))
        assert result.success
        assert validate_mapping(result.mapping) == []

    def test_no_solution_when_ii_range_is_too_small(self, cgra_2x2):
        config = MapperConfig(max_ii=3, total_timeout_seconds=10)
        result = MonomorphismMapper(cgra_2x2, config).map(running_example_dfg())
        # mII is 4; capping max_ii below it still tries mII..max(mII, max_ii)
        # so the cap is lifted to mII and a solution is found at II = 4.
        assert result.success and result.ii == 4

    def test_total_timeout_status(self, cgra_2x2):
        config = MapperConfig(total_timeout_seconds=0.0,
                              time_timeout_seconds=5,
                              space_timeout_seconds=5)
        result = MonomorphismMapper(cgra_2x2, config).map(load_benchmark("aes"))
        assert not result.success
        assert result.status in (MappingStatus.TOTAL_TIMEOUT,
                                 MappingStatus.TIME_TIMEOUT)
        assert result.timed_out

    def test_result_summary_strings(self, cgra_2x2, fast_config):
        good = MonomorphismMapper(cgra_2x2, fast_config).map(chain_dfg(4))
        assert "II=" in good.summary()
        bad = MonomorphismMapper(
            cgra_2x2, MapperConfig(total_timeout_seconds=0.0)
        ).map(load_benchmark("aes"))
        assert not bad.success
        assert bad.summary()

    def test_random_dfgs_map_and_validate(self, fast_config):
        cgra = CGRA(4, 4)
        mapper = MonomorphismMapper(cgra, fast_config)
        for seed in range(4):
            dfg = random_dfg(12, num_loop_carried=2, seed=seed)
            result = mapper.map(dfg)
            assert result.success, f"seed {seed}: {result.summary()}"
            assert validate_mapping(result.mapping) == []


class TestBaseline:
    def test_running_example(self, cgra_2x2):
        result = SatMapItMapper(cgra_2x2,
                                BaselineConfig(timeout_seconds=30)).map(
            running_example_dfg())
        assert result.success
        assert result.ii == 4
        assert validate_mapping(result.mapping) == []

    @pytest.mark.parametrize("workload", ["bitcount", "susan", "lud"])
    def test_baseline_matches_decoupled_ii(self, workload, cgra_2x2,
                                           fast_config):
        dfg = load_benchmark(workload)
        decoupled = MonomorphismMapper(cgra_2x2, fast_config).map(dfg)
        coupled = SatMapItMapper(cgra_2x2,
                                 BaselineConfig(timeout_seconds=45)).map(dfg)
        assert decoupled.success and coupled.success
        # same mapping quality (the paper's Table III II columns agree)
        assert decoupled.ii == coupled.ii

    def test_baseline_timeout_status(self):
        config = BaselineConfig(timeout_seconds=0.0)
        result = SatMapItMapper(CGRA(4, 4), config).map(load_benchmark("aes"))
        assert not result.success
        assert result.status is MappingStatus.TIME_TIMEOUT

    def test_baseline_validates_its_mappings(self, cgra_3x3):
        result = SatMapItMapper(cgra_3x3,
                                BaselineConfig(timeout_seconds=30)).map(
            chain_dfg(5))
        assert result.success
        assert validate_mapping(result.mapping) == []
