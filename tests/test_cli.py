"""Tests for the repro-map command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map"])
        assert args.benchmark == "running_example"
        assert args.cgra == "4x4"


class TestListCommand:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "aes" in output and "dot_product" in output
        assert "running_example" in output


class TestMapCommand:
    def test_map_running_example(self, capsys):
        assert main(["map", "--cgra", "2x2", "--timeout", "30"]) == 0
        output = capsys.readouterr().out
        assert "II=4" in output
        assert "slot" in output  # kernel table rendered

    def test_map_benchmark_with_json_output(self, capsys, tmp_path):
        out_file = tmp_path / "mapping.json"
        code = main(["map", "--benchmark", "bitcount", "--cgra", "3x3",
                     "--timeout", "30", "--json", str(out_file)])
        assert code == 0
        data = json.loads(out_file.read_text())
        assert data["cgra"]["rows"] == 3
        assert len(data["placement"]) == 7

    def test_map_kernel_example_with_simulation(self, capsys):
        code = main(["map", "--kernel-example", "dot_product", "--cgra", "3x3",
                     "--timeout", "30", "--simulate", "--iterations", "6"])
        assert code == 0
        output = capsys.readouterr().out
        assert "matches the sequential reference" in output

    def test_map_kernel_file(self, capsys, tmp_path):
        source = tmp_path / "kernel.k"
        source.write_text("""
            acc s = 0;
            for i in 0..16 { s = s + i; }
        """)
        code = main(["map", "--kernel-file", str(source), "--cgra", "2x2",
                     "--timeout", "30"])
        assert code == 0

    def test_map_with_baseline(self, capsys):
        code = main(["map", "--benchmark", "bitcount", "--cgra", "2x2",
                     "--timeout", "30", "--baseline"])
        assert code == 0
        assert "II=3" in capsys.readouterr().out

    def test_map_failure_returns_nonzero(self, capsys):
        code = main(["map", "--benchmark", "aes", "--cgra", "2x2",
                     "--timeout", "0.0"])
        assert code == 1

    def test_map_with_heterogeneous_preset(self, capsys):
        code = main(["map", "--benchmark", "bitcount", "--cgra", "4x4",
                     "--arch", "mul_sparse_checkerboard", "--timeout", "30"])
        assert code == 0
        output = capsys.readouterr().out
        assert "heterogeneous" in output

    def test_map_infeasible_fabric_reports_cleanly(self, capsys):
        # fft contains muls; the mul-free fabric must report infeasible,
        # not crash, and exit non-zero
        code = main(["map", "--benchmark", "fft", "--cgra", "4x4",
                     "--arch", "mul_free_torus", "--timeout", "30"])
        assert code == 1
        output = capsys.readouterr().out
        assert "infeasible" in output
        assert "supported by no PE" in output

    def test_map_with_arch_spec_file(self, capsys, tmp_path):
        from repro.arch.spec import build_preset

        path = tmp_path / "fabric.json"
        build_preset("mul_sparse_checkerboard", 3, 3).dump(str(path))
        code = main(["map", "--benchmark", "bitcount", "--cgra", "9x9",
                     "--arch", str(path), "--timeout", "30"])
        assert code == 0
        # the spec file's own size wins over --cgra
        assert "3x3 CGRA" in capsys.readouterr().out


class TestApproachOptions:
    def test_map_with_heuristic_engine(self, capsys):
        code = main(["map", "--benchmark", "bitcount", "--cgra", "3x3",
                     "--approach", "heuristic", "--budget", "20",
                     "--seed", "7"])
        assert code == 0
        output = capsys.readouterr().out
        assert "heuristic engine" in output
        assert "II=3" in output

    def test_map_with_portfolio_engine(self, capsys):
        code = main(["map", "--benchmark", "bitcount", "--cgra", "3x3",
                     "--approach", "portfolio", "--timeout", "60"])
        assert code == 0
        output = capsys.readouterr().out
        assert "portfolio engine" in output
        # the per-engine attribution is printed, winner starred
        assert "* heuristic: success" in output or \
            "* monomorphism: success" in output

    def test_map_heuristic_simulates_correctly(self, capsys):
        code = main(["map", "--kernel-example", "dot_product", "--cgra",
                     "3x3", "--approach", "heuristic", "--timeout", "30",
                     "--simulate", "--iterations", "6"])
        assert code == 0
        assert "matches the sequential reference" in capsys.readouterr().out

    def test_list_enumerates_approaches(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("monomorphism", "satmapit", "heuristic", "portfolio"):
            assert name in output

    def test_sweep_with_backend_and_seed_columns(self, capsys):
        code = main(["sweep", "--benchmarks", "bitcount", "--sizes", "3x3",
                     "--approaches", "heuristic", "--timeout", "30",
                     "--seed", "9", "--solver-backend", "arena", "--quiet"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Backend" in output and "Seed" in output
        assert "9" in output

    def test_map_infeasible_heuristic_exits_nonzero(self, capsys):
        code = main(["map", "--benchmark", "fft", "--cgra", "4x4",
                     "--arch", "mul_free_torus", "--approach", "heuristic",
                     "--timeout", "20"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out


class TestArchCommand:
    def test_arch_list(self, capsys):
        assert main(["arch", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("homogeneous_torus", "memory_column_mesh",
                     "mul_sparse_checkerboard", "mul_free_torus"):
            assert name in output

    def test_arch_show(self, capsys):
        assert main(["arch", "show", "memory_column_mesh",
                     "--size", "3x3"]) == 0
        output = capsys.readouterr().out
        assert "memory_column_mesh" in output and "mesh" in output

    def test_arch_dump_round_trips(self, capsys, tmp_path):
        from repro.arch.spec import ArchSpec, build_preset

        out = tmp_path / "fabric.json"
        code = main(["arch", "dump", "mul_sparse_checkerboard",
                     "--size", "4x4", "--out", str(out)])
        assert code == 0
        loaded = ArchSpec.load(str(out))
        assert loaded == build_preset("mul_sparse_checkerboard", 4, 4)

    def test_arch_dump_to_stdout(self, capsys):
        assert main(["arch", "dump", "homogeneous_torus"]) == 0
        assert '"topology": "torus"' in capsys.readouterr().out

    def test_arch_show_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            main(["arch", "show", "nonexistent_preset"])

    def test_sweep_rejects_unknown_arch_before_spawning_workers(self):
        with pytest.raises(ValueError):
            main(["sweep", "--benchmarks", "bitcount", "--sizes", "2x2",
                  "--arch", "mul_sparse_checkerbord", "--quiet"])  # typo

    def test_sweep_spec_file_collapses_sizes(self, capsys, tmp_path):
        from repro.arch.spec import build_preset

        path = tmp_path / "fabric.json"
        build_preset("mul_sparse_checkerboard", 2, 2).dump(str(path))
        code = main(["sweep", "--benchmarks", "bitcount",
                     "--sizes", "2x2", "5x5", "--arch", str(path),
                     "--timeout", "30", "--quiet"])
        assert code == 0
        output = capsys.readouterr().out
        assert "--sizes ignored" in output
        assert "1 case(s)" in output  # not one per requested size


class TestExperimentSubcommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table3_forwarding(self, capsys):
        code = main(["table3", "--sizes", "2x2", "--benchmarks", "bitcount",
                     "--timeout", "30", "--no-baseline"])
        assert code == 0
        assert "Table III" in capsys.readouterr().out

    def test_archsweep_forwarding(self, capsys):
        code = main(["archsweep", "--benchmarks", "bitcount",
                     "--size", "3x3", "--archs", "homogeneous_torus",
                     "--timeout", "30", "--quiet"])
        assert code == 0
        assert "II per fabric" in capsys.readouterr().out

    def test_optsweep_forwarding(self, capsys):
        code = main(["optsweep", "--benchmarks", "aes", "--size", "4x4",
                     "--opt-levels", "O0", "O2", "--timeout", "30",
                     "--quiet"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Opt-level sweep" in output
        assert "II@O0" in output and "II@O2" in output
        assert "1/1 benchmark(s) improved" in output


class TestOptOptions:
    def test_list_enumerates_presets_kernels_and_passes(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        # one table covering every axis: benchmarks, kernels, fabrics, passes
        for name in ("aes", "dot_product", "running_example",
                     "mul_sparse_checkerboard", "memory_column_mesh",
                     "reassoc", "constfold"):
            assert name in output

    def test_map_opt_level_lowers_ii(self, capsys):
        assert main(["map", "--benchmark", "aes", "--cgra", "4x4",
                     "--timeout", "30", "--opt-level", "O2"]) == 0
        output = capsys.readouterr().out
        assert "opt: 23 -> 10 node(s)" in output
        assert "verified" in output
        assert "II=6" in output

    def test_map_explicit_passes(self, capsys):
        assert main(["map", "--benchmark", "basicmath", "--cgra", "4x4",
                     "--timeout", "30", "--passes", "constfold", "dce"]) == 0
        output = capsys.readouterr().out
        assert "constfold" in output

    def test_map_opt_simulate_kernel_example(self, capsys):
        # the full frontend flow at O2: extraction, optimization (the
        # accumulator reassociation fires on bitcount4), mapping, and a
        # cycle-level run against the reference with remapped initial values
        code = main(["map", "--kernel-example", "bitcount4", "--cgra", "3x3",
                     "--timeout", "30", "--opt-level", "O2", "--simulate",
                     "--iterations", "6"])
        assert code == 0
        assert "matches the sequential reference" in capsys.readouterr().out

    def test_sweep_with_opt_level_shows_column(self, capsys):
        code = main(["sweep", "--benchmarks", "bitcount", "--sizes", "2x2",
                     "--timeout", "30", "--opt-level", "O1", "--quiet"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Opt" in output and "O1" in output

    def test_map_rejects_bad_opt_level(self):
        with pytest.raises(ValueError):
            main(["map", "--benchmark", "bitcount", "--cgra", "2x2",
                  "--opt-level", "O9"])
