"""Tests for the repro-map command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map"])
        assert args.benchmark == "running_example"
        assert args.cgra == "4x4"


class TestListCommand:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "aes" in output and "dot_product" in output
        assert "running_example" in output


class TestMapCommand:
    def test_map_running_example(self, capsys):
        assert main(["map", "--cgra", "2x2", "--timeout", "30"]) == 0
        output = capsys.readouterr().out
        assert "II=4" in output
        assert "slot" in output  # kernel table rendered

    def test_map_benchmark_with_json_output(self, capsys, tmp_path):
        out_file = tmp_path / "mapping.json"
        code = main(["map", "--benchmark", "bitcount", "--cgra", "3x3",
                     "--timeout", "30", "--json", str(out_file)])
        assert code == 0
        data = json.loads(out_file.read_text())
        assert data["cgra"]["rows"] == 3
        assert len(data["placement"]) == 7

    def test_map_kernel_example_with_simulation(self, capsys):
        code = main(["map", "--kernel-example", "dot_product", "--cgra", "3x3",
                     "--timeout", "30", "--simulate", "--iterations", "6"])
        assert code == 0
        output = capsys.readouterr().out
        assert "matches the sequential reference" in output

    def test_map_kernel_file(self, capsys, tmp_path):
        source = tmp_path / "kernel.k"
        source.write_text("""
            acc s = 0;
            for i in 0..16 { s = s + i; }
        """)
        code = main(["map", "--kernel-file", str(source), "--cgra", "2x2",
                     "--timeout", "30"])
        assert code == 0

    def test_map_with_baseline(self, capsys):
        code = main(["map", "--benchmark", "bitcount", "--cgra", "2x2",
                     "--timeout", "30", "--baseline"])
        assert code == 0
        assert "II=3" in capsys.readouterr().out

    def test_map_failure_returns_nonzero(self, capsys):
        code = main(["map", "--benchmark", "aes", "--cgra", "2x2",
                     "--timeout", "0.0"])
        assert code == 1


class TestExperimentSubcommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table3_forwarding(self, capsys):
        code = main(["table3", "--sizes", "2x2", "--benchmarks", "bitcount",
                     "--timeout", "30", "--no-baseline"])
        assert code == 0
        assert "Table III" in capsys.readouterr().out
