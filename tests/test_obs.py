"""Tests for repro.obs: tracing, metrics registry, structured run log."""

import json
import re

import pytest

from repro.obs import logjson, metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with a disabled, empty tracer."""
    obs_trace.disable()
    obs_trace.reset()
    yield
    obs_trace.disable()
    obs_trace.reset()


# --------------------------------------------------------------------- #
# Tracing: spans, nesting, buffers
# --------------------------------------------------------------------- #
class TestSpans:
    def test_disabled_span_is_the_shared_null_object(self):
        # zero-cost disabled path: no per-call allocation at all
        assert obs_trace.span("a") is obs_trace.span("b", x=1)
        with obs_trace.span("a"):
            pass
        assert obs_trace.events() == []

    def test_nesting_parent_ids(self):
        obs_trace.enable()
        with obs_trace.span("outer"):
            with obs_trace.span("mid", ii=3):
                with obs_trace.span("inner"):
                    pass
            with obs_trace.span("mid2"):
                pass
        events = {e["name"]: e for e in obs_trace.events()}
        assert events["outer"]["parent"] == 0
        assert events["mid"]["parent"] == events["outer"]["sid"]
        assert events["inner"]["parent"] == events["mid"]["sid"]
        assert events["mid2"]["parent"] == events["outer"]["sid"]
        assert events["mid"]["args"] == {"ii": 3}
        sids = [e["sid"] for e in events.values()]
        assert len(set(sids)) == len(sids)  # unique span ids

    def test_child_spans_lie_within_the_parent_window(self):
        obs_trace.enable()
        with obs_trace.span("outer"):
            with obs_trace.span("inner"):
                pass
        events = {e["name"]: e for e in obs_trace.events()}
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_add_complete_with_explicit_parent(self):
        obs_trace.enable()
        parent = obs_trace.add_complete("solver:arena", 10.0, 2.0,
                                        conflicts=5)
        child = obs_trace.add_complete("propagate", 10.0, 1.5, parent=parent)
        assert parent and child and parent != child
        events = {e["name"]: e for e in obs_trace.events()}
        assert events["propagate"]["parent"] == parent
        assert events["solver:arena"]["args"]["conflicts"] == 5

    def test_instants_record_under_the_open_span(self):
        obs_trace.enable()
        with obs_trace.span("run"):
            obs_trace.instant("improvement", ii=4)
        instant = [e for e in obs_trace.events() if e["ph"] == "i"][0]
        run = [e for e in obs_trace.events() if e["name"] == "run"][0]
        assert instant["parent"] == run["sid"]
        assert instant["args"] == {"ii": 4}

    def test_trace_labels_slice_the_buffer(self):
        obs_trace.enable()
        obs_trace.push_trace("job-a")
        with obs_trace.span("a"):
            pass
        obs_trace.pop_trace()
        with obs_trace.span("unlabelled"):
            pass
        assert [e["name"] for e in obs_trace.events("job-a")] == ["a"]
        snap = obs_trace.snapshot(trace="job-a", clear=True)
        assert [e["name"] for e in snap["events"]] == ["a"]
        # the slice is gone; the unlabelled event stays
        assert [e["name"] for e in obs_trace.events()] == ["unlabelled"]

    def test_buffer_bound_drops_not_grows(self, monkeypatch):
        monkeypatch.setattr(obs_trace, "MAX_EVENTS", 4)
        obs_trace.enable()
        for index in range(10):
            with obs_trace.span(f"s{index}"):
                pass
        assert len(obs_trace.events()) == 4
        assert obs_trace.snapshot()["dropped"] == 6


class TestIngest:
    def _child_snapshot(self, epoch_offset=5.0):
        """A hand-built snapshot as a forked worker would ship it."""
        return {
            "epoch": obs_trace.snapshot()["epoch"] + epoch_offset,
            "pid": 4242,
            "events": [
                {"name": "engine.map", "ph": "X", "ts": 100.0, "dur": 2.0,
                 "sid": 1, "parent": 0, "tid": 7},
                {"name": "ii_attempt", "ph": "X", "ts": 100.5, "dur": 1.0,
                 "sid": 2, "parent": 1, "tid": 7},
            ],
        }

    def test_ingest_shifts_rebases_and_reparents(self):
        obs_trace.enable()
        with obs_trace.span("race") as race:
            merged = obs_trace.ingest(self._child_snapshot(),
                                      parent_span_id=race.span_id)
        assert merged == 2
        events = {e["name"]: e for e in obs_trace.events()}
        child_root = events["engine.map"]
        child_leaf = events["ii_attempt"]
        # epoch difference of +5s shifts child timestamps forward by 5s
        assert child_root["ts"] == pytest.approx(105.0)
        # the child's root is re-parented under the ingesting span
        assert child_root["parent"] == events["race"]["sid"]
        # intra-child nesting is preserved through the id rebase
        assert child_leaf["parent"] == child_root["sid"]
        assert child_root["sid"] != 1  # rebased off the parent's id space
        assert child_root["proc"] == 4242

    def test_ingest_determinism(self):
        """Same snapshots in, same merged shape out (pinned ids)."""
        shapes = []
        for _ in range(2):
            obs_trace.reset()
            obs_trace.enable()
            with obs_trace.span("race") as race:
                obs_trace.ingest(self._child_snapshot(),
                                 parent_span_id=race.span_id)
                obs_trace.ingest(self._child_snapshot(epoch_offset=1.0),
                                 parent_span_id=race.span_id)
            sids = {e["sid"]: e for e in obs_trace.events() if "sid" in e}
            shapes.append(sorted(
                (e["name"], e.get("proc"),
                 sids[e["parent"]]["name"] if e.get("parent") else None)
                for e in obs_trace.events()))
            # every parent id resolves inside the merged buffer
            for event in obs_trace.events():
                if event.get("parent"):
                    assert event["parent"] in sids
        assert shapes[0] == shapes[1]

    def test_empty_or_none_snapshots_are_noops(self):
        obs_trace.enable()
        assert obs_trace.ingest(None) == 0
        assert obs_trace.ingest({"epoch": 0.0, "events": []}) == 0
        assert obs_trace.events() == []


class TestChromeExport:
    def test_schema_and_microsecond_units(self, tmp_path):
        obs_trace.enable()
        with obs_trace.span("outer", engine="monomorphism"):
            obs_trace.instant("improvement", ii=4)
        path = tmp_path / "trace.json"
        count = obs_trace.write_chrome_trace(str(path))
        assert count == 2
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["span_count"] == 2
        events = doc["traceEvents"]
        # process metadata first, then the recorded events
        assert events[0]["ph"] == "M"
        assert events[0]["name"] == "process_name"
        for event in events:
            assert set(event) >= {"name", "ph", "pid", "tid"}
            if event["ph"] == "X":
                assert "ts" in event and "dur" in event
                assert event["args"]["span_id"] > 0
            if event["ph"] == "i":
                assert event["s"] == "t"
        outer = next(e for e in events if e["name"] == "outer")
        raw = next(e for e in obs_trace.events() if e["name"] == "outer")
        assert outer["ts"] == pytest.approx(raw["ts"] * 1e6, abs=0.2)
        assert outer["args"]["engine"] == "monomorphism"

    def test_export_of_explicit_snapshot(self):
        obs_trace.enable()
        with obs_trace.span("kept"):
            pass
        snap = obs_trace.snapshot()
        obs_trace.reset()
        doc = obs_trace.chrome_trace(snap=snap)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["kept"]


class TestCrossProcessMerge:
    def test_batch_pool_merges_child_traces(self):
        """Two traced pool cases merge under the parent, proc-stamped,
        with every parent id resolving -- twice, identically (pinned
        deterministic engine)."""
        from repro.experiments.batch import BatchCase, BatchRunner

        cases = [BatchCase("running_example", "4x4", "monomorphism", 30.0),
                 BatchCase("running_example", "3x3", "monomorphism", 30.0)]
        shapes = []
        for _ in range(2):
            obs_trace.reset()
            obs_trace.enable()
            report = BatchRunner(jobs=2, progress=None).run(cases)
            assert {r.status for r in report.results} == {"success"}
            events = obs_trace.events()
            procs = {e.get("proc") for e in events if e.get("proc")}
            assert len(procs) == 2  # one child process per case
            sids = {e["sid"] for e in events if e.get("sid")}
            for event in events:
                if event.get("parent"):
                    assert event["parent"] in sids
            shapes.append(sorted(
                (e["name"], e.get("args", {}).get("ii"))
                for e in events if e.get("ph") == "X"))
        assert shapes[0] == shapes[1]
        assert ("engine.map", None) in shapes[0]


# --------------------------------------------------------------------- #
# Metrics registry and Prometheus exposition
# --------------------------------------------------------------------- #
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""   # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"  # more labels
    r" -?[0-9][0-9eE.+-]*$")              # value
COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def assert_valid_exposition(text):
    """Every line is a valid Prometheus text-format line."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert COMMENT_LINE.match(line) or SAMPLE_LINE.match(line), line


class TestMetrics:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        snapshot_before = None  # registry is process-global: reset around
        metrics.reset()
        yield snapshot_before
        metrics.reset()

    def test_counter_gauge_snapshot(self):
        metrics.inc("repro_engine_runs_total", engine="heuristic",
                    status="success")
        metrics.inc("repro_engine_runs_total", 2.0, engine="heuristic",
                    status="success")
        metrics.set_gauge("repro_service_queue_depth", 3)
        snap = metrics.snapshot()
        key = '{engine="heuristic",status="success"}'
        assert snap["repro_engine_runs_total"][key] == 3.0
        assert snap["repro_service_queue_depth"][""] == 3.0

    def test_histogram_buckets_are_cumulative(self):
        for value in (0.004, 0.09, 7.0, 120.0):
            metrics.observe("repro_ii_attempt_seconds", value, engine="x")
        text = metrics.render()
        assert_valid_exposition(text)
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_ii_attempt_seconds_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = int(line.rsplit(" ", 1)[1])
        assert buckets["0.005"] == 1
        assert buckets["0.1"] == 2
        assert buckets["10"] == 3
        assert buckets["+Inf"] == 4
        counts = [buckets[k] for k in
                  ("0.001", "0.005", "0.025", "0.1", "0.5", "2.5", "10",
                   "60", "+Inf")]
        assert counts == sorted(counts)  # cumulative, monotone
        assert "repro_ii_attempt_seconds_sum" in text
        assert 'repro_ii_attempt_seconds_count{engine="x"} 4' in text

    def test_described_families_exposed_even_without_samples(self):
        text = metrics.render()
        assert_valid_exposition(text)
        names = {line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE")}
        assert len(names) >= 12
        assert "repro_store_skipped_lines_total" in names
        assert "# TYPE repro_ii_attempt_seconds histogram" in text

    def test_help_and_type_emitted_once_per_family(self):
        metrics.inc("repro_engine_runs_total", engine="a", status="success")
        metrics.inc("repro_engine_runs_total", engine="b", status="success")
        text = metrics.render()
        assert text.count("# TYPE repro_engine_runs_total counter") == 1
        assert text.count("# HELP repro_engine_runs_total") == 1


# --------------------------------------------------------------------- #
# Structured JSONL run log
# --------------------------------------------------------------------- #
class TestLogJson:
    @pytest.fixture(autouse=True)
    def closed_log(self):
        logjson.close()
        yield
        logjson.close()

    def test_noop_until_configured(self, tmp_path):
        logjson.log("engine_run", engine="x")  # must not raise
        assert logjson.configured() is None

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        logjson.configure(str(path))
        logjson.log("engine_run", engine="heuristic", ii=4, trace=None)
        logjson.log("job", job="j000001", status="done")
        lines = path.read_text().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert [r["record"] for r in records] == ["engine_run", "job"]
        assert records[0]["engine"] == "heuristic"
        assert records[0]["ii"] == 4
        assert all("ts" in r for r in records)

    def test_env_var_configures_lazily(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(logjson.ENV_VAR, str(path))
        monkeypatch.setattr(logjson, "_env_checked", False)
        logjson.log("probe", n=1)
        assert logjson.configured() == str(path)
        assert json.loads(path.read_text())["record"] == "probe"


# --------------------------------------------------------------------- #
# Engine hooks: one taxonomy for every engine
# --------------------------------------------------------------------- #
class TestEngineInstrumentation:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        metrics.reset()
        yield
        metrics.reset()

    def _run(self, approach="monomorphism", **kwargs):
        from repro.core.engine import create_engine
        from repro.experiments.runner import build_cgra_from_arch
        from repro.workloads.suite import load_benchmark

        engine = create_engine(approach, build_cgra_from_arch("4x4", None),
                               timeout_seconds=30.0, **kwargs)
        return engine.map(load_benchmark("running_example"))

    def test_engine_run_moves_counters_without_tracing(self):
        result = self._run()
        assert result.success
        snap = metrics.snapshot()
        key = '{engine="monomorphism",status="success"}'
        assert snap["repro_engine_runs_total"][key] == 1.0
        assert snap["repro_ii_attempt_seconds_count"][
            '{engine="monomorphism"}'] >= 1
        assert obs_trace.events() == []  # tracing stayed off

    def test_traced_profiled_run_synthesizes_solver_spans(self):
        obs_trace.enable()
        result = self._run(profile=True)
        assert result.success
        events = {e["name"]: e for e in obs_trace.events()}
        assert "engine.map" in events
        assert "ii_attempt" in events
        solver = [n for n in events if n.startswith("solver:")]
        assert solver  # synthesized from the perf counters
        # the solver span nests under engine.map via the span stack
        assert events[solver[0]]["parent"] == events["engine.map"]["sid"]

    @pytest.mark.parametrize("approach", ["heuristic", "satmapit"])
    def test_every_engine_emits_the_same_taxonomy(self, approach):
        obs_trace.enable()
        result = self._run(approach=approach, seed=20260730)
        assert result.success
        names = {e["name"] for e in obs_trace.events()}
        assert "engine.map" in names
        assert "ii_attempt" in names
        engine_span = next(e for e in obs_trace.events()
                           if e["name"] == "engine.map")
        assert engine_span["args"]["engine"] == approach
