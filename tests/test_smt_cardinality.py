"""Property tests for the cardinality encodings (capacity / connectivity)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.cardinality import (
    at_least_k,
    at_most_k,
    at_most_one,
    exactly_k,
    exactly_one,
)
from repro.smt.cnf import CNF, TRUE_LIT, FALSE_LIT
from repro.smt.sat import SATSolver


def _count_models(cnf: CNF, variables):
    """Count models projected onto ``variables`` by enumeration."""
    solver = SATSolver.from_cnf(cnf)
    count = 0
    while True:
        result = solver.solve()
        if not result.is_sat:
            return count
        count += 1
        solver.add_clause([
            -v if result.value(v) else v for v in variables
        ])
        if count > 4096:  # pragma: no cover - safety net
            raise AssertionError("runaway enumeration")


def _expected_models(n: int, predicate):
    return sum(
        1 for bits in itertools.product([False, True], repeat=n)
        if predicate(sum(bits))
    )


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=7),
       k=st.integers(min_value=0, max_value=8))
def test_at_most_k_model_count(n, k):
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(n)]
    at_most_k(cnf, variables, k)
    assert _count_models(cnf, variables) == _expected_models(n, lambda s: s <= k)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=7),
       k=st.integers(min_value=0, max_value=8))
def test_at_least_k_model_count(n, k):
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(n)]
    at_least_k(cnf, variables, k)
    assert _count_models(cnf, variables) == _expected_models(n, lambda s: s >= k)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=6),
       k=st.integers(min_value=0, max_value=7))
def test_exactly_k_model_count(n, k):
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(n)]
    exactly_k(cnf, variables, k)
    assert _count_models(cnf, variables) == _expected_models(n, lambda s: s == k)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
def test_exactly_one_model_count(n):
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(n)]
    exactly_one(cnf, variables)
    assert _count_models(cnf, variables) == n


@pytest.mark.parametrize("n", [2, 3, 7, 9])
def test_at_most_one_model_count(n):
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(n)]
    at_most_one(cnf, variables)
    assert _count_models(cnf, variables) == n + 1


def test_constant_literals_are_handled():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(3)]
    # one TRUE literal consumes one unit of the bound
    at_most_k(cnf, variables + [TRUE_LIT], 1)
    assert _count_models(cnf, variables) == 1  # all three must be false... plus
    # FALSE literals are ignored entirely
    cnf2 = CNF()
    variables2 = [cnf2.new_var() for _ in range(3)]
    at_most_one(cnf2, variables2 + [FALSE_LIT])
    assert _count_models(cnf2, variables2) == 4


def test_impossible_bounds_produce_contradiction():
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(2)]
    at_least_k(cnf, variables, 3)
    assert SATSolver.from_cnf(cnf).solve().is_unsat

    cnf2 = CNF()
    at_most_k(cnf2, [TRUE_LIT, TRUE_LIT], 1)
    assert cnf2.contradiction
