"""Tests for the compile service: store, jobs, HTTP daemon, client, CLI."""

import json
import os
import threading

import pytest

from repro.core.mapping import Mapping
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import MapRequest, MappingService, RequestError
from repro.service.server import create_server
from repro.service.store import ResultStore, content_key, file_content_hash
from repro.workloads.suite import load_benchmark


# --------------------------------------------------------------------- #
# The content-addressed store
# --------------------------------------------------------------------- #
class TestContentKey:
    def test_stable_and_order_independent(self):
        a = content_key({"x": 1, "y": [2, 3]})
        b = content_key({"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 24
        assert int(a, 16) >= 0  # hex

    def test_different_content_different_key(self):
        assert content_key({"x": 1}) != content_key({"x": 2})

    def test_file_content_hash_tracks_content(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text('{"a": 1}')
        first = file_content_hash(str(path))
        path.write_text('{"a": 2}')
        assert file_content_hash(str(path)) != first


class TestResultStore:
    def test_sharded_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        keys = [content_key({"n": n}) for n in range(32)]
        for n, key in enumerate(keys):
            store.put(key, {"value": n})
        assert len(store) == 32
        for n, key in enumerate(keys):
            assert store.get(key) == {"key": key, "value": n}
        # 32 random keys land in several distinct shard files
        shard_dir = tmp_path / "results" / "shards"
        assert len(list(shard_dir.glob("*.jsonl"))) > 1

    def test_reload_from_disk(self, tmp_path):
        path = str(tmp_path / "results")
        store = ResultStore(path)
        store.put("a" * 24, {"value": 1})
        reloaded = ResultStore(path)
        assert reloaded.get("a" * 24) == {"key": "a" * 24, "value": 1}

    def test_flat_jsonl_layout(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        store = ResultStore(path)
        store.put("b" * 24, {"value": 2})
        assert os.path.isfile(path)
        assert ResultStore(path).get("b" * 24)["value"] == 2

    def test_readonly_open_is_side_effect_free(self, tmp_path):
        """The satellite fix: opening a store for reading writes nothing."""
        flat = str(tmp_path / "cache.jsonl")
        sharded = str(tmp_path / "results")
        reader = ResultStore(flat, writable=False, header={"jobs": 4})
        assert reader.get("c" * 24) is None
        assert len(reader) == 0
        assert not os.path.exists(flat)
        reader = ResultStore(sharded, writable=False, header={"jobs": 4})
        assert len(reader) == 0
        assert not os.path.exists(sharded)
        with pytest.raises(PermissionError):
            reader.put("c" * 24, {"value": 3})

    def test_header_written_lazily_and_skipped_on_load(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        store = ResultStore(path, header={"jobs": 8})
        assert not os.path.exists(path)  # header is lazy
        store.put("d" * 24, {"value": 4})
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0] == {"header": {"jobs": 8}}
        assert lines[1]["key"] == "d" * 24
        assert len(ResultStore(path)) == 1  # header not indexed

    def test_conflicting_embedded_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        with pytest.raises(ValueError):
            store.put("e" * 24, {"key": "f" * 24})

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        store = ResultStore(path)
        store.put("a1" * 12, {"value": 1})
        with open(path, "a") as handle:
            handle.write('{"key": "trunc')  # simulated torn append
        assert len(ResultStore(path)) == 1


class TestBatchCacheRerun:
    def test_all_hit_rerun_leaves_cache_byte_identical(self, tmp_path):
        """A rerun served entirely from cache appends nothing -- not even
        a header line (the reader-side-effect satellite, end to end)."""
        from repro.experiments.batch import BatchCase, BatchRunner

        cache = str(tmp_path / "cache.jsonl")
        cases = [BatchCase("bitcount", "2x2", "monomorphism", 30.0)]
        runner = BatchRunner(jobs=1, cache_path=cache)
        first = runner.run(cases)
        assert first.results[0].status == "success"
        before = open(cache, "rb").read()
        second = BatchRunner(jobs=1, cache_path=cache).run(cases)
        assert second.cache_hits == 1
        assert open(cache, "rb").read() == before


# --------------------------------------------------------------------- #
# Request validation and store-key derivation
# --------------------------------------------------------------------- #
class TestMapRequest:
    def test_requires_exactly_one_source(self):
        with pytest.raises(RequestError):
            MapRequest.from_payload({})
        with pytest.raises(RequestError):
            MapRequest.from_payload({"benchmark": "crc32",
                                     "kernel": "x = a + b;"})

    def test_rejects_bad_fields(self):
        base = {"benchmark": "crc32"}
        for bad in ({"benchmark": "nope"},
                    dict(base, cgra="4by4"),
                    dict(base, approach="quantum"),
                    dict(base, opt_level="O9"),
                    dict(base, opt_passes=["nope"]),
                    dict(base, solver_backend="z3"),
                    dict(base, seed="seven"),
                    dict(base, budget_seconds=-1),
                    dict(base, strategy="sideways"),
                    dict(base, arch="not_a_preset")):
            with pytest.raises(RequestError):
                MapRequest.from_payload(bad)

    def test_source_spelling_does_not_change_key(self):
        """A kernel by name and the same DFG serialized share a key."""
        by_name = MapRequest.from_payload({"benchmark": "running_example"})
        by_dfg = MapRequest.from_payload(
            {"dfg": load_benchmark("running_example").to_dict()})
        assert (content_key(by_name.store_record())
                == content_key(by_dfg.store_record()))

    def test_key_tracks_result_shaping_knobs_only(self):
        base = {"benchmark": "crc32", "approach": "heuristic", "seed": 7}
        key = content_key(MapRequest.from_payload(base).store_record())
        same = content_key(MapRequest.from_payload(
            dict(base, priority=5)).store_record())
        assert key == same  # priority is transport, not content
        for knob in (dict(base, seed=8),
                     dict(base, strategy="refine"),
                     dict(base, budget_seconds=5),
                     dict(base, opt_level="O2"),
                     dict(base, cgra="5x5")):
            assert content_key(
                MapRequest.from_payload(knob).store_record()) != key

    def test_exact_engine_key_ignores_budget_and_seed(self):
        base = {"benchmark": "crc32", "approach": "monomorphism"}
        key = content_key(MapRequest.from_payload(base).store_record())
        assert content_key(MapRequest.from_payload(
            dict(base, budget_seconds=5, seed=7)).store_record()) == key

    def test_budget_capped_at_server_max(self):
        request = MapRequest.from_payload(
            {"benchmark": "crc32", "budget_seconds": 10_000},
            max_budget_seconds=60.0)
        assert request.budget_seconds == 60.0


# --------------------------------------------------------------------- #
# The service core (no HTTP)
# --------------------------------------------------------------------- #
@pytest.fixture
def service(tmp_path):
    svc = MappingService(store_path=str(tmp_path / "results"), workers=2,
                         default_budget_seconds=20.0)
    yield svc
    svc.shutdown()


REFINE_PAYLOAD = {"benchmark": "running_example", "approach": "heuristic",
                  "strategy": "refine", "seed": 7, "budget_seconds": 20}


class TestMappingService:
    def test_second_identical_request_is_a_pure_store_hit(self, service):
        first = service.submit(dict(REFINE_PAYLOAD))
        list(service.stream_events(first.id))
        assert first.status == "done"
        assert first.cache == "miss"
        runs_before = service.counters["engine_runs"]

        second = service.submit(dict(REFINE_PAYLOAD))
        # done synchronously, straight from the store: no engine ran
        assert second.status == "done"
        assert second.cache == "hit"
        assert service.counters["engine_runs"] == runs_before
        assert second.result["cached"] is True
        assert second.result["mapping"] == first.result["mapping"]
        serve_seconds = second.finished - second.created
        assert serve_seconds < 1.0  # ~zero compute, no queue wait

    def test_hit_survives_service_restart(self, service, tmp_path):
        service.submit(dict(REFINE_PAYLOAD))
        # drain: submit returns a queued job; wait for it
        list(service.stream_events("j000001"))
        fresh = MappingService(store_path=str(tmp_path / "results"),
                               workers=1)
        try:
            job = fresh.submit(dict(REFINE_PAYLOAD))
            assert job.cache == "hit"
            assert fresh.counters["engine_runs"] == 0
        finally:
            fresh.shutdown()

    def test_streamed_improvements_monotonically_decrease(self, service):
        job = service.submit(dict(REFINE_PAYLOAD))
        events = list(service.stream_events(job.id))
        iis = [e["ii"] for e in events if e["event"] == "improvement"]
        assert len(iis) >= 2  # refine genuinely improves, not one-shot
        assert all(a > b for a, b in zip(iis, iis[1:]))
        assert iis[-1] == job.result["ii"]
        assert events[-1]["event"] == "done"

    def test_cache_hit_replays_improvement_stream(self, service):
        first = service.submit(dict(REFINE_PAYLOAD))
        list(service.stream_events(first.id))
        original = [e["ii"] for e in first.events
                    if e["event"] == "improvement"]
        second = service.submit(dict(REFINE_PAYLOAD))
        replayed = [e["ii"] for e in second.events
                    if e["event"] == "improvement"]
        assert replayed == original

    def test_warm_fabric_cache_counts_hits(self, service):
        first = service.submit({"benchmark": "running_example",
                                "approach": "monomorphism"})
        list(service.stream_events(first.id))
        # different kernel, same fabric: at least one worker is warm now;
        # run enough jobs that some land on it
        for name in ("crc32", "bitcount"):
            job = service.submit({"benchmark": name,
                                  "approach": "monomorphism"})
            list(service.stream_events(job.id))
        total = (service.counters["fabric_cache_hits"]
                 + service.counters["engine_runs"])
        assert service.counters["engine_runs"] == 3
        assert total >= 3  # hits only ever add to runs

    def test_cancel_queued_job(self, tmp_path):
        svc = MappingService(workers=1)
        try:
            # occupy the single worker, then cancel a queued job
            running = svc.submit(dict(REFINE_PAYLOAD, seed=11))
            queued = svc.submit(dict(REFINE_PAYLOAD, seed=12))
            svc.cancel(queued.id)
            events = list(svc.stream_events(queued.id))
            assert queued.status == "cancelled"
            assert events[-1]["event"] == "cancelled"
            list(svc.stream_events(running.id))
            assert running.status == "done"
        finally:
            svc.shutdown()

    def test_invalid_payload_rejected_before_queueing(self, service):
        with pytest.raises(RequestError):
            service.submit({"benchmark": "running_example",
                            "approach": "quantum"})
        assert service.counters["submitted"] == 0


# --------------------------------------------------------------------- #
# End to end over real HTTP
# --------------------------------------------------------------------- #
@pytest.fixture
def live_server(tmp_path):
    service = MappingService(store_path=str(tmp_path / "results"),
                             workers=2, default_budget_seconds=20.0)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield service, client
    server.shutdown()
    service.shutdown()


class TestServiceEndToEnd:
    def test_health_and_engine_registry(self, live_server):
        _, client = live_server
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        names = [e["name"] for e in client.engines()["engines"]]
        assert names == ["monomorphism", "satmapit", "heuristic",
                         "portfolio"]

    def test_submit_stream_and_cached_second_request(self, live_server):
        service, client = live_server
        job = client.submit(dict(REFINE_PAYLOAD))
        assert job["status"] in ("queued", "running", "done")

        iis = [e["ii"] for e in client.events(job["id"])
               if e["event"] == "improvement"]
        assert len(iis) >= 2
        assert all(a > b for a, b in zip(iis, iis[1:]))

        done = client.wait(job["id"])
        assert done["result"]["status"] == "success"
        runs_before = service.counters["engine_runs"]

        second = client.submit(dict(REFINE_PAYLOAD))
        assert second["status"] == "done"          # answered synchronously
        assert second["cache"] == "hit"
        assert second["result"]["cached"] is True
        assert second["result"]["mapping"] == done["result"]["mapping"]
        assert service.counters["engine_runs"] == runs_before

        stats = client.store_stats()["store"]
        assert stats["records"] == 1

    def test_mapping_round_trips_through_the_wire(self, live_server):
        _, client = live_server
        job = client.map({"benchmark": "running_example",
                          "approach": "monomorphism"})
        mapping = Mapping.from_dict(job["result"]["mapping"])
        assert mapping.ii == job["result"]["ii"]
        mapping.kernel_table()  # structurally consistent
        # JSON stringifies the int node-id keys; from_dict restores them
        again = Mapping.from_dict(json.loads(mapping.to_json()))
        assert again.to_dict() == mapping.to_dict()

    def test_error_envelopes(self, live_server):
        _, client = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"benchmark": "nope"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        with pytest.raises(ServiceError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/bogus")
        assert excinfo.value.status == 404

    def test_events_resume_from_offset(self, live_server):
        _, client = live_server
        job = client.map({"benchmark": "running_example",
                          "approach": "monomorphism"})
        full = list(client.events(job["id"]))
        tail = list(client.events(job["id"], start=len(full) - 1))
        assert tail == full[-1:]
        assert tail[0]["event"] == "done"

    def test_remote_cli_round_trip(self, live_server, capsys, tmp_path):
        from repro.cli import main

        _, client = live_server
        out_path = str(tmp_path / "mapping.json")
        rc = main(["map", "--benchmark", "running_example",
                   "--approach", "heuristic", "--strategy", "refine",
                   "--seed", "7", "--budget", "20",
                   "--remote", client.base_url, "--json", out_path])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "improvement: II=" in captured
        assert "slot |" in captured  # kernel table rendered locally
        with open(out_path) as handle:
            Mapping.from_dict(json.load(handle))

    def test_serve_cli_status(self, live_server, capsys):
        from repro.service.cli import main as serve_main

        _, client = live_server
        assert serve_main(["status", "--url", client.base_url]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"


# --------------------------------------------------------------------- #
# The refine strategy on the engine itself (no service)
# --------------------------------------------------------------------- #
class TestRefineStrategy:
    def test_refine_reaches_the_same_ii_as_ascend(self):
        from repro.arch.cgra import CGRA
        from repro.core.engine import create_engine

        dfg = load_benchmark("running_example")
        events = []
        refine = create_engine("heuristic", CGRA(4, 4), budget_seconds=20,
                               seed=7, strategy="refine",
                               on_event=events.append)
        ascend = create_engine("heuristic", CGRA(4, 4), budget_seconds=20,
                               seed=7)
        r_refine, r_ascend = refine.map(dfg), ascend.map(dfg)
        assert r_refine.status.value == "success"
        assert r_refine.ii == r_ascend.ii  # per-II outcome is direction-free
        iis = [e["ii"] for e in events if e["event"] == "improvement"]
        assert all(a > b for a, b in zip(iis, iis[1:]))
        assert iis[-1] == r_refine.ii

    def test_unknown_strategy_rejected(self):
        from repro.core.config import HeuristicConfig

        with pytest.raises(ValueError):
            HeuristicConfig(strategy="sideways")

    def test_on_event_exception_propagates(self):
        """Cooperative cancellation: a raising callback aborts map()."""
        from repro.arch.cgra import CGRA
        from repro.core.engine import create_engine

        class Abort(Exception):
            pass

        def explode(_payload):
            raise Abort()

        engine = create_engine("heuristic", CGRA(4, 4), budget_seconds=20,
                               seed=7, strategy="refine", on_event=explode)
        with pytest.raises(Abort):
            engine.map(load_benchmark("running_example"))


# --------------------------------------------------------------------- #
# Observability: /metrics, event timestamps, per-job traces
# --------------------------------------------------------------------- #
class TestServiceObservability:
    def test_every_streamed_event_carries_a_ts(self, service):
        job = service.submit(dict(REFINE_PAYLOAD))
        events = list(service.stream_events(job.id))
        assert events  # submitted .. done at minimum
        stamps = [e["ts"] for e in events]
        assert all(isinstance(ts, float) for ts in stamps)
        assert stamps == sorted(stamps)  # monotonic-anchored ordering

    def test_metrics_exposition_over_http(self, live_server):
        from tests.test_obs import assert_valid_exposition

        service, client = live_server
        first = service.submit({"benchmark": "running_example",
                                "approach": "monomorphism"})
        list(service.stream_events(first.id))
        before = client.metrics()
        assert_valid_exposition(before)
        names = {line.split()[2] for line in before.splitlines()
                 if line.startswith("# TYPE")}
        assert len(names) >= 12

        def sample(text, prefix):
            return sum(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith(prefix) and not line.startswith("#"))

        # a second identical request is a pure store hit: the store-hit
        # counter moves, the engine-run counter does not
        second = service.submit({"benchmark": "running_example",
                                 "approach": "monomorphism"})
        assert second.cache == "hit"
        after = client.metrics()
        assert_valid_exposition(after)
        assert (sample(after, "repro_store_hits_total")
                == sample(before, "repro_store_hits_total") + 1)
        assert (sample(after, "repro_engine_runs_total")
                == sample(before, "repro_engine_runs_total"))
        assert sample(after, 'repro_service_jobs_total{status="hit"}') >= 1
        assert sample(after, "repro_http_requests_total") > 0
        # scrape-time gauges reflect the live store
        assert (sample(after, "repro_store_records")
                == service.store.stats()["records"])

    def test_store_counts_skipped_lines(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        store = ResultStore(path)
        store.put("a1" * 12, {"value": 1})
        with open(path, "a") as handle:
            handle.write('{"key": "torn\n')          # torn append
            handle.write('["not", "a", "dict"]\n')   # foreign line
            handle.write('{"keyless": true}\n')      # keyless non-header
        reloaded = ResultStore(path)
        stats = reloaded.stats()
        assert stats["records"] == 1
        assert stats["skipped_lines"] == 3
        assert stats["header_lines"] == 0

    def test_skipped_lines_surface_in_service_health(self, tmp_path):
        root = tmp_path / "results"
        svc = MappingService(store_path=str(root), workers=1)
        try:
            job = svc.submit({"benchmark": "running_example",
                              "approach": "monomorphism"})
            list(svc.stream_events(job.id))
        finally:
            svc.shutdown()
        shard = next((root / "shards").glob("*.jsonl"))
        with open(shard, "a") as handle:
            handle.write('{"key": "torn')
        fresh = MappingService(store_path=str(root), workers=1)
        try:
            assert fresh.health()["store"]["skipped_lines"] == 1
        finally:
            fresh.shutdown()

    def test_traced_job_exports_one_merged_chrome_trace(self, tmp_path):
        from repro.obs import trace as obs_trace

        obs_trace.reset()
        trace_dir = tmp_path / "traces"
        svc = MappingService(workers=2, trace_dir=str(trace_dir))
        try:
            job = svc.submit({"benchmark": "running_example",
                              "approach": "monomorphism"})
            list(svc.stream_events(job.id))
            assert job.status == "done"
        finally:
            svc.shutdown()
            obs_trace.disable()
            obs_trace.reset()
        path = trace_dir / f"{job.id}.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        # the acceptance chain: HTTP handler -> queue wait -> worker ->
        # engine -> solver tier, all in one file
        for name in ("http.handler", "queue.wait", "worker.run",
                     "engine.map"):
            assert name in spans, sorted(spans)
        assert any(name.startswith("solver:") for name in spans)
        sids = {e["args"]["span_id"] for e in doc["traceEvents"]
                if e["ph"] == "X"}
        engine = spans["engine.map"]
        assert engine["args"]["parent_id"] == \
            spans["worker.run"]["args"]["span_id"]
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            parent = event["args"]["parent_id"]
            assert parent == 0 or parent in sids
            assert event["args"]["trace"] == job.id

    def test_second_traced_job_gets_its_own_file(self, tmp_path):
        from repro.obs import trace as obs_trace

        obs_trace.reset()
        trace_dir = tmp_path / "traces"
        svc = MappingService(workers=1, trace_dir=str(trace_dir))
        try:
            jobs = []
            for benchmark in ("running_example", "bitcount"):
                job = svc.submit({"benchmark": benchmark, "cgra": "2x2"})
                list(svc.stream_events(job.id))
                jobs.append(job)
        finally:
            svc.shutdown()
            obs_trace.disable()
            obs_trace.reset()
        for job in jobs:
            doc = json.loads((trace_dir / f"{job.id}.json").read_text())
            traces = {e["args"]["trace"] for e in doc["traceEvents"]
                      if e["ph"] == "X"}
            assert traces == {job.id}  # no neighbour's spans leaked in
