"""Unit and property tests for the monomorphism search engine."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.cgra import CGRA
from repro.arch.mrrg import MRRG
from repro.core.space_solver import MRRGTarget
from repro.matching.monomorphism import (
    ExplicitTargetGraph,
    MonomorphismSearch,
    PatternGraph,
    find_monomorphism,
)
from repro.matching.nx_backend import networkx_monomorphism
from repro.matching.ordering import degree_order, most_constrained_first_order


def _pattern(labels, edges):
    return PatternGraph.from_edges(labels, edges)


class TestPatternGraph:
    def test_from_edges(self):
        pattern = _pattern({0: "a", 1: "a", 2: "b"}, [(0, 1), (1, 2)])
        assert pattern.num_vertices == 3
        assert pattern.num_edges == 2
        assert pattern.degree(1) == 2

    def test_self_loops_ignored(self):
        pattern = _pattern({0: "a"}, [(0, 0)])
        assert pattern.num_edges == 0

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            _pattern({0: "a"}, [(0, 1)])


class TestOrdering:
    def test_degree_order(self):
        adjacency = {0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
        assert degree_order([0, 1, 2, 3], adjacency)[0] == 0

    def test_most_constrained_first_starts_at_max_degree(self):
        adjacency = {0: {1}, 1: {0, 2, 3}, 2: {1}, 3: {1}}
        order = most_constrained_first_order([0, 1, 2, 3], adjacency)
        assert order[0] == 1
        assert set(order) == {0, 1, 2, 3}

    def test_handles_disconnected_components(self):
        adjacency = {0: {1}, 1: {0}, 2: set(), 3: {4}, 4: {3}}
        order = most_constrained_first_order([0, 1, 2, 3, 4], adjacency)
        assert sorted(order) == [0, 1, 2, 3, 4]


class TestExplicitSearch:
    def test_finds_triangle_in_labelled_square_with_diagonal(self):
        target = ExplicitTargetGraph(
            {0: "x", 1: "x", 2: "x", 3: "x"},
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        pattern = _pattern({10: "x", 11: "x", 12: "x"},
                           [(10, 11), (11, 12), (12, 10)])
        outcome = find_monomorphism(pattern, target)
        assert outcome.found
        search = MonomorphismSearch(pattern, target)
        assert search.verify(outcome.mapping) == []

    def test_respects_labels(self):
        target = ExplicitTargetGraph({0: "a", 1: "b"}, [(0, 1)])
        pattern = _pattern({5: "a", 6: "a"}, [(5, 6)])
        assert not find_monomorphism(pattern, target).found

    def test_injectivity_required(self):
        # two pattern vertices with the same label but only one target vertex
        target = ExplicitTargetGraph({0: "a", 1: "b"}, [(0, 1)])
        pattern = _pattern({5: "a", 6: "a"}, [])
        assert not find_monomorphism(pattern, target).found

    def test_monomorphism_is_not_induced(self):
        # the pattern misses an edge present between the chosen target
        # vertices -- a monomorphism (unlike an induced isomorphism) allows it
        target = ExplicitTargetGraph({0: "x", 1: "x", 2: "x"},
                                     [(0, 1), (1, 2), (0, 2)])
        pattern = _pattern({7: "x", 8: "x", 9: "x"}, [(7, 8), (8, 9)])
        assert find_monomorphism(pattern, target).found

    def test_impossible_edge(self):
        target = ExplicitTargetGraph({0: "a", 1: "b", 2: "c"}, [(0, 1)])
        pattern = _pattern({5: "a", 6: "c"}, [(5, 6)])
        assert not find_monomorphism(pattern, target).found

    def test_custom_order_must_be_permutation(self):
        target = ExplicitTargetGraph({0: "a"}, [])
        pattern = _pattern({5: "a"}, [])
        with pytest.raises(ValueError):
            MonomorphismSearch(pattern, target, order=[5, 5])

    def test_verify_reports_violations(self):
        target = ExplicitTargetGraph({0: "a", 1: "a", 2: "b"}, [(0, 2)])
        pattern = _pattern({5: "a", 6: "a"}, [(5, 6)])
        search = MonomorphismSearch(pattern, target)
        violations = search.verify({5: 0, 6: 0})
        assert any("mono1" in v for v in violations)
        violations = search.verify({5: 0, 6: 2})
        assert any("mono2" in v for v in violations)
        violations = search.verify({5: 0, 6: 1})
        assert any("mono3" in v for v in violations)


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(
        target_nodes=st.integers(min_value=4, max_value=9),
        pattern_nodes=st.integers(min_value=2, max_value=4),
        edge_prob=st.floats(min_value=0.2, max_value=0.7),
        num_labels=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_agreement_with_networkx(self, target_nodes, pattern_nodes,
                                     edge_prob, num_labels, seed):
        rng = random.Random(seed)
        target_nx = nx.gnp_random_graph(target_nodes, edge_prob, seed=seed)
        labels = {n: rng.randrange(num_labels) for n in target_nx.nodes}
        nx.set_node_attributes(target_nx, labels, "label")

        pattern_nx = nx.gnp_random_graph(pattern_nodes, edge_prob, seed=seed + 1)
        pattern_labels = {n: rng.randrange(num_labels) for n in pattern_nx.nodes}
        pattern = PatternGraph.from_edges(pattern_labels, list(pattern_nx.edges))

        target = ExplicitTargetGraph(labels, list(target_nx.edges))
        ours = find_monomorphism(pattern, target)
        reference = networkx_monomorphism(pattern, target_nx)
        assert ours.found == (reference is not None)
        if ours.found:
            search = MonomorphismSearch(pattern, target)
            assert search.verify(ours.mapping) == []


class TestMRRGTarget:
    def test_pattern_fits_into_mrrg(self):
        cgra = CGRA(2, 2)
        mrrg = MRRG(cgra, ii=2)
        target = MRRGTarget(mrrg, pin_first_placement=False)
        # 4 operations per slot (full capacity), chain-connected
        labels = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 5: 1, 6: 0, 7: 1}
        edges = [(i, i + 1) for i in range(7)]
        outcome = find_monomorphism(PatternGraph.from_edges(labels, edges), target)
        assert outcome.found
        # all MRRG vertices distinct and labels respected
        assert len(set(outcome.mapping.values())) == 8
        for node, vertex in outcome.mapping.items():
            assert mrrg.label(vertex) == labels[node]

    def test_seed_candidates_pin_on_torus(self):
        mrrg = MRRG(CGRA(3, 3), ii=2)
        target = MRRGTarget(mrrg, pin_first_placement=True)
        assert list(target.seed_candidates(1)) == [mrrg.vertex(0, 1)]
        unpinned = MRRGTarget(mrrg, pin_first_placement=False)
        assert len(list(unpinned.seed_candidates(1))) == 9

    def test_neighbors_with_label_matches_adjacency(self):
        mrrg = MRRG(CGRA(2, 2), ii=3)
        target = MRRGTarget(mrrg)
        vertex = mrrg.vertex(0, 0)
        for label in range(3):
            neighbors = set(target.neighbors_with_label(vertex, label))
            expected = {u for u in mrrg.neighbors(vertex)
                        if mrrg.label(u) == label}
            assert neighbors == expected

    def test_timeout_reported(self):
        # An impossible, moderately large instance with a tiny timeout either
        # finishes (reporting failure) or reports a timeout -- never hangs.
        cgra = CGRA(2, 2)
        mrrg = MRRG(cgra, ii=1)
        target = MRRGTarget(mrrg, pin_first_placement=False)
        labels = {i: 0 for i in range(4)}
        edges = [(0, 1), (0, 2), (0, 3)]  # needs degree 3 at one vertex
        outcome = find_monomorphism(PatternGraph.from_edges(labels, edges),
                                    target, timeout_seconds=0.05)
        assert not outcome.found
