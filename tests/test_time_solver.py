"""Unit tests for the time phase (modulo scheduling via SAT)."""

import pytest

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.time_solver import Schedule, TimeSolver
from repro.graphs.dfg import DFG
from repro.graphs.generators import chain_dfg, random_dfg


def _check_schedule(schedule: Schedule, cgra: CGRA) -> None:
    """All three constraint families of paper Sec. IV-B must hold."""
    assert schedule.validate_dependences() == []
    assert schedule.max_slot_population() <= cgra.num_pes
    degree = cgra.connectivity_degree
    for node in schedule.dfg.node_ids():
        for slot in range(schedule.ii):
            assert schedule.neighbor_slot_count(node, slot) <= degree


class TestScheduleObject:
    def test_slots_and_iterations(self, example_dfg):
        schedule = Schedule(example_dfg, ii=4,
                            start_times={n: n % 6 for n in example_dfg.node_ids()})
        assert schedule.slot(5) == 1
        assert schedule.iteration(5) == 1
        assert schedule.length == 6
        assert schedule.num_stages == 2

    def test_dependence_validation_flags_violations(self, example_dfg):
        start_times = {n: 0 for n in example_dfg.node_ids()}
        schedule = Schedule(example_dfg, ii=4, start_times=start_times)
        assert schedule.validate_dependences() != []


class TestTimeSolver:
    def test_running_example_at_mii(self, example_dfg, cgra_2x2):
        solver = TimeSolver(example_dfg, cgra_2x2, ii=4)
        schedule = solver.solve()
        assert schedule is not None
        assert schedule.ii == 4
        _check_schedule(schedule, cgra_2x2)

    def test_below_rec_ii_is_unsat(self, example_dfg, cgra_2x2):
        solver = TimeSolver(example_dfg, cgra_2x2, ii=3)
        assert solver.solve() is None

    def test_capacity_constraint_enforced(self):
        # 6 independent nodes, 2-PE-ish CGRA (2x2 = 4 PEs), II = 1:
        # capacity 4 < 6 nodes, so no schedule exists.
        dfg = DFG()
        for i in range(6):
            dfg.add_node(i)
        dfg.add_data_edge(0, 5)  # keep it connected
        cgra = CGRA(2, 2)
        assert TimeSolver(dfg, cgra, ii=1).solve() is None
        assert TimeSolver(dfg, cgra, ii=2).solve() is not None

    def test_capacity_can_be_disabled_for_ablation(self):
        dfg = DFG()
        for i in range(6):
            dfg.add_node(i)
        dfg.add_data_edge(0, 5)
        config = MapperConfig(enforce_capacity=False)
        schedule = TimeSolver(dfg, CGRA(2, 2), ii=1, config=config).solve()
        assert schedule is not None
        assert schedule.max_slot_population() > 4  # violates capacity knowingly

    def test_connectivity_constraint(self, cgra_2x2):
        # a star with 5 leaves: the centre has 5 neighbours but D_M = 3 on a
        # 2x2 CGRA, so at most 3 of them may share a slot.
        dfg = DFG()
        centre = dfg.add_node(0).id
        for i in range(1, 6):
            dfg.add_node(i)
            dfg.add_data_edge(i, centre)
        solver = TimeSolver(dfg, cgra_2x2, ii=2, config=MapperConfig(slack=2))
        schedule = solver.solve()
        assert schedule is not None
        for slot in range(schedule.ii):
            assert schedule.neighbor_slot_count(centre, slot) <= 3

    def test_chain_schedules_are_asap_like(self, cgra_4x4):
        dfg = chain_dfg(6)
        schedule = TimeSolver(dfg, cgra_4x4, ii=6).solve()
        assert schedule is not None
        _check_schedule(schedule, cgra_4x4)

    def test_loop_carried_allows_wrap(self, cgra_4x4):
        dfg = chain_dfg(4)  # recurrence of length 4
        schedule = TimeSolver(dfg, cgra_4x4, ii=4).solve()
        assert schedule is not None
        # the loop-carried edge is satisfied modulo II
        assert schedule.validate_dependences() == []

    def test_iter_schedules_are_distinct_and_valid(self, example_dfg, cgra_2x2):
        solver = TimeSolver(example_dfg, cgra_2x2, ii=4)
        schedules = list(solver.iter_schedules(limit=5))
        assert 1 <= len(schedules) <= 5
        signatures = {tuple(sorted(s.start_times.items())) for s in schedules}
        assert len(signatures) == len(schedules)
        for schedule in schedules:
            _check_schedule(schedule, cgra_2x2)

    def test_slack_override_extends_windows(self, example_dfg, cgra_2x2):
        solver = TimeSolver(example_dfg, cgra_2x2, ii=4, slack=3)
        assert solver.mobs.length == 9
        schedule = solver.solve()
        assert schedule is not None
        _check_schedule(schedule, cgra_2x2)

    def test_auto_slack_for_dense_graphs(self):
        # more nodes than PEs * critical path: the horizon must be extended
        dfg = DFG()
        for i in range(10):
            dfg.add_node(i)
        for i in range(1, 10):
            dfg.add_data_edge(0, i)
        cgra = CGRA(2, 2)
        # the automatic horizon extension guarantees at least ResII steps ...
        assert TimeSolver(dfg, cgra, ii=3).mobs.length >= 3
        # ... but this star-shaped graph needs one more; the mapper finds it
        # through its horizon-retry loop, here we pass the slack explicitly
        solver = TimeSolver(dfg, cgra, ii=3, slack=2)
        schedule = solver.solve()
        assert schedule is not None
        _check_schedule(schedule, cgra)

    def test_invalid_ii(self, example_dfg, cgra_2x2):
        with pytest.raises(ValueError):
            TimeSolver(example_dfg, cgra_2x2, ii=0)

    def test_random_dfg_schedules_satisfy_all_constraints(self, cgra_4x4):
        for seed in range(5):
            dfg = random_dfg(14, num_loop_carried=2, seed=seed)
            solver = TimeSolver(dfg, cgra_4x4, ii=max(4, seed + 4))
            schedule = solver.solve()
            if schedule is not None:
                _check_schedule(schedule, cgra_4x4)
