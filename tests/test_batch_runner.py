"""Tests for the parallel batch experiment engine."""

import os

import pytest

from repro.core.mapper import MappingResult, MappingStatus
from repro.experiments.batch import (
    BatchCase,
    BatchRunner,
    build_cases,
    results_by_case,
)
from repro.experiments.runner import CaseResult, normalize_approach
from repro.workloads.suite import load_benchmark

SMALL_CASES = [
    BatchCase("bitcount", "2x2", "monomorphism", 30.0),
    BatchCase("susan", "2x2", "monomorphism", 30.0),
    BatchCase("bitcount", "2x2", "satmapit", 30.0),
    BatchCase("lud", "3x3", "monomorphism", 30.0),
]


def _signature(result: CaseResult):
    return (result.benchmark, result.cgra_size, result.approach,
            result.status, result.ii, result.mii)


class TestBatchCase:
    def test_approach_normalisation(self):
        assert BatchCase("aes", "2x2", "mono").approach == "monomorphism"
        assert BatchCase("aes", "2x2", "baseline").approach == "satmapit"
        with pytest.raises(ValueError):
            BatchCase("aes", "2x2", "quantum")
        with pytest.raises(ValueError):
            normalize_approach("nope")

    def test_cache_key_depends_on_configuration(self):
        base = BatchCase("aes", "2x2", "monomorphism", 30.0)
        assert base.cache_key() == BatchCase("aes", "2x2", "mono", 30.0).cache_key()
        assert base.cache_key() != BatchCase("aes", "5x5", "mono", 30.0).cache_key()
        assert base.cache_key() != BatchCase("aes", "2x2", "mono", 60.0).cache_key()
        assert base.cache_key() != BatchCase("aes", "2x2", "satmapit", 30.0).cache_key()

    def test_build_cases_grid_order(self):
        cases = build_cases(["a", "b"], ["2x2", "5x5"], ["mono"], 10.0)
        labels = [(c.size, c.benchmark) for c in cases]
        assert labels == [("2x2", "a"), ("2x2", "b"), ("5x5", "a"), ("5x5", "b")]

    def test_cache_key_depends_on_architecture(self, tmp_path):
        base = BatchCase("aes", "2x2", "mono", 30.0)
        preset = BatchCase("aes", "2x2", "mono", 30.0,
                           arch="mul_sparse_checkerboard")
        assert base.cache_key() != preset.cache_key()
        assert preset.cache_key() == BatchCase(
            "aes", "2x2", "mono", 30.0, arch="mul_sparse_checkerboard"
        ).cache_key()
        # a spec *file* is keyed by its content: editing it invalidates
        from repro.arch.spec import build_preset

        path = os.fspath(tmp_path / "fabric.json")
        build_preset("memory_column_mesh", 2, 2).dump(path)
        first = BatchCase("aes", "2x2", "mono", 30.0, arch=path).cache_key()
        build_preset("mul_sparse_checkerboard", 2, 2).dump(path)
        assert BatchCase("aes", "2x2", "mono", 30.0,
                         arch=path).cache_key() != first

    def test_arch_in_label_and_grid(self):
        case = BatchCase("aes", "2x2", "mono", arch="mul_free_torus")
        assert case.label().endswith("/mul_free_torus")
        cases = build_cases(["a"], ["2x2"], ["mono"], 10.0,
                            arch="memory_column_mesh")
        assert all(c.arch == "memory_column_mesh" for c in cases)

    def test_cache_key_depends_on_opt_configuration(self):
        # satellite regression: every mapper-affecting knob must reach the
        # cache key, or stale entries replay across configurations
        base = BatchCase("aes", "2x2", "mono", 30.0)
        o1 = BatchCase("aes", "2x2", "mono", 30.0, opt_level=1)
        o2 = BatchCase("aes", "2x2", "mono", 30.0, opt_level=2)
        assert len({base.cache_key(), o1.cache_key(), o2.cache_key()}) == 3
        # "O2", "2" and 2 are one configuration -> one key
        assert o2.cache_key() == BatchCase(
            "aes", "2x2", "mono", 30.0, opt_level="O2").cache_key()
        assert o2.cache_key() == BatchCase(
            "aes", "2x2", "mono", 30.0, opt_level="2").cache_key()
        # explicit pass lists are their own axis (list == tuple)
        passes = BatchCase("aes", "2x2", "mono", 30.0,
                           opt_passes=("constfold", "dce"))
        assert passes.cache_key() not in {base.cache_key(), o2.cache_key()}
        assert passes.cache_key() == BatchCase(
            "aes", "2x2", "mono", 30.0,
            opt_passes=["constfold", "dce"]).cache_key()
        assert passes.cache_key() != BatchCase(
            "aes", "2x2", "mono", 30.0, opt_passes=("dce",)).cache_key()
        # opt configuration shows up in the progress label
        assert o2.label().endswith("/O2")
        assert passes.label().endswith("/passes=constfold,dce")

    def test_cache_key_folds_native_tiers_onto_the_arena_key(self):
        # the native tiers are bit-identical to the arena solver (the
        # differential backend matrix proves it), so their results are
        # interchangeable and must share one cache key -- a cache built
        # under "arena" keeps hitting when the native kernel lands
        base = BatchCase("aes", "2x2", "mono", 30.0)
        for backend in ("arena", "native", "native-c", "numpy"):
            case = BatchCase("aes", "2x2", "mono", 30.0,
                             solver_backend=backend)
            assert case.cache_key() == base.cache_key(), backend
        # the reference oracle is a different kernel: its own key
        reference = BatchCase("aes", "2x2", "mono", 30.0,
                              solver_backend="reference")
        assert reference.cache_key() != base.cache_key()

    def test_opt_in_build_cases_grid(self):
        cases = build_cases(["a"], ["2x2"], ["mono"], 10.0, opt_level="O2",
                            opt_passes=None)
        assert all(c.opt_level == 2 for c in cases)

    def test_cache_key_depends_on_solver_backend(self):
        # satellite: --solver-backend is a scenario axis and must key the
        # cache; the default arena kernel normalises to one configuration
        base = BatchCase("aes", "2x2", "mono", 30.0)
        arena = BatchCase("aes", "2x2", "mono", 30.0, solver_backend="arena")
        reference = BatchCase("aes", "2x2", "mono", 30.0,
                              solver_backend="reference")
        assert base.cache_key() == arena.cache_key()
        assert base.cache_key() != reference.cache_key()
        assert reference.label().endswith("/reference")
        # the heuristic engine uses no SAT kernel: a backend must not
        # fragment its keys (the portfolio's exact members do use it)
        assert BatchCase("aes", "2x2", "heuristic", 30.0,
                         solver_backend="reference").cache_key() == \
            BatchCase("aes", "2x2", "heuristic", 30.0).cache_key()
        assert BatchCase("aes", "2x2", "portfolio", 30.0,
                         solver_backend="reference").cache_key() != \
            BatchCase("aes", "2x2", "portfolio", 30.0).cache_key()

    def test_seed_keys_only_stochastic_approaches(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROPERTY_SEED", raising=False)
        from repro.heuristic.engine import DEFAULT_HEURISTIC_SEED

        # exact engines are deterministic: a seed must not fragment keys
        assert BatchCase("aes", "2x2", "mono", 30.0, seed=7).cache_key() \
            == BatchCase("aes", "2x2", "mono", 30.0).cache_key()
        # stochastic engines resolve the seed eagerly (explicit > env >
        # default) so the *effective* seed keys the cache
        default = BatchCase("aes", "2x2", "heuristic", 30.0)
        assert default.seed == DEFAULT_HEURISTIC_SEED
        pinned = BatchCase("aes", "2x2", "heuristic", 30.0, seed=7)
        assert pinned.seed == 7
        assert pinned.cache_key() != default.cache_key()
        assert pinned.cache_key() == BatchCase(
            "aes", "2x2", "sa", 30.0, seed=7).cache_key()
        assert pinned.label().endswith("/seed=7")
        monkeypatch.setenv("REPRO_PROPERTY_SEED", "31337")
        env_seeded = BatchCase("aes", "2x2", "heuristic", 30.0)
        assert env_seeded.seed == 31337
        assert env_seeded.cache_key() != default.cache_key()

    def test_portfolio_and_heuristic_in_the_grid(self):
        cases = build_cases(["a"], ["2x2"], ["heuristic", "portfolio"],
                            10.0, seed=3)
        assert [c.approach for c in cases] == ["heuristic", "portfolio"]
        assert all(c.seed == 3 for c in cases)


class TestBatchRunner:
    def test_parallel_results_match_serial_order_and_values(self):
        serial = BatchRunner(jobs=1).run(SMALL_CASES)
        parallel = BatchRunner(jobs=3).run(SMALL_CASES)
        assert [_signature(r) for r in serial.results] == [
            _signature(r) for r in parallel.results
        ]
        assert serial.succeeded == len(SMALL_CASES)
        lookup = results_by_case(SMALL_CASES, parallel)
        assert lookup[("bitcount", "2x2", "monomorphism")].ii == 3

    def test_cache_hit_short_circuits_execution(self, tmp_path):
        path = os.fspath(tmp_path / "cache.jsonl")
        cases = SMALL_CASES[:2]
        first = BatchRunner(jobs=2, cache_path=path).run(cases)
        assert first.executed == 2 and first.cache_hits == 0
        second = BatchRunner(jobs=2, cache_path=path).run(cases)
        assert second.executed == 0 and second.cache_hits == 2
        assert [_signature(r) for r in first.results] == [
            _signature(r) for r in second.results
        ]
        # a different configuration is a different key: it must execute
        third = BatchRunner(jobs=1, cache_path=path).run(
            [BatchCase("bitcount", "2x2", "monomorphism", 31.0)]
        )
        assert third.executed == 1 and third.cache_hits == 0

    def test_stale_cache_never_replays_across_opt_configs(self, tmp_path):
        # the same benchmark/size/approach at O0 and O2 produce different
        # IIs; a cache written at O0 must not serve the O2 case
        path = os.fspath(tmp_path / "cache.jsonl")
        o0_case = BatchCase("aes", "4x4", "monomorphism", 60.0)
        o2_case = BatchCase("aes", "4x4", "monomorphism", 60.0, opt_level=2)
        first = BatchRunner(jobs=1, cache_path=path).run([o0_case])
        assert first.executed == 1 and first.results[0].succeeded
        second = BatchRunner(jobs=1, cache_path=path).run([o2_case])
        assert second.executed == 1 and second.cache_hits == 0
        assert second.results[0].ii < first.results[0].ii  # aes: 6 vs 14
        assert second.results[0].opt_level == 2
        assert second.results[0].nodes_opt < second.results[0].nodes
        # both configurations now hit, each under its own key
        third = BatchRunner(jobs=1, cache_path=path).run([o0_case, o2_case])
        assert third.executed == 0 and third.cache_hits == 2
        assert third.results[0].ii == first.results[0].ii
        assert third.results[1].ii == second.results[0].ii

    def test_heterogeneous_cases_run_through_the_engine(self):
        # the architecture axis end to end: same kernel, three fabrics,
        # including one where it is infeasible
        cases = [
            BatchCase("fft", "4x4", "monomorphism", 30.0),
            BatchCase("fft", "4x4", "monomorphism", 30.0,
                      arch="mul_sparse_checkerboard"),
            BatchCase("fft", "4x4", "monomorphism", 30.0,
                      arch="mul_free_torus"),
        ]
        report = BatchRunner(jobs=1).run(cases)
        homogeneous, checker, mul_free = report.results
        assert homogeneous.succeeded and checker.succeeded
        assert checker.arch == "mul_sparse_checkerboard"
        assert checker.ii >= homogeneous.ii  # restriction cannot help
        assert mul_free.status == MappingStatus.INFEASIBLE.value
        assert "supported by no PE" in mul_free.message

    def test_synthetic_results_keep_the_architecture(self):
        case = BatchCase("aes", "2x2", "mono", 30.0,
                         arch="mul_sparse_checkerboard")
        synthetic = BatchRunner._synthetic_result(case, "hard_timeout", 1.0)
        assert synthetic.arch == "mul_sparse_checkerboard"
        assert synthetic.status == "hard_timeout"

    def test_cache_tolerates_garbage_lines(self, tmp_path):
        path = os.fspath(tmp_path / "cache.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n{\"key\": \"missing-result\"}\n\n")
        report = BatchRunner(jobs=1, cache_path=path).run(SMALL_CASES[:1])
        assert report.executed == 1 and report.succeeded == 1

    def test_hard_timeout_is_enforced_and_records_elapsed(self):
        # particlefilter on 20x20 takes far longer than the 0.3 s hard cap
        case = BatchCase("particlefilter", "20x20", "satmapit", 120.0)
        report = BatchRunner(jobs=1, hard_timeout_seconds=0.3).run([case])
        result = report.results[0]
        assert result.status == "hard_timeout"
        assert report.hard_timeouts == 1
        assert result.total_seconds is not None and result.total_seconds >= 0.3
        assert result.ii is None

    def test_worker_errors_are_reported_not_raised(self):
        report = BatchRunner(jobs=1).run(
            [BatchCase("no-such-benchmark", "2x2", "monomorphism", 5.0)]
        )
        result = report.results[0]
        assert result.status == "error"
        assert "no-such-benchmark" in result.message
        assert report.errors == 1

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=0)


class TestCaseResultTiming:
    def test_failed_cases_keep_their_elapsed_time(self):
        dfg = load_benchmark("bitcount")
        failed = MappingResult(
            status=MappingStatus.TIME_TIMEOUT,
            mii=3,
            time_phase_seconds=1.5,
            space_phase_seconds=0.25,
            total_seconds=1.75,
            message="SAT solver timed out on II=3",
        )
        case = CaseResult.from_mapping_result(
            "bitcount", "2x2", "monomorphism", dfg, failed
        )
        assert case.status == "time_timeout"
        assert case.total_seconds == pytest.approx(1.75)
        assert case.time_phase_seconds == pytest.approx(1.5)
        assert case.space_phase_seconds == pytest.approx(0.25)
        assert case.message == "SAT solver timed out on II=3"


class TestStochasticEnginesInTheBatchLayer:
    def test_heuristic_and_portfolio_cases_run_and_cache(self, tmp_path):
        path = os.fspath(tmp_path / "cache.jsonl")
        cases = [
            BatchCase("bitcount", "3x3", "heuristic", 30.0, seed=5),
            BatchCase("bitcount", "3x3", "portfolio", 60.0, seed=5),
        ]
        first = BatchRunner(jobs=1, cache_path=path).run(cases)
        assert first.executed == 2
        heuristic, portfolio = first.results
        assert heuristic.succeeded and portfolio.succeeded
        assert heuristic.approach == "heuristic"
        assert heuristic.seed == 5
        assert portfolio.winner is not None
        assert portfolio.portfolio  # per-engine outcomes persisted
        # the cache round-trips every new field (per_ii, portfolio, seed)
        second = BatchRunner(jobs=1, cache_path=path).run(cases)
        assert second.executed == 0 and second.cache_hits == 2
        assert second.results[0].seed == 5
        assert second.results[1].winner == portfolio.winner

    def test_per_ii_attribution_reaches_the_case_result(self):
        report = BatchRunner(jobs=1).run(
            [BatchCase("aes", "2x2", "monomorphism", 30.0)]
        )
        result = report.results[0]
        assert result.succeeded
        assert result.iis_tried >= 1
        assert result.per_ii, "per-II attribution missing from the batch layer"
        last = result.per_ii[-1]
        assert last["ii"] == result.ii
        assert last["schedules"] >= 1
        assert result.iis_tried == len(result.per_ii)

    def test_per_ii_attribution_for_the_coupled_baseline(self):
        report = BatchRunner(jobs=1).run(
            [BatchCase("bitcount", "2x2", "satmapit", 30.0)]
        )
        result = report.results[0]
        assert result.succeeded
        assert result.per_ii is not None
        assert result.per_ii[-1]["ii"] == result.ii
