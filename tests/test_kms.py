"""Unit tests for the Kernel Mobility Schedule (paper Table II)."""

import pytest

from repro.graphs.analysis import mobility_schedule
from repro.graphs.generators import chain_dfg
from repro.graphs.kms import KernelMobilitySchedule


@pytest.fixture
def example_kms(example_dfg):
    return KernelMobilitySchedule(mobility_schedule(example_dfg), ii=4)


class TestFolding:
    def test_number_of_foldings(self, example_kms):
        # ceil(MobS length / II) = ceil(6/4) = 2 interleaved iterations.
        assert example_kms.num_foldings == 2

    def test_entry_count_equals_total_mobility(self, example_dfg, example_kms):
        mobs = mobility_schedule(example_dfg)
        expected = sum(len(list(mobs.window(n))) for n in example_dfg.node_ids())
        assert example_kms.num_entries == expected

    def test_slot_and_iteration_of_time(self, example_kms):
        assert example_kms.slot_of_time(5) == 1
        assert example_kms.iteration_of_time(5) == 1
        assert example_kms.iteration_of_time(3) == 0

    def test_rows_reproduce_paper_table2_structure(self, example_kms):
        rows = example_kms.rows()
        assert len(rows) == 4
        # Slot 0 holds the MobS time-0 nodes (iteration 0) and time-4 nodes
        # (iteration 1); Table II row 0.
        assert set(rows[0]) == {(0, 0), (1, 0), (2, 0), (3, 0), (4, 0),
                                (7, 1), (9, 1), (12, 1), (13, 1)}
        # Slot 1: MobS time 1 (iteration 0) and time 5 (iteration 1).
        assert set(rows[1]) == {(0, 0), (1, 0), (2, 0), (3, 0), (5, 0), (11, 0),
                                (10, 1), (13, 1)}

    def test_candidate_slots(self, example_kms):
        assert example_kms.candidate_slots(4) == {0}
        assert example_kms.candidate_slots(13) == {3, 0, 1}
        assert example_kms.candidate_times(13) == [3, 4, 5]

    def test_entries_for_slot_and_node(self, example_kms):
        for entry in example_kms.entries_for_slot(2):
            assert entry.slot == 2
        node_entries = example_kms.entries_for_node(0)
        assert {e.time for e in node_entries} == {0, 1, 2}

    def test_formatted_rows(self, example_kms):
        lines = example_kms.formatted_rows()
        assert len(lines) == 4
        assert lines[0].startswith("0:")
        assert "4_0" in lines[0]

    def test_max_population_counts_distinct_nodes(self, example_kms):
        assert example_kms.max_population() >= 4

    def test_invalid_arguments(self, example_dfg, example_kms):
        with pytest.raises(ValueError):
            KernelMobilitySchedule(mobility_schedule(example_dfg), ii=0)
        with pytest.raises(ValueError):
            example_kms.entries_for_slot(9)


class TestOtherGraphs:
    def test_chain_kms_single_candidate_per_node(self):
        dfg = chain_dfg(6)
        kms = KernelMobilitySchedule(mobility_schedule(dfg), ii=3)
        assert kms.num_foldings == 2
        for node in dfg.node_ids():
            assert len(kms.candidate_slots(node)) == 1

    def test_ii_larger_than_mobs_means_single_folding(self):
        dfg = chain_dfg(4)
        kms = KernelMobilitySchedule(mobility_schedule(dfg), ii=8)
        assert kms.num_foldings == 1
        assert all(e.iteration == 0 for e in kms.entries())
