"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch.cgra import CGRA
from repro.arch.topology import Topology
from repro.core.config import MapperConfig
from repro.workloads.running_example import running_example_dfg


@pytest.fixture
def cgra_2x2() -> CGRA:
    return CGRA(2, 2)


@pytest.fixture
def cgra_3x3() -> CGRA:
    return CGRA(3, 3)


@pytest.fixture
def cgra_4x4() -> CGRA:
    return CGRA(4, 4)


@pytest.fixture
def mesh_3x3() -> CGRA:
    return CGRA(3, 3, topology=Topology.MESH)


@pytest.fixture
def example_dfg():
    return running_example_dfg()


@pytest.fixture
def fast_config() -> MapperConfig:
    """A mapper configuration with small budgets suitable for unit tests."""
    return MapperConfig(
        time_timeout_seconds=20.0,
        space_timeout_seconds=20.0,
        total_timeout_seconds=45.0,
    )
