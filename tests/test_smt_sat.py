"""Unit and property tests for the CNF container and the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.cnf import CNF, FALSE_LIT, TRUE_LIT, VariablePool, negate
from repro.smt.sat import SATSolver, SolveStatus, solve_brute_force


class TestCNF:
    def test_variable_pool_keys(self):
        pool = VariablePool()
        x = pool.var(("x", 1))
        assert pool.var(("x", 1)) == x
        assert pool.key_of(x) == ("x", 1)
        assert pool.lookup(("y", 2)) is None
        with pytest.raises(ValueError):
            pool.new_var(("x", 1))

    def test_tautology_dropped(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v, -v])
        assert cnf.num_clauses == 0

    def test_constant_literals(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([TRUE_LIT, v])        # dropped
        cnf.add_clause([FALSE_LIT, v])       # reduces to [v]
        assert cnf.clauses == [[v]]
        cnf.add_clause([FALSE_LIT])
        assert cnf.contradiction

    def test_negate(self):
        assert negate(3) == -3
        assert negate(TRUE_LIT) == FALSE_LIT
        assert negate(FALSE_LIT) == TRUE_LIT

    def test_invalid_literal(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_dimacs_output(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf 2 1")
        assert "1 -2 0" in text


class TestSATSolverBasics:
    def test_trivial_sat(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        result = solver.solve()
        assert result.is_sat and result.value(a)

    def test_trivial_unsat(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve().is_unsat

    def test_empty_clause_is_unsat(self):
        solver = SATSolver()
        solver.add_clause([])
        assert solver.solve().is_unsat

    def test_implication_chain(self):
        solver = SATSolver()
        variables = [solver.new_var() for _ in range(20)]
        solver.add_clause([variables[0]])
        for a, b in zip(variables, variables[1:]):
            solver.add_clause([-a, b])
        result = solver.solve()
        assert result.is_sat
        assert all(result.value(v) for v in variables)

    def test_exactly_one_of_three(self):
        solver = SATSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b, c])
        for x, y in [(a, b), (a, c), (b, c)]:
            solver.add_clause([-x, -y])
        result = solver.solve()
        assert result.is_sat
        assert sum(result.value(v) for v in (a, b, c)) == 1

    def test_pigeonhole_unsat(self):
        # 4 pigeons into 3 holes: classic small UNSAT instance.
        solver = SATSolver()
        holes = 3
        pigeons = 4
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve().is_unsat

    def test_model_enumeration_via_blocking_clauses(self):
        solver = SATSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        models = set()
        while True:
            result = solver.solve()
            if not result.is_sat:
                break
            model = (result.value(a), result.value(b))
            models.add(model)
            solver.add_clause([
                -a if model[0] else a,
                -b if model[1] else b,
            ])
        assert models == {(True, True), (True, False), (False, True)}

    def test_conflict_budget_returns_unknown(self):
        solver = SATSolver()
        variables = [solver.new_var() for _ in range(30)]
        rng = random.Random(0)
        for _ in range(130):
            clause = rng.sample(variables, 3)
            solver.add_clause([v if rng.random() < 0.5 else -v for v in clause])
        result = solver.solve(max_conflicts=1)
        assert result.status in (SolveStatus.SAT, SolveStatus.UNSAT,
                                 SolveStatus.UNKNOWN)

    def test_from_cnf(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([a])
        assert SATSolver.from_cnf(cnf).solve().is_sat
        cnf.add_clause([FALSE_LIT])
        assert SATSolver.from_cnf(cnf).solve().is_unsat


def _random_cnf(num_vars: int, num_clauses: int, seed: int) -> CNF:
    rng = random.Random(seed)
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(num_vars)]
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        chosen = rng.sample(variables, min(width, num_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        num_vars=st.integers(min_value=2, max_value=10),
        num_clauses=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=100_000),
    )
    def test_cdcl_agrees_with_brute_force(self, num_vars, num_clauses, seed):
        cnf = _random_cnf(num_vars, num_clauses, seed)
        expected = solve_brute_force(cnf)
        solver = SATSolver.from_cnf(cnf)
        result = solver.solve()
        assert result.status == expected.status
        if result.is_sat:
            # the model must actually satisfy every clause
            for clause in cnf.clauses:
                assert any(result.value(lit) for lit in clause)

    def test_brute_force_guard(self):
        cnf = _random_cnf(30, 10, 0)
        with pytest.raises(ValueError):
            solve_brute_force(cnf)
