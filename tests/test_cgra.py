"""Unit tests for the CGRA array model."""

import pytest

from repro.arch.cgra import CGRA
from repro.arch.isa import Opcode
from repro.arch.topology import Topology


class TestConstruction:
    def test_basic_properties(self, cgra_3x3):
        assert cgra_3x3.num_pes == 9
        assert cgra_3x3.rows == 3 and cgra_3x3.cols == 3
        assert len(cgra_3x3.pes) == 9

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            CGRA(0, 3)
        with pytest.raises(ValueError):
            CGRA(1, 1)

    def test_non_square_arrays_supported(self):
        cgra = CGRA(2, 5)
        assert cgra.num_pes == 10
        assert cgra.pe_position(7) == (1, 2)

    def test_equality_and_hash(self):
        assert CGRA(3, 3) == CGRA(3, 3)
        assert CGRA(3, 3) != CGRA(3, 3, topology=Topology.MESH)
        assert hash(CGRA(2, 2)) == hash(CGRA(2, 2))

    def test_equality_and_hash_include_operation_sets(self):
        # heterogeneous arrays must not collide as cache/dict keys
        hetero = CGRA(2, 2, pe_operations={0: [Opcode.ADD, Opcode.CONST]})
        same = CGRA(2, 2, pe_operations={0: [Opcode.ADD, Opcode.CONST]})
        assert hetero != CGRA(2, 2)
        assert hetero == same and hash(hetero) == hash(same)
        assert CGRA(2, 2) != CGRA(2, 2, operations=[Opcode.ADD])
        assert len({CGRA(2, 2), hetero, CGRA(2, 2, operations=[Opcode.ADD])}) == 3

    def test_restricted_operations(self):
        cgra = CGRA(2, 2, operations=[Opcode.ADD, Opcode.CONST])
        assert cgra.supports_everywhere(Opcode.ADD)
        assert not cgra.supports_everywhere(Opcode.MUL)

    def test_per_pe_operations(self):
        cgra = CGRA(2, 2, pe_operations={2: [Opcode.ADD]})
        assert not cgra.is_homogeneous
        assert cgra.supporting_pes(Opcode.MUL) == frozenset({0, 1, 3})
        assert cgra.supporting_pes(Opcode.ADD) == frozenset({0, 1, 2, 3})
        assert cgra.supports(0, Opcode.MUL) and not cgra.supports(2, Opcode.MUL)

    def test_pe_operations_index_out_of_range(self):
        with pytest.raises(ValueError):
            CGRA(2, 2, pe_operations={4: [Opcode.ADD]})


class TestIndexing:
    def test_round_trip(self, cgra_4x4):
        for index in range(cgra_4x4.num_pes):
            row, col = cgra_4x4.pe_position(index)
            assert cgra_4x4.pe_index(row, col) == index
            assert cgra_4x4.pe(index).index == index

    def test_out_of_range(self, cgra_2x2):
        with pytest.raises(ValueError):
            cgra_2x2.pe_position(4)
        with pytest.raises(ValueError):
            cgra_2x2.pe_index(2, 0)


class TestAdjacency:
    def test_paper_connectivity_degrees(self):
        # D_M = 3 for a 2x2 array and 5 for 3x3 and larger (paper Sec. IV-B3).
        assert CGRA(2, 2).connectivity_degree == 3
        assert CGRA(3, 3).connectivity_degree == 5
        assert CGRA(5, 5).connectivity_degree == 5
        assert CGRA(20, 20).connectivity_degree == 5

    def test_torus_has_uniform_degree_but_mesh_does_not(self):
        assert CGRA(3, 3).has_uniform_degree
        assert not CGRA(3, 3, topology=Topology.MESH).has_uniform_degree

    def test_adjacency_is_symmetric(self, cgra_3x3):
        for a in range(cgra_3x3.num_pes):
            for b in range(cgra_3x3.num_pes):
                assert cgra_3x3.adjacent(a, b) == cgra_3x3.adjacent(b, a)

    def test_adjacent_or_self(self, cgra_2x2):
        assert cgra_2x2.adjacent_or_self(0, 0)
        assert cgra_2x2.adjacent_or_self(0, 1)
        assert not cgra_2x2.adjacent(0, 0)

    def test_2x2_torus_diagonal_not_adjacent(self, cgra_2x2):
        # PE0 (0,0) and PE3 (1,1) are diagonal: not connected even on a torus.
        assert not cgra_2x2.adjacent(0, 3)
        assert not cgra_2x2.adjacent_or_self(0, 3)

    def test_neighbors_or_self_contains_self(self, cgra_4x4):
        for index in range(cgra_4x4.num_pes):
            assert index in cgra_4x4.neighbors_or_self(index)
            assert index not in cgra_4x4.neighbors(index)

    def test_torus_wraparound_adjacency(self):
        cgra = CGRA(4, 4)
        top_left = cgra.pe_index(0, 0)
        top_right = cgra.pe_index(0, 3)
        bottom_left = cgra.pe_index(3, 0)
        assert cgra.adjacent(top_left, top_right)
        assert cgra.adjacent(top_left, bottom_left)

    def test_mesh_no_wraparound(self):
        cgra = CGRA(4, 4, topology=Topology.MESH)
        assert not cgra.adjacent(cgra.pe_index(0, 0), cgra.pe_index(0, 3))

    def test_spatial_graph_has_self_loops_and_edges(self, cgra_3x3):
        graph = cgra_3x3.spatial_graph()
        assert graph.number_of_nodes() == 9
        assert graph.has_edge(0, 0)  # self loop
        assert graph.has_edge(0, 1)

    def test_degree_counts_self_loop(self, cgra_3x3):
        for index in range(cgra_3x3.num_pes):
            assert cgra_3x3.degree(index) == len(cgra_3x3.neighbors(index)) + 1
