"""Tests for the experiment drivers (Tables I-III, Fig. 5, ablation)."""

import pytest

from repro.experiments import ablation, arch_sweep, fig5, table1_table2, table3
from repro.experiments.paper_data import (
    PAPER_AVERAGE_CTR,
    PAPER_FIG5_AES,
    PAPER_TABLE3,
)
from repro.experiments.runner import (
    average,
    build_cgra,
    compilation_time_ratio,
    parse_size,
    run_baseline_case,
    run_decoupled_case,
)


class TestRunner:
    def test_parse_size(self):
        assert parse_size("10x10") == (10, 10)
        assert build_cgra("3x4").num_pes == 12
        with pytest.raises(ValueError):
            parse_size("abc")
        with pytest.raises(ValueError):
            parse_size("0x3")

    def test_average_ignores_timeouts(self):
        assert average([1.0, None, 3.0]) == 2.0
        assert average([None, None]) is None

    def test_decoupled_and_baseline_cases(self):
        mono = run_decoupled_case("bitcount", "2x2", timeout_seconds=30)
        base = run_baseline_case("bitcount", "2x2", timeout_seconds=30)
        assert mono.succeeded and base.succeeded
        assert mono.ii == base.ii == 3
        ratio = compilation_time_ratio(mono, base)
        assert ratio is None or ratio > 0


class TestPaperData:
    def test_every_benchmark_covered_for_every_size(self):
        for size, entries in PAPER_TABLE3.items():
            assert len(entries) == 17, size

    def test_average_ctr_reported_for_all_sizes(self):
        assert set(PAPER_AVERAGE_CTR) == set(PAPER_TABLE3)
        assert PAPER_AVERAGE_CTR["20x20"] == pytest.approx(10288.89)

    def test_ctr_computation(self):
        aes_2x2 = PAPER_TABLE3["2x2"]["aes"]
        assert aes_2x2.mono_total == pytest.approx(0.42)
        assert aes_2x2.ctr == pytest.approx(2.57 / 0.42, rel=1e-3)
        assert PAPER_TABLE3["2x2"]["cfd"].ctr is None

    def test_fig5_series_derived_from_table3(self):
        assert PAPER_FIG5_AES["satmapit"]["20x20"] is None
        assert PAPER_FIG5_AES["monomorphism"]["2x2"] == pytest.approx(0.42)

    def test_paper_speedups_grow_with_cgra_size(self):
        values = [PAPER_AVERAGE_CTR[s] for s in ("2x2", "5x5", "10x10", "20x20")]
        assert values == sorted(values)


class TestTable1Table2:
    def test_table1_matches_paper(self):
        table = table1_table2.build_table1()
        assert len(table) == 6
        assert all(match == "yes" for match in table.column("match"))

    def test_table2_structure(self):
        table = table1_table2.build_table2(ii=4)
        assert len(table) == 4

    def test_summary_lines(self):
        lines = table1_table2.summary_lines()
        assert any("mII" in line and "4" in line for line in lines)

    def test_main_runs(self, capsys):
        assert table1_table2.main([]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output and "Table II" in output


class TestTable3Driver:
    def test_small_block_without_baseline(self):
        block = table3.run_size_block(
            "2x2", ["bitcount", "susan"], timeout_seconds=30, run_baseline=False
        )
        table = table3.block_to_table(block)
        assert len(table) == 3  # two benchmarks + average row
        rendered = table.render()
        assert "bitcount" in rendered and "paper II" in rendered

    def test_small_block_with_baseline_and_checks(self):
        block = table3.run_size_block(
            "2x2", ["bitcount"], timeout_seconds=30, run_baseline=True
        )
        lines = table3.qualitative_checks(block)
        assert any("same II" in line for line in lines)

    def test_main_with_subset(self, capsys):
        code = table3.main([
            "--sizes", "2x2", "--benchmarks", "bitcount", "--timeout", "30",
            "--no-baseline",
        ])
        assert code == 0
        assert "Table III block" in capsys.readouterr().out


class TestFig5Driver:
    def test_run_fig5_small(self):
        data = fig5.run_fig5(benchmark="bitcount", sizes=["2x2", "3x3"],
                             timeout_seconds=30, run_baseline=False)
        assert len(data["rows"]) == 2
        table = fig5.fig5_table(data)
        assert len(table) == 2

    def test_main_small(self, capsys):
        code = fig5.main(["--benchmark", "bitcount", "--sizes", "2x2",
                          "--timeout", "30", "--no-baseline"])
        assert code == 0
        assert "Fig. 5" in capsys.readouterr().out


class TestArchSweepDriver:
    def test_build_arch_cases_grid(self):
        cases = arch_sweep.build_arch_cases(
            ["bitcount", "susan"], "3x3",
            ["homogeneous_torus", "mul_free_torus"], 20.0,
        )
        assert len(cases) == 4
        assert [(c.benchmark, c.arch) for c in cases] == [
            ("bitcount", "homogeneous_torus"),
            ("bitcount", "mul_free_torus"),
            ("susan", "homogeneous_torus"),
            ("susan", "mul_free_torus"),
        ]
        assert all(c.size == "3x3" for c in cases)

    def test_main_compares_fabrics(self, capsys):
        code = arch_sweep.main([
            "--benchmarks", "fft", "--size", "4x4",
            "--archs", "homogeneous_torus", "mul_free_torus",
            "--timeout", "30", "--quiet",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "II per fabric" in output
        # fft needs muls: feasible on the torus, infeasible mul-free
        assert "infeasible" in output

    def test_main_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            arch_sweep.main(["--benchmarks", "not_a_benchmark", "--quiet"])

    def test_main_rejects_unknown_arch_before_spawning_workers(self):
        with pytest.raises(ValueError):
            arch_sweep.main(["--benchmarks", "bitcount",
                             "--archs", "mul_sparse_checkerbord",  # typo
                             "--quiet"])


class TestAblationDriver:
    def test_variants_defined(self):
        assert "full" in ablation.VARIANTS
        assert "no-connectivity" in ablation.VARIANTS

    def test_run_ablation_subset(self):
        records = ablation.run_ablation(
            ["bitcount"], size="2x2", timeout_seconds=20,
            variants=["full", "no-connectivity"],
        )
        assert len(records) == 2
        table = ablation.ablation_table(records)
        assert len(table) == 2
        statuses = {r["variant"]: r["status"] for r in records}
        assert statuses["full"] == "success"
