"""Differential property suite: flat-arena kernel vs the pre-rewrite kernel.

:mod:`repro.smt.sat` (the flat-arena rewrite) and
:mod:`repro.smt.sat_reference` (the pre-rewrite kernel, kept as the oracle)
must agree on *results* everywhere the repo exercises a solver:

* identical SAT/UNSAT status on random CNF across push/pop/assumption
  schedules (models are validated against the clauses, not compared --
  distinct kernels may return different satisfying assignments),
* identical failed-core *sets* for UNSAT answers under assumptions, with
  each core additionally re-asserted UNSAT on a fresh oracle solver,
* identical *model sets* under exhaustive blocking-clause enumeration
  (this is what proves the minimal-backtrack enumeration entry of the
  arena kernel sound: same models, no repeats, none missing),
* identical schedule feasibility and schedule counts on real time-phase
  instances driven through both backends of the SMT layer.

The seed base is fixed (overridable through ``REPRO_PROPERTY_SEED`` so CI
can pin it explicitly), making every run reproducible.
"""

import os
import random

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.time_solver import IncrementalTimeSolver
from repro.smt.cnf import CNF
from repro.smt.csp import FiniteDomainProblem, resolve_solver_backend
from repro.smt.sat import SATSolver, solve_brute_force
from repro.smt.sat_reference import ReferenceSATSolver
from repro.workloads.suite import load_benchmark

SEED_BASE = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))

TIME_PHASE_BENCHMARKS = ["bitcount", "gsm", "crc32"]


def _available_native_tiers():
    """Non-arena kernel tiers usable in this environment.

    The numpy fallback rides on the repo's hard numpy dependency, so the
    matrix always has at least one compiled tier; the C tier joins in
    whenever cffi + a toolchain can build it (CI and the dev image both
    can).
    """
    from repro.smt.native import KERNEL_TIERS

    tiers = [
        tier for tier in KERNEL_TIERS
        if tier.name != "arena" and tier.available()
    ]
    assert tiers, "the numpy fallback tier must always be available"
    return tiers


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> CNF:
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(num_vars)]
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        chosen = rng.sample(variables, min(width, num_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


def _model_satisfies(result, cnf: CNF) -> bool:
    return all(any(result.value(lit) for lit in clause)
               for clause in cnf.clauses)


def _random_3sat(rng: random.Random, num_vars: int, ratio: float = 4.2) -> CNF:
    """Uniform width-3 CNF near the phase transition (conflict-heavy)."""
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(num_vars)]
    for _ in range(int(num_vars * ratio)):
        chosen = rng.sample(variables, 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


class TestRandomCNF:
    def test_status_and_core_sets_match_across_assumption_schedules(self):
        cores_checked = 0
        for case in range(120):
            rng = random.Random(SEED_BASE + case)
            num_vars = rng.randint(3, 10)
            cnf = _random_cnf(rng, num_vars, rng.randint(3, 30))
            arena = SATSolver.from_cnf(cnf)
            reference = ReferenceSATSolver.from_cnf(cnf)
            for _ in range(4):
                k = rng.randint(0, min(4, num_vars))
                variables = rng.sample(range(1, num_vars + 1), k)
                assumptions = [
                    v if rng.random() < 0.5 else -v for v in variables
                ]
                res_a = arena.solve(assumptions=assumptions)
                res_r = reference.solve(assumptions=assumptions)
                assert res_a.status == res_r.status, (case, assumptions)
                if res_a.is_sat:
                    assert _model_satisfies(res_a, cnf), case
                    assert all(res_a.value(lit) for lit in assumptions)
                elif res_a.core is not None:
                    assert res_r.core is not None, case
                    assert set(res_a.core) == set(res_r.core), (
                        case, assumptions, res_a.core, res_r.core)
                    assert set(res_a.core) <= set(assumptions), case
                    # the core is genuinely inconsistent: re-asserting it
                    # on a fresh oracle solver is UNSAT
                    oracle = ReferenceSATSolver.from_cnf(cnf)
                    for literal in res_a.core:
                        oracle.add_clause([literal])
                    assert oracle.solve().is_unsat, (case, res_a.core)
                    cores_checked += 1
        assert cores_checked >= 10  # the sweep must actually exercise cores

    def test_status_matches_across_push_pop_interleavings(self):
        for case in range(80):
            rng = random.Random(SEED_BASE + 10_000 + case)
            num_vars = rng.randint(3, 8)
            variables = list(range(1, num_vars + 1))
            cnf = _random_cnf(rng, num_vars, rng.randint(2, 14))
            arena = SATSolver.from_cnf(cnf)
            reference = ReferenceSATSolver.from_cnf(cnf)
            for step in range(12):
                action = rng.random()
                if action < 0.3 and arena.scope_depth < 3:
                    arena.push()
                    reference.push()
                elif action < 0.45 and arena.scope_depth > 0:
                    arena.pop()
                    reference.pop()
                elif action < 0.6:
                    width = rng.randint(1, 3)
                    chosen = rng.sample(variables, min(width, num_vars))
                    clause = [
                        v if rng.random() < 0.5 else -v for v in chosen
                    ]
                    arena.add_clause(list(clause))
                    reference.add_clause(list(clause))
                elif action < 0.8:
                    res_a = arena.solve()
                    res_r = reference.solve()
                    assert res_a.status == res_r.status, (case, step)
                else:
                    k = rng.randint(1, min(3, num_vars))
                    assumptions = [
                        v if rng.random() < 0.5 else -v
                        for v in rng.sample(variables, k)
                    ]
                    res_a = arena.solve(assumptions=assumptions)
                    res_r = reference.solve(assumptions=assumptions)
                    assert res_a.status == res_r.status, (case, step)
                    if res_a.is_unsat and res_a.core is not None:
                        assert res_r.core is not None
                        assert set(res_a.core) == set(res_r.core), (
                            case, step)

    def test_exhaustive_model_enumeration_matches(self):
        """Same model *sets* under blocking-clause enumeration.

        This exercises the arena kernel's minimal-backtrack solve entry
        (blocking clause integrated into the deep trail) against the
        reference kernel's restart-from-scratch enumeration, and against
        the brute-force oracle.
        """

        def enumerate_models(solver, num_vars):
            models = set()
            while True:
                result = solver.solve()
                if not result.is_sat:
                    return models
                model = tuple(
                    result.value(v) for v in range(1, num_vars + 1)
                )
                assert model not in models, "kernel repeated a model"
                models.add(model)
                solver.add_clause([
                    (-v if model[v - 1] else v)
                    for v in range(1, num_vars + 1)
                ])

        for case in range(40):
            rng = random.Random(SEED_BASE + 20_000 + case)
            num_vars = rng.randint(2, 7)
            cnf = _random_cnf(rng, num_vars, rng.randint(1, 3 * num_vars))
            arena_models = enumerate_models(SATSolver.from_cnf(cnf), num_vars)
            reference_models = enumerate_models(
                ReferenceSATSolver.from_cnf(cnf), num_vars)
            assert arena_models == reference_models, case
            expected = solve_brute_force(cnf)
            assert expected.is_sat == bool(arena_models), case


class TestTimePhaseInstances:
    """Both backends on the real formulas the mapper produces."""

    def test_schedule_feasibility_and_counts_match(self):
        for name in TIME_PHASE_BENCHMARKS:
            dfg = load_benchmark(name)
            cgra = CGRA(4, 4)
            solvers = {
                backend: IncrementalTimeSolver(
                    dfg, cgra,
                    MapperConfig(solver_backend=backend),
                )
                for backend in ("arena", "reference")
            }
            from repro.graphs.analysis import rec_ii, res_ii
            mii = max(res_ii(dfg, cgra.num_pes), rec_ii(dfg))
            for ii in range(max(1, mii - 1), mii + 3):
                counts = {}
                for backend, solver in solvers.items():
                    counts[backend] = sum(
                        1 for _ in solver.iter_schedules(
                            ii, limit=6, timeout_seconds=60)
                    )
                assert counts["arena"] == counts["reference"], (name, ii)

    def test_backend_threads_through_the_mapper(self):
        dfg = load_benchmark("bitcount")
        results = {
            backend: MonomorphismMapper(
                CGRA(4, 4), MapperConfig(solver_backend=backend)
            ).map(dfg)
            for backend in ("arena", "reference")
        }
        assert results["arena"].status == results["reference"].status
        assert results["arena"].ii == results["reference"].ii
        assert results["arena"].stats["backend"] == "arena"
        assert results["reference"].stats["backend"] == "reference"

    def test_resolve_solver_backend(self):
        assert resolve_solver_backend("arena") is SATSolver
        assert resolve_solver_backend(None) is SATSolver
        assert resolve_solver_backend("reference") is ReferenceSATSolver
        assert resolve_solver_backend(ReferenceSATSolver) is ReferenceSATSolver
        try:
            resolve_solver_backend("nope")
        except ValueError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("unknown backend must raise")

    def test_reference_backend_through_finite_domain_problem(self):
        problem = FiniteDomainProblem(solver_cls="reference")
        x = problem.new_int("x", 0, 3)
        y = problem.new_int("y", 0, 3)
        problem.add_ge(y, x, 1)
        solution = problem.solve()
        assert solution is not None
        assert solution.value(y) >= solution.value(x) + 1
        seen = {
            (s.value(x), s.value(y))
            for s in problem.enumerate_solutions(block_on=[x, y])
        }
        assert seen == {(a, b) for a in range(4) for b in range(4) if b >= a + 1}


class TestNativeBackendMatrix:
    """Compiled tiers must be *bit-identical* to the arena solver.

    The native tiers reuse the arena solver's state and algorithms (the C
    kernel mirrors the hot loop, the numpy tier vectorises two cold
    paths), so the contract is stronger than the reference oracle's: not
    just equal statuses and core sets, but identical models, identical
    core literal order, and identical conflict/decision/propagation
    counters. ``BatchCase.cache_key`` relies on this when it folds every
    native spelling onto the arena cache key.
    """

    @staticmethod
    def _enumerate(solver, num_vars):
        models = []
        while True:
            result = solver.solve()
            if not result.is_sat:
                return models
            model = tuple(result.value(v) for v in range(1, num_vars + 1))
            models.append(model)
            solver.add_clause([
                (-v if model[v - 1] else v) for v in range(1, num_vars + 1)
            ])

    def test_statuses_models_cores_and_counters_match_arena(self):
        for tier in _available_native_tiers():
            cls = tier.solver_class()
            for case in range(40):
                rng = random.Random(SEED_BASE + 30_000 + case)
                num_vars = rng.randint(3, 12)
                cnf = _random_cnf(rng, num_vars, rng.randint(3, 40))
                arena = SATSolver.from_cnf(cnf)
                native = cls.from_cnf(cnf)
                for _ in range(4):
                    k = rng.randint(0, min(4, num_vars))
                    variables = rng.sample(range(1, num_vars + 1), k)
                    assumptions = [
                        v if rng.random() < 0.5 else -v for v in variables
                    ]
                    res_a = arena.solve(assumptions=assumptions)
                    res_n = native.solve(assumptions=assumptions)
                    context = (tier.name, case, assumptions)
                    assert res_n.status == res_a.status, context
                    assert res_n.conflicts == res_a.conflicts, context
                    assert res_n.decisions == res_a.decisions, context
                    assert res_n.propagations == res_a.propagations, context
                    if res_a.is_sat:
                        model_a = tuple(
                            res_a.value(v) for v in range(1, num_vars + 1))
                        model_n = tuple(
                            res_n.value(v) for v in range(1, num_vars + 1))
                        assert model_n == model_a, context
                    else:
                        assert res_n.core == res_a.core, context

    def test_enumeration_model_sequences_match_arena(self):
        """Same models in the same order, not merely the same set."""
        for tier in _available_native_tiers():
            cls = tier.solver_class()
            for case in range(15):
                rng = random.Random(SEED_BASE + 40_000 + case)
                num_vars = rng.randint(2, 7)
                cnf = _random_cnf(rng, num_vars, rng.randint(1, 3 * num_vars))
                seq_a = self._enumerate(SATSolver.from_cnf(cnf), num_vars)
                seq_n = self._enumerate(cls.from_cnf(cnf), num_vars)
                assert seq_n == seq_a, (tier.name, case)

    def test_time_phase_schedule_counts_match_arena(self):
        from repro.graphs.analysis import rec_ii, res_ii

        backends = ["arena"] + [t.name for t in _available_native_tiers()]
        for name in ("bitcount", "gsm"):
            dfg = load_benchmark(name)
            cgra = CGRA(4, 4)
            solvers = {
                backend: IncrementalTimeSolver(
                    dfg, cgra, MapperConfig(solver_backend=backend))
                for backend in backends
            }
            mii = max(res_ii(dfg, cgra.num_pes), rec_ii(dfg))
            for ii in range(max(1, mii - 1), mii + 2):
                counts = {
                    backend: sum(
                        1 for _ in solver.iter_schedules(
                            ii, limit=6, timeout_seconds=60)
                    )
                    for backend, solver in solvers.items()
                }
                assert len(set(counts.values())) == 1, (name, ii, counts)

    def test_native_spellings_resolve_and_record_their_tier(self):
        from repro.smt.native import (
            native_solver_class,
            resolved_tier,
            selected_tier,
            tier_names,
            tier_solver_class,
        )

        assert resolve_solver_backend("native") is native_solver_class()
        assert tier_solver_class("arena") is SATSolver
        assert selected_tier() in tier_names()
        for tier in _available_native_tiers():
            assert resolve_solver_backend(tier.name) is tier.solver_class()
            assert resolved_tier(tier.name) == tier.name
        assert resolved_tier("native") == selected_tier()
        assert resolved_tier("arena") is None
        assert resolved_tier("reference") is None

        dfg = load_benchmark("bitcount")
        arena = MonomorphismMapper(
            CGRA(4, 4), MapperConfig(solver_backend="arena")).map(dfg)
        native = MonomorphismMapper(
            CGRA(4, 4), MapperConfig(solver_backend="native")).map(dfg)
        assert native.status == arena.status
        assert native.ii == arena.ii
        assert native.stats["backend"] == "native"
        assert native.stats["solver_tier"] == selected_tier()
        assert "solver_tier" not in arena.stats


class TestChronologicalBacktracking:
    def test_chrono_agrees_with_full_backjumping(self):
        """Forcing chrono on hard instances changes nothing observable.

        ``chrono_threshold = 1`` takes the chronological path on *every*
        non-trivial backjump; the solver must still agree with the plain
        first-UIP solver on status, return satisfying models, and keep
        assumption cores sound.
        """
        triggered = 0
        for case in range(25):
            rng = random.Random(SEED_BASE + 50_000 + case)
            num_vars = rng.randint(12, 24)
            cnf = _random_3sat(rng, num_vars)
            chrono = SATSolver.from_cnf(cnf)
            chrono.chrono_threshold = 1
            plain = SATSolver.from_cnf(cnf)
            plain.chrono_threshold = 0
            res_c = chrono.solve()
            res_p = plain.solve()
            assert res_c.status == res_p.status, case
            if res_c.is_sat:
                assert _model_satisfies(res_c, cnf), case
            triggered += chrono.chrono_backtracks
            # the solver stays reusable: an assumption solve afterwards
            # still agrees and still produces sound cores
            k = rng.randint(1, min(4, num_vars))
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), k)
            ]
            res_ca = chrono.solve(assumptions=assumptions)
            res_pa = plain.solve(assumptions=assumptions)
            assert res_ca.status == res_pa.status, case
            if res_ca.is_unsat and res_ca.core is not None:
                oracle = ReferenceSATSolver.from_cnf(cnf)
                for literal in res_ca.core:
                    oracle.add_clause([literal])
                assert oracle.solve().is_unsat, (case, res_ca.core)
        assert triggered > 0, "chrono_threshold=1 never took the chrono path"

    def test_chrono_preserves_trail_depth(self):
        """A chronological backtrack keeps the deep trail intact.

        With the threshold at 1 the solver undoes only the conflicting
        level instead of rewinding to the assertion level, so across a
        hard solve the trail (and its decision levels) must stay
        internally consistent: every trail literal is assigned true at
        the level recorded for it, in order.
        """
        rng = random.Random(SEED_BASE + 55_000)
        for _ in range(5):
            cnf = _random_3sat(rng, 20)
            solver = SATSolver.from_cnf(cnf)
            solver.chrono_threshold = 1
            result = solver.solve()
            if result.is_sat:
                # at SAT every variable is on the trail exactly once
                assert len(solver.trail) == len(set(
                    abs(lit) for lit in solver.trail))
            for lit in solver.trail:
                assert solver.vals[lit] > 0


class TestVivification:
    def test_vivification_strengthens_an_implied_learnt_clause(self):
        """Deterministic strengthening: (1 v 2) vivifies learnt (1 v 2 v 3).

        Assuming ``-1`` propagates ``2`` through the problem clause, so
        the learnt clause truncates to ``(1 v 2)``; the original must be
        tombstoned and the replacement must still be implied by the
        problem clauses (its full negation is UNSAT on a fresh oracle).
        """
        cnf = CNF()
        for _ in range(3):
            cnf.new_var()
        cnf.add_clause([1, 2])
        solver = SATSolver.from_cnf(cnf)
        ci = solver._attach([1, 2, 3], learnt=True, lbd=3)
        solver.vivify_interval = 1
        solver._conflicts_since_vivify = 5
        result = solver.solve()
        assert result.is_sat
        assert solver.vivifications == 1
        assert solver.vivified_literals == 1
        assert solver.c_dead[ci] == 1
        last = len(solver.c_off) - 1
        assert solver._clause_literals(last) == [1, 2]
        assert solver.c_learnt[last] == 1
        assert not solver.c_dead[last]
        oracle = ReferenceSATSolver.from_cnf(cnf)
        oracle.add_clause([-1])
        oracle.add_clause([-2])
        assert oracle.solve().is_unsat

    def test_eager_vivification_preserves_results_and_implication(self):
        """vivify_interval=1 under model enumeration: statuses unchanged
        and every surviving learnt clause is still implied.

        Enumeration re-enters :meth:`SATSolver.solve` with conflicts
        accumulated from the previous rounds, which is exactly when the
        eager vivifier fires; the blocking clauses join the problem side,
        so learnt clauses must stay consequences of problem + blocks.
        """
        vivified = 0
        for case in range(12):
            rng = random.Random(SEED_BASE + 60_000 + case)
            num_vars = rng.randint(12, 18)
            cnf = _random_3sat(rng, num_vars, ratio=4.0)
            eager = SATSolver.from_cnf(cnf)
            eager.vivify_interval = 1
            eager.vivify_limit = 16
            res_e = eager.solve()
            res_p = ReferenceSATSolver.from_cnf(cnf).solve()
            assert res_e.status == res_p.status, case
            blocks = []
            while res_e.is_sat and len(blocks) < 8:
                assert _model_satisfies(res_e, cnf), case
                model = tuple(
                    res_e.value(v) for v in range(1, num_vars + 1))
                block = [
                    (-v if model[v - 1] else v)
                    for v in range(1, num_vars + 1)
                ]
                blocks.append(block)
                eager.add_clause(list(block))
                res_e = eager.solve()
            vivified += eager.vivified_literals
            # every live learnt clause (vivified or not) must remain a
            # consequence of the problem + blocking clauses:
            # re-asserting its negation on a fresh oracle is UNSAT
            learnt = [
                eager._clause_literals(idx)
                for idx in range(len(eager.c_off))
                if eager.c_learnt[idx] and not eager.c_dead[idx]
            ]
            for clause in learnt[:8]:
                oracle = ReferenceSATSolver.from_cnf(cnf)
                for block in blocks:
                    oracle.add_clause(list(block))
                for literal in clause:
                    oracle.add_clause([-literal])
                assert oracle.solve().is_unsat, (case, clause)
        assert vivified > 0, "the sweep never strengthened a clause"
