"""Differential property suite: flat-arena kernel vs the pre-rewrite kernel.

:mod:`repro.smt.sat` (the flat-arena rewrite) and
:mod:`repro.smt.sat_reference` (the pre-rewrite kernel, kept as the oracle)
must agree on *results* everywhere the repo exercises a solver:

* identical SAT/UNSAT status on random CNF across push/pop/assumption
  schedules (models are validated against the clauses, not compared --
  distinct kernels may return different satisfying assignments),
* identical failed-core *sets* for UNSAT answers under assumptions, with
  each core additionally re-asserted UNSAT on a fresh oracle solver,
* identical *model sets* under exhaustive blocking-clause enumeration
  (this is what proves the minimal-backtrack enumeration entry of the
  arena kernel sound: same models, no repeats, none missing),
* identical schedule feasibility and schedule counts on real time-phase
  instances driven through both backends of the SMT layer.

The seed base is fixed (overridable through ``REPRO_PROPERTY_SEED`` so CI
can pin it explicitly), making every run reproducible.
"""

import os
import random

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.time_solver import IncrementalTimeSolver
from repro.smt.cnf import CNF
from repro.smt.csp import FiniteDomainProblem, resolve_solver_backend
from repro.smt.sat import SATSolver, solve_brute_force
from repro.smt.sat_reference import ReferenceSATSolver
from repro.workloads.suite import load_benchmark

SEED_BASE = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))

TIME_PHASE_BENCHMARKS = ["bitcount", "gsm", "crc32"]


def _random_cnf(rng: random.Random, num_vars: int, num_clauses: int) -> CNF:
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(num_vars)]
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        chosen = rng.sample(variables, min(width, num_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


def _model_satisfies(result, cnf: CNF) -> bool:
    return all(any(result.value(lit) for lit in clause)
               for clause in cnf.clauses)


class TestRandomCNF:
    def test_status_and_core_sets_match_across_assumption_schedules(self):
        cores_checked = 0
        for case in range(120):
            rng = random.Random(SEED_BASE + case)
            num_vars = rng.randint(3, 10)
            cnf = _random_cnf(rng, num_vars, rng.randint(3, 30))
            arena = SATSolver.from_cnf(cnf)
            reference = ReferenceSATSolver.from_cnf(cnf)
            for _ in range(4):
                k = rng.randint(0, min(4, num_vars))
                variables = rng.sample(range(1, num_vars + 1), k)
                assumptions = [
                    v if rng.random() < 0.5 else -v for v in variables
                ]
                res_a = arena.solve(assumptions=assumptions)
                res_r = reference.solve(assumptions=assumptions)
                assert res_a.status == res_r.status, (case, assumptions)
                if res_a.is_sat:
                    assert _model_satisfies(res_a, cnf), case
                    assert all(res_a.value(lit) for lit in assumptions)
                elif res_a.core is not None:
                    assert res_r.core is not None, case
                    assert set(res_a.core) == set(res_r.core), (
                        case, assumptions, res_a.core, res_r.core)
                    assert set(res_a.core) <= set(assumptions), case
                    # the core is genuinely inconsistent: re-asserting it
                    # on a fresh oracle solver is UNSAT
                    oracle = ReferenceSATSolver.from_cnf(cnf)
                    for literal in res_a.core:
                        oracle.add_clause([literal])
                    assert oracle.solve().is_unsat, (case, res_a.core)
                    cores_checked += 1
        assert cores_checked >= 10  # the sweep must actually exercise cores

    def test_status_matches_across_push_pop_interleavings(self):
        for case in range(80):
            rng = random.Random(SEED_BASE + 10_000 + case)
            num_vars = rng.randint(3, 8)
            variables = list(range(1, num_vars + 1))
            cnf = _random_cnf(rng, num_vars, rng.randint(2, 14))
            arena = SATSolver.from_cnf(cnf)
            reference = ReferenceSATSolver.from_cnf(cnf)
            for step in range(12):
                action = rng.random()
                if action < 0.3 and arena.scope_depth < 3:
                    arena.push()
                    reference.push()
                elif action < 0.45 and arena.scope_depth > 0:
                    arena.pop()
                    reference.pop()
                elif action < 0.6:
                    width = rng.randint(1, 3)
                    chosen = rng.sample(variables, min(width, num_vars))
                    clause = [
                        v if rng.random() < 0.5 else -v for v in chosen
                    ]
                    arena.add_clause(list(clause))
                    reference.add_clause(list(clause))
                elif action < 0.8:
                    res_a = arena.solve()
                    res_r = reference.solve()
                    assert res_a.status == res_r.status, (case, step)
                else:
                    k = rng.randint(1, min(3, num_vars))
                    assumptions = [
                        v if rng.random() < 0.5 else -v
                        for v in rng.sample(variables, k)
                    ]
                    res_a = arena.solve(assumptions=assumptions)
                    res_r = reference.solve(assumptions=assumptions)
                    assert res_a.status == res_r.status, (case, step)
                    if res_a.is_unsat and res_a.core is not None:
                        assert res_r.core is not None
                        assert set(res_a.core) == set(res_r.core), (
                            case, step)

    def test_exhaustive_model_enumeration_matches(self):
        """Same model *sets* under blocking-clause enumeration.

        This exercises the arena kernel's minimal-backtrack solve entry
        (blocking clause integrated into the deep trail) against the
        reference kernel's restart-from-scratch enumeration, and against
        the brute-force oracle.
        """

        def enumerate_models(solver, num_vars):
            models = set()
            while True:
                result = solver.solve()
                if not result.is_sat:
                    return models
                model = tuple(
                    result.value(v) for v in range(1, num_vars + 1)
                )
                assert model not in models, "kernel repeated a model"
                models.add(model)
                solver.add_clause([
                    (-v if model[v - 1] else v)
                    for v in range(1, num_vars + 1)
                ])

        for case in range(40):
            rng = random.Random(SEED_BASE + 20_000 + case)
            num_vars = rng.randint(2, 7)
            cnf = _random_cnf(rng, num_vars, rng.randint(1, 3 * num_vars))
            arena_models = enumerate_models(SATSolver.from_cnf(cnf), num_vars)
            reference_models = enumerate_models(
                ReferenceSATSolver.from_cnf(cnf), num_vars)
            assert arena_models == reference_models, case
            expected = solve_brute_force(cnf)
            assert expected.is_sat == bool(arena_models), case


class TestTimePhaseInstances:
    """Both backends on the real formulas the mapper produces."""

    def test_schedule_feasibility_and_counts_match(self):
        for name in TIME_PHASE_BENCHMARKS:
            dfg = load_benchmark(name)
            cgra = CGRA(4, 4)
            solvers = {
                backend: IncrementalTimeSolver(
                    dfg, cgra,
                    MapperConfig(solver_backend=backend),
                )
                for backend in ("arena", "reference")
            }
            from repro.graphs.analysis import rec_ii, res_ii
            mii = max(res_ii(dfg, cgra.num_pes), rec_ii(dfg))
            for ii in range(max(1, mii - 1), mii + 3):
                counts = {}
                for backend, solver in solvers.items():
                    counts[backend] = sum(
                        1 for _ in solver.iter_schedules(
                            ii, limit=6, timeout_seconds=60)
                    )
                assert counts["arena"] == counts["reference"], (name, ii)

    def test_backend_threads_through_the_mapper(self):
        dfg = load_benchmark("bitcount")
        results = {
            backend: MonomorphismMapper(
                CGRA(4, 4), MapperConfig(solver_backend=backend)
            ).map(dfg)
            for backend in ("arena", "reference")
        }
        assert results["arena"].status == results["reference"].status
        assert results["arena"].ii == results["reference"].ii
        assert results["arena"].stats["backend"] == "arena"
        assert results["reference"].stats["backend"] == "reference"

    def test_resolve_solver_backend(self):
        assert resolve_solver_backend("arena") is SATSolver
        assert resolve_solver_backend(None) is SATSolver
        assert resolve_solver_backend("reference") is ReferenceSATSolver
        assert resolve_solver_backend(ReferenceSATSolver) is ReferenceSATSolver
        try:
            resolve_solver_backend("nope")
        except ValueError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("unknown backend must raise")

    def test_reference_backend_through_finite_domain_problem(self):
        problem = FiniteDomainProblem(solver_cls="reference")
        x = problem.new_int("x", 0, 3)
        y = problem.new_int("y", 0, 3)
        problem.add_ge(y, x, 1)
        solution = problem.solve()
        assert solution is not None
        assert solution.value(y) >= solution.value(x) + 1
        seen = {
            (s.value(x), s.value(y))
            for s in problem.enumerate_solutions(block_on=[x, y])
        }
        assert seen == {(a, b) for a in range(4) for b in range(4) if b >= a + 1}
