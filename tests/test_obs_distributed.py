"""Distributed trace correlation, the sampling profiler, and the
perf-regression sentinel (the observability tentpole of this PR).

Covers the three new pillars end to end:

* **trace-context propagation** -- W3C-style ``traceparent`` parsing and
  minting, one ``trace_id`` shared by a job's spans, NDJSON events and
  run-log records, stable across an injected worker crash + retry;
* **continuous profiling** -- the SIGPROF sampling profiler's folding,
  merging and windowing, the ``GET /v1/debug/profile`` endpoint, and the
  cross-process sample shipping from worker children;
* **perf-regression sentinel** -- ``repro.perf.history`` comparisons and
  the ``tools/check_bench.py`` / ``tools/check_obs.py --propagation``
  CLI gates.
"""

from __future__ import annotations

import json
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import logjson, metrics, profiler
from repro.obs import trace as obs_trace
from repro.perf import history as perf_history
from repro.service import faults
from repro.service.client import ServiceClient
from repro.service.jobs import MappingService
from repro.service.server import create_server

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
HEX32 = re.compile(r"^[0-9a-f]{32}$")


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    metrics.reset()
    obs_trace.reset()
    profiler.reset()
    yield
    profiler.stop()
    profiler.reset()
    obs_trace.disable()
    obs_trace.reset()
    metrics.reset()
    faults.reset()


def arm(monkeypatch, spec):
    """Arm a fault plan for this process and future worker forks."""
    monkeypatch.setenv(faults.ENV_VAR, json.dumps(spec))
    faults.reset()


# --------------------------------------------------------------------- #
# traceparent minting / parsing
# --------------------------------------------------------------------- #
class TestTraceparent:
    def test_round_trip(self):
        trace_id = obs_trace.new_trace_id()
        header = obs_trace.format_traceparent(trace_id, 0x1234)
        assert obs_trace.parse_traceparent(header) == (trace_id, 0x1234)

    def test_minted_ids_are_unique_32_hex(self):
        ids = {obs_trace.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(HEX32.match(t) for t in ids)

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-zzzz-0000000000000001-01",
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",   # short trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",   # short span id
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",   # all-zero trace id
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",   # unknown version
    ])
    def test_malformed_headers_rejected(self, header):
        assert obs_trace.parse_traceparent(header) is None

    def test_push_trace_inherits_enclosing_trace_id(self):
        obs_trace.push_trace("outer", "a" * 32)
        try:
            obs_trace.push_trace("inner")
            try:
                assert obs_trace.current_trace_id() == "a" * 32
                assert obs_trace.current_trace() == "inner"
            finally:
                obs_trace.pop_trace()
        finally:
            obs_trace.pop_trace()


class TestDropOldestCounter:
    def test_eviction_drops_oldest_and_counts(self, monkeypatch):
        monkeypatch.setattr(obs_trace, "MAX_EVENTS", 4)
        obs_trace.enable()
        try:
            for index in range(10):
                with obs_trace.span(f"s{index}"):
                    pass
        finally:
            obs_trace.disable()
        names = [e["name"] for e in obs_trace.events()]
        assert len(names) == 4
        assert names == ["s6", "s7", "s8", "s9"]  # oldest evicted
        assert obs_trace.dropped() == 6
        snapshot = metrics.snapshot()
        assert snapshot["repro_trace_dropped_spans_total"][""] == 6.0


# --------------------------------------------------------------------- #
# sampling profiler unit surface
# --------------------------------------------------------------------- #
class TestProfiler:
    def test_merge_validates_and_accumulates(self):
        assert profiler.merge(None) == 0
        assert profiler.merge({"a;b": 2, "c": 1}) == 3
        assert profiler.merge({"a;b": 3}) == 3
        assert profiler.cumulative()["a;b"] == 5
        # junk shapes are ignored, not crashed on
        assert profiler.merge({1: 2, "x": "y", "ok": 0, "neg": -4}) == 0

    def test_window_is_a_positive_delta(self):
        profiler.merge({"a": 5, "b": 1})
        before = profiler.cumulative()
        profiler.merge({"a": 2, "c": 7})
        window = profiler.window(before, profiler.cumulative())
        assert window == {"a": 2, "c": 7}

    def test_render_sorted_busiest_first(self):
        assert profiler.render({}) == ""
        text = profiler.render({"cold": 1, "hot": 9})
        assert text.splitlines() == ["hot 9", "cold 1"]
        assert text.endswith("\n")

    @pytest.mark.skipif(not hasattr(signal, "setitimer"),
                        reason="needs SIGPROF/setitimer")
    def test_live_sampling_attributes_cpu_burn(self):
        assert profiler.start(0.002)
        try:
            deadline = time.monotonic() + 0.5
            value = 1
            while time.monotonic() < deadline:
                value = (value * 31 + 7) % 1000003
        finally:
            profiler.stop()
        counts = profiler.local_counts()
        assert sum(counts.values()) > 0
        # the busy loop above must appear in at least one folded stack
        assert any("test_obs_distributed.py" in stack for stack in counts)

    @pytest.mark.skipif(not hasattr(signal, "setitimer"),
                        reason="needs SIGPROF/setitimer")
    def test_idle_process_accrues_no_samples(self):
        assert profiler.start(0.002)
        try:
            time.sleep(0.2)  # wall-clock idle: ITIMER_PROF must not fire
        finally:
            profiler.stop()
        assert sum(profiler.local_counts().values()) == 0

    def test_start_rejects_nonpositive_interval(self):
        assert not profiler.start(0.0)
        assert not profiler.running()


class TestLogCapture:
    def test_capture_buffers_instead_of_writing(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        logjson.configure(str(log_path))
        try:
            logjson.capture_begin()
            logjson.log("engine_run", engine="x", status="success")
            captured = logjson.capture_end()
            logjson.log("job", job="j1")
        finally:
            logjson.close()
        assert [r["record"] for r in captured] == ["engine_run"]
        written = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        assert [r["record"] for r in written] == ["job"]

    def test_reemitted_capture_lands_restamped(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        logjson.configure(str(log_path))
        try:
            logjson.capture_begin()
            logjson.log("engine_run", engine="x")
            for record in logjson.capture_end():
                logjson.emit(dict(record, job="j9", trace_id="t" * 32))
        finally:
            logjson.close()
        written = json.loads(log_path.read_text().splitlines()[0])
        assert written["record"] == "engine_run"
        assert written["job"] == "j9"
        assert written["trace_id"] == "t" * 32


# --------------------------------------------------------------------- #
# one trace id end to end through the service
# --------------------------------------------------------------------- #
class TestServiceTracePropagation:
    def _service(self, tmp_path, **kwargs):
        return MappingService(store_path=str(tmp_path / "results"),
                              workers=1, default_budget_seconds=20.0,
                              **kwargs)

    def test_submitted_traceparent_is_adopted(self, tmp_path):
        service = self._service(tmp_path)
        try:
            trace_id = "ab" * 16
            header = obs_trace.format_traceparent(trace_id, 0x77)
            job = service.submit({"benchmark": "running_example",
                                  "cgra": "4x4"}, traceparent=header)
            list(service.stream_events(job.id))
            assert job.trace_id == trace_id
            assert job.parent_span_id == 0x77
            assert job.view()["trace_id"] == trace_id
            stamped = [e for e in job.events if e.get("trace_id")]
            assert stamped and all(
                e["trace_id"] == trace_id for e in stamped)
        finally:
            service.shutdown()

    def test_malformed_traceparent_mints_fresh(self, tmp_path):
        service = self._service(tmp_path)
        try:
            job = service.submit({"benchmark": "running_example",
                                  "cgra": "4x4"}, traceparent="not-a-header")
            list(service.stream_events(job.id))
            assert HEX32.match(job.trace_id)
        finally:
            service.shutdown()

    def test_cache_hit_replay_carries_new_trace_id(self, tmp_path):
        service = self._service(tmp_path)
        try:
            payload = {"benchmark": "running_example", "cgra": "4x4"}
            first = service.submit(payload)
            list(service.stream_events(first.id))
            second = service.submit(payload)
            list(service.stream_events(second.id))
            assert second.cache == "hit"
            assert second.trace_id != first.trace_id
            assert all(e["trace_id"] == second.trace_id
                       for e in second.events if e.get("trace_id"))
        finally:
            service.shutdown()

    def test_one_trace_id_across_crash_and_retry(self, tmp_path,
                                                 monkeypatch):
        arm(monkeypatch, {"kill_worker": {"phase": "engine",
                                          "attempts": [0]}})
        log_path = tmp_path / "run.jsonl"
        logjson.configure(str(log_path))
        service = self._service(tmp_path, max_retries=2)
        try:
            trace_id = "cd" * 16
            job = service.submit(
                {"benchmark": "running_example", "cgra": "4x4"},
                traceparent=obs_trace.format_traceparent(trace_id))
            list(service.stream_events(job.id))
        finally:
            service.shutdown()
            logjson.close()
        assert job.status == "done"
        names = [e["event"] for e in job.events]
        assert "worker_crashed" in names and "retrying" in names
        # every stamped event of the crashed AND surviving attempt agrees
        assert {e["trace_id"] for e in job.events
                if e.get("trace_id")} == {trace_id}
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        mine = [r for r in records if r.get("trace_id") == trace_id]
        kinds = {r["record"] for r in mine}
        assert {"request", "worker_crash", "engine_run", "job"} <= kinds

    def test_worker_metrics_folded_into_parent_registry(self, tmp_path):
        service = self._service(tmp_path)
        try:
            job = service.submit({"benchmark": "running_example",
                                  "cgra": "4x4"})
            list(service.stream_events(job.id))
            assert job.status == "done"
        finally:
            service.shutdown()
        snapshot = metrics.snapshot()
        # engine-side series recorded in the worker child are visible here
        assert any(value > 0 for value in
                   snapshot.get("repro_ii_attempt_seconds_count",
                                {}).values())
        assert any(value > 0 for value in
                   snapshot.get("repro_engine_runs_total", {}).values())


# --------------------------------------------------------------------- #
# HTTP surface: traceparent header, /v1/debug/profile, /metrics races
# --------------------------------------------------------------------- #
@pytest.fixture
def live_server(tmp_path):
    service = MappingService(store_path=str(tmp_path / "results"),
                             workers=2, default_budget_seconds=20.0)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield service, client
    server.shutdown()
    service.shutdown()


class TestHttpSurface:
    def test_client_mints_traceparent_and_server_echoes(self, live_server):
        _service, client = live_server
        job = client.submit({"benchmark": "running_example",
                             "cgra": "4x4"})
        assert HEX32.match(job["trace_id"])
        done = client.wait(job["id"])
        assert done["trace_id"] == job["trace_id"]

    def test_explicit_traceparent_round_trips(self, live_server):
        _service, client = live_server
        trace_id = "ef" * 16
        job = client.submit(
            {"benchmark": "running_example", "cgra": "4x4"},
            traceparent=obs_trace.format_traceparent(trace_id, 5))
        assert job["trace_id"] == trace_id
        client.wait(job["id"])
        events = list(client.events(job["id"]))
        assert {e["trace_id"] for e in events
                if e.get("trace_id")} == {trace_id}

    def test_debug_profile_returns_window_and_cumulative(self, live_server):
        _service, client = live_server
        profiler.merge({"pool.py:work;solver.py:solve": 3})
        text = client.profile()
        assert "pool.py:work;solver.py:solve 3" in text
        # a zero-length window over an idle process is empty, not an error
        assert client.profile(seconds=0) == text

    def test_debug_profile_rejects_bad_seconds(self, live_server):
        from repro.service.client import ServiceError
        _service, client = live_server
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/debug/profile?seconds=banana")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/debug/profile?seconds=-1")
        assert excinfo.value.status == 400

    def test_concurrent_metrics_scrapes_during_jobs(self, live_server):
        _service, client = live_server
        failures = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    text = client.metrics()
                    if "# TYPE repro_service_jobs_total counter" not in text:
                        failures.append("missing family header")
                except Exception as exc:  # noqa: BLE001 - collected
                    failures.append(repr(exc))

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            jobs = [client.submit({"benchmark": "running_example",
                                   "cgra": "4x4", "seed": seed,
                                   "approach": "heuristic",
                                   "budget_seconds": 2.0})
                    for seed in range(3)]
            for job in jobs:
                client.wait(job["id"])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not failures, failures[:3]

    def test_health_reports_observability_block(self, live_server):
        _service, client = live_server
        obs = client.health()["observability"]
        assert obs["profile_sampling"] is True
        assert obs["trace_dropped_spans"] == 0


# --------------------------------------------------------------------- #
# status --watch plumbing
# --------------------------------------------------------------------- #
class TestStatusWatch:
    def test_histogram_quantile_interpolates(self):
        from repro.service.cli import _histogram_quantile
        buckets = [(0.1, 10.0), (1.0, 20.0), (float("inf"), 20.0)]
        assert _histogram_quantile(buckets, 0.5) == 0.1
        # rank 15 of 20 sits halfway through the (0.1, 1.0] bucket
        assert _histogram_quantile(buckets, 0.75) == pytest.approx(0.55)
        assert _histogram_quantile([], 0.5) is None
        assert _histogram_quantile([(float("inf"), 0.0)], 0.5) is None

    def test_parse_exposition_labels_and_inf(self):
        from repro.service.cli import _parse_exposition
        text = ('# TYPE repro_x histogram\n'
                'repro_x_bucket{engine="mono",le="0.1"} 4\n'
                'repro_x_bucket{engine="mono",le="+Inf"} 9\n'
                'repro_y 2.5\n')
        samples = _parse_exposition(text)
        assert samples["repro_y"] == [({}, 2.5)]
        buckets = samples["repro_x_bucket"]
        assert ({"engine": "mono", "le": "0.1"}, 4.0) in buckets
        assert any(value == 9.0 for _labels, value in buckets)

    def test_watch_dashboard_against_live_server(self, live_server,
                                                 capsys):
        from repro.service.cli import main as serve_main
        _service, client = live_server
        job = client.submit({"benchmark": "running_example",
                             "cgra": "4x4"})
        client.wait(job["id"])
        status = serve_main(["status", "--url", client.base_url,
                             "--watch"])
        out = capsys.readouterr().out
        assert status == 0
        assert "SLO burn" in out
        assert "jobs submitted" in out

    def test_watch_slo_config_breach_fails(self, live_server, capsys,
                                           tmp_path):
        from repro.service.cli import main as serve_main
        _service, client = live_server
        job = client.submit({"benchmark": "running_example",
                             "cgra": "4x4"})
        client.wait(job["id"])
        config = tmp_path / "slo.json"
        # an absurdly tight latency objective: any mapped job breaches it
        config.write_text(json.dumps({"p95_latency_seconds": 1e-9}))
        status = serve_main(["status", "--url", client.base_url,
                             "--watch", "--slo-config", str(config)])
        out = capsys.readouterr().out
        assert status == 1
        assert "SLO breached" in out


# --------------------------------------------------------------------- #
# the perf-regression sentinel
# --------------------------------------------------------------------- #
class TestPerfSentinel:
    def test_direction_classification(self):
        assert perf_history.metric_direction("speedup") == "higher"
        assert perf_history.metric_direction("native_speedup") == "higher"
        assert perf_history.metric_direction("disabled_overhead") == "lower"
        assert perf_history.metric_direction("run_seconds") == "lower"
        assert perf_history.metric_direction("target_speedup") is None
        assert perf_history.metric_direction("label") is None

    def test_regression_and_tolerance_band(self):
        previous = {"label": "x", "speedup": 2.0, "git_sha": "a"}
        ok = {"label": "x", "speedup": 1.85, "git_sha": "b"}
        bad = {"label": "x", "speedup": 1.5, "git_sha": "b"}
        assert perf_history.compare_entries(previous, ok) == []
        findings = perf_history.compare_entries(previous, bad)
        assert len(findings) == 1
        assert findings[0]["metric"] == "speedup"
        assert findings[0]["change"] == pytest.approx(-0.25)

    def test_overhead_noise_floor(self):
        previous = {"label": "x", "disabled_overhead": 4e-05}
        doubled = {"label": "x", "disabled_overhead": 9e-05}
        # doubled relatively, but far below the absolute noise floor
        assert perf_history.compare_entries(previous, doubled) == []
        real = {"label": "x", "disabled_overhead": 0.02}
        assert perf_history.compare_entries(previous, real)

    def test_blessed_entry_accepted_and_resets_baseline(self):
        history = [
            {"label": "x", "speedup": 2.0, "git_sha": "a"},
            {"label": "x", "speedup": 1.0, "git_sha": "b",
             "blessed": True},
        ]
        findings, comparisons = perf_history.compare_history(history)
        assert findings == [] and comparisons == 1
        # next commit is judged against the blessed 1.0, not the old 2.0
        history.append({"label": "x", "speedup": 0.98, "git_sha": "c"})
        findings, _ = perf_history.compare_history(history)
        assert findings == []

    def test_single_entry_labels_pass_vacuously(self):
        findings, comparisons = perf_history.compare_history(
            [{"label": "x", "speedup": 2.0}])
        assert findings == [] and comparisons == 0

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_bench.py"),
             *argv],
            capture_output=True, text=True)

    def test_check_bench_cli_gate(self, tmp_path):
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps({"history": [
            {"label": "x", "speedup": 2.0, "git_sha": "a"},
            {"label": "x", "speedup": 1.2, "git_sha": "b"},
        ]}))
        result = self._run(str(artifact))
        assert result.returncode == 1
        assert "x/speedup regressed" in result.stdout
        # blessing the trade-off turns the gate green
        assert self._run("--bless", "x", str(artifact)).returncode == 0
        assert self._run(str(artifact)).returncode == 0

    def test_check_bench_green_on_real_artifacts(self):
        result = self._run()
        assert result.returncode == 0, result.stdout + result.stderr

    def test_bless_latest_only_touches_newest(self, tmp_path):
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps({"history": [
            {"label": "x", "speedup": 2.0, "git_sha": "a"},
            {"label": "x", "speedup": 1.2, "git_sha": "b"},
        ]}))
        assert perf_history.bless_latest(artifact, "x")
        history = json.loads(artifact.read_text())["history"]
        assert "blessed" not in history[0]
        assert history[1]["blessed"] is True
        assert not perf_history.bless_latest(artifact, "missing")


class TestCheckObsPropagation:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_obs.py"),
             *argv],
            capture_output=True, text=True)

    def _trace_file(self, path, trace_id):
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
             "args": {"name": "test"}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "engine.map",
             "ts": 0, "dur": 5,
             "args": {"span_id": 1, "trace_id": trace_id}},
        ]}))

    def test_shared_trace_id_passes(self, tmp_path):
        trace = tmp_path / "trace.json"
        self._trace_file(trace, "a" * 32)
        events = tmp_path / "events.ndjson"
        events.write_text(json.dumps({"event": "done",
                                      "trace_id": "a" * 32}) + "\n")
        result = self._run("--propagation", "--trace", str(trace),
                           "--ndjson", str(events))
        assert result.returncode == 0, result.stdout

    def test_mismatched_trace_ids_fail(self, tmp_path):
        trace = tmp_path / "trace.json"
        self._trace_file(trace, "a" * 32)
        events = tmp_path / "events.ndjson"
        events.write_text(json.dumps({"event": "done",
                                      "trace_id": "b" * 32}) + "\n")
        result = self._run("--propagation", "--trace", str(trace),
                           "--ndjson", str(events))
        assert result.returncode == 1
        assert "2 distinct trace ids" in result.stdout

    def test_unstamped_trace_fails(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"traceEvents": [
            {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
             "args": {"name": "test"}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "engine.map",
             "ts": 0, "dur": 5, "args": {"span_id": 1}},
        ]}))
        result = self._run("--propagation", "--trace", str(trace))
        assert result.returncode == 1
        assert "no span carries a trace_id" in result.stdout
