"""Tests for the incremental SAT interface: assumptions, cores, push/pop.

Covers the satellite requirements of the incremental rework: assumptions
are respected, learnt clauses survive across ``solve()`` calls, push/pop
retracts blocking clauses, and results match the non-incremental solver on
the CNF fixtures used elsewhere in the suite.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.cnf import CNF, FALSE_LIT, TRUE_LIT
from repro.smt.csp import FiniteDomainProblem
from repro.smt.sat import SATSolver, solve_brute_force


def _random_cnf(num_vars: int, num_clauses: int, seed: int) -> CNF:
    rng = random.Random(seed)
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(num_vars)]
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        chosen = rng.sample(variables, min(width, num_vars))
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


class TestAssumptions:
    def test_assumptions_are_respected(self):
        solver = SATSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b, c])
        for lits in ([a], [-a, b], [-a, -b, c], [a, -b], [-c]):
            result = solver.solve(assumptions=lits)
            assert result.is_sat
            for lit in lits:
                assert result.value(lit), (lits, lit)

    def test_unsat_under_assumptions_does_not_poison_solver(self):
        solver = SATSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, -b])
        assert solver.solve(assumptions=[a, b]).is_unsat
        assert solver.ok  # the formula itself is still satisfiable
        assert solver.solve().is_sat
        assert solver.solve(assumptions=[a]).is_sat
        assert solver.solve(assumptions=[b]).is_sat

    def test_failed_core_is_subset_of_assumptions(self):
        solver = SATSolver()
        a, b, c, d = (solver.new_var() for _ in range(4))
        solver.add_clause([-a, -b])
        result = solver.solve(assumptions=[c, a, d, b])
        assert result.is_unsat
        assert result.core is not None
        assert set(result.core) <= {a, b, c, d}
        # c and d are irrelevant to the conflict
        assert {a, b} >= set(result.core) or set(result.core) <= {a, b}
        assert set(result.core) <= {a, b}

    def test_contradictory_assumptions(self):
        solver = SATSolver()
        a = solver.new_var()
        result = solver.solve(assumptions=[a, -a])
        assert result.is_unsat
        assert result.core is not None and {abs(l) for l in result.core} == {a}

    def test_plain_unsat_has_no_core(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        result = solver.solve(assumptions=[])
        assert result.is_unsat and result.core is None

    def test_assumption_on_fresh_variable(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        result = solver.solve(assumptions=[a + 1])
        assert result.is_sat and result.value(a + 1)

    def test_invalid_assumption_literal(self):
        solver = SATSolver()
        with pytest.raises(ValueError):
            solver.solve(assumptions=[0])


class TestLearntClausePersistence:
    def test_learnt_clauses_survive_across_solves(self):
        # A pigeonhole-ish SAT instance that forces conflicts: the solver
        # must keep the clauses it learnt in the first call.
        solver = SATSolver()
        holes = 4
        pigeons = 4
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        before = len(solver.clauses)
        first = solver.solve(assumptions=[var[(0, 0)], var[(1, 1)]])
        assert first.is_sat
        learnt_after_first = len(solver.clauses) - before
        second = solver.solve(assumptions=[var[(0, 0)], var[(1, 1)]])
        assert second.is_sat
        if first.conflicts:
            assert learnt_after_first > 0
            # the re-solve benefits from the learnt clauses
            assert second.conflicts <= first.conflicts

    def test_saved_phases_steer_the_next_solve(self):
        solver = SATSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.solve(assumptions=[a, -b])
        # phase saving: the unconstrained re-solve reproduces the last model
        result = solver.solve()
        assert result.is_sat
        assert result.value(a) is True and result.value(b) is False


class TestPushPop:
    def test_pop_retracts_blocking_clauses(self):
        solver = SATSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        models = set()
        solver.push()
        while True:
            result = solver.solve()
            if not result.is_sat:
                break
            model = (result.value(a), result.value(b))
            models.add(model)
            solver.add_clause([-a if model[0] else a, -b if model[1] else b])
        assert models == {(True, True), (True, False), (False, True)}
        solver.pop()
        # all three models are reachable again after the pop
        assert solver.solve().is_sat
        again = set()
        for _ in range(3):
            result = solver.solve()
            assert result.is_sat
            model = (result.value(a), result.value(b))
            again.add(model)
            solver.push()
            solver.add_clause([-a if model[0] else a, -b if model[1] else b])
            solver.pop()  # immediately retract: the same model stays legal
            check = solver.solve()
            assert check.is_sat
            break  # one round is enough for the retraction claim
        assert again <= models

    def test_pop_restores_satisfiability(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.push()
        solver.add_clause([-a])
        assert solver.solve().is_unsat
        solver.pop()
        result = solver.solve()
        assert result.is_sat and result.value(a)

    def test_nested_scopes(self):
        solver = SATSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([a, b, c])
        solver.push()
        solver.add_clause([-a])
        solver.push()
        solver.add_clause([-b])
        result = solver.solve()
        assert result.is_sat and result.value(c)
        solver.pop()
        solver.pop()
        assert solver.scope_depth == 0
        assert solver.solve(assumptions=[a]).is_sat

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            SATSolver().pop()

    def test_scoped_solves_match_fresh_solver(self):
        # Solving inside a scope and after a pop must agree with a fresh
        # solver built from the same clause sets.
        for seed in range(15):
            base = _random_cnf(8, 18, seed)
            extra = _random_cnf(8, 6, seed + 1000)
            solver = SATSolver.from_cnf(base)
            baseline_status = SATSolver.from_cnf(base).solve().status
            solver.push()
            for clause in extra.clauses:
                solver.add_clause(clause)
            combined = CNF()
            for _ in range(8):
                combined.new_var()
            combined.add_clauses([list(c) for c in base.clauses])
            combined.add_clauses([list(c) for c in extra.clauses])
            if base.contradiction or extra.contradiction:
                combined.contradiction = True
            assert solver.solve().status == solve_brute_force(combined).status
            solver.pop()
            assert solver.solve().status == baseline_status


class TestPushPopStateInvariants:
    """push()/pop() must restore clause *and* variable state exactly."""

    def test_solver_clause_and_variable_state_restored_exactly(self):
        # Literal order inside a clause is internal (watched-literal swaps
        # reorder in place), so clauses compare as sorted literal lists.
        for seed in range(10):
            solver = SATSolver.from_cnf(_random_cnf(6, 12, seed))
            clauses_before = [sorted(c) for c in solver.clauses]
            vars_before = solver.num_vars
            solver.push()
            fresh = [solver.new_var() for _ in range(3)]
            solver.add_clause(fresh)
            solver.add_clause([-fresh[0], fresh[1]])
            solver.solve()  # may learn clauses inside the scope
            solver.pop()
            assert solver.num_vars == vars_before
            assert [sorted(c) for c in solver.clauses] == clauses_before

    def test_nested_scopes_unwind_in_order(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        snapshots = []
        for _ in range(3):
            snapshots.append((solver.num_vars, len(solver.clauses)))
            solver.push()
            b = solver.new_var()
            solver.add_clause([-a, b])
        for expected in reversed(snapshots):
            solver.pop()
            assert (solver.num_vars, len(solver.clauses)) == expected

    def test_finite_domain_problem_state_restored_exactly(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 4)
        problem.add_ge(x, x, 0)
        vars_before = problem.num_sat_variables
        clauses_before = problem.num_sat_clauses
        int_vars_before = [v.name for v in problem.variables()]
        problem.push()
        y = problem.new_int("y", 0, 7)
        problem.add_ge(y, x, 1)
        problem.mod_indicator(y, 3, 1)
        assert problem.solve() is not None
        problem.pop()
        assert problem.num_sat_variables == vars_before
        assert problem.num_sat_clauses == clauses_before
        assert [v.name for v in problem.variables()] == int_vars_before
        # the popped variable is genuinely gone: its name is reusable
        z = problem.new_int("y", 0, 2)
        assert problem.solve().value(z) in range(3)


class TestFailedCoreInvariants:
    """Cores are assumption subsets and genuinely unsatisfiable."""

    def _assert_core_unsat_when_reasserted(self, cnf: CNF, core) -> None:
        fresh = SATSolver.from_cnf(cnf)
        for literal in core:
            fresh.add_clause([literal])
        assert fresh.solve().is_unsat

    def test_core_reassertion_is_unsat_randomized(self):
        rng = random.Random(7)
        checked = 0
        for seed in range(60):
            cnf = _random_cnf(7, 20, seed)
            solver = SATSolver.from_cnf(cnf)
            if not solver.solve().is_sat:
                continue  # plain UNSAT has no core to check
            variables = rng.sample(range(1, 8), rng.randint(2, 5))
            assumptions = [v if rng.random() < 0.5 else -v for v in variables]
            result = solver.solve(assumptions=assumptions)
            if not result.is_unsat:
                continue
            assert result.core is not None
            assert set(result.core) <= set(assumptions)
            self._assert_core_unsat_when_reasserted(cnf, result.core)
            checked += 1
        assert checked >= 3  # the sweep must actually exercise cores

    def test_core_from_pigeonhole_assumptions(self):
        # 3 pigeons, 2 holes, hole occupancy exclusive: assuming all three
        # pigeons places an unsatisfiable subset in the core.
        cnf = CNF()
        var = {}
        for p in range(3):
            for h in range(2):
                var[(p, h)] = cnf.new_var()
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
        solver = SATSolver.from_cnf(cnf)
        assumptions = [var[(p, p % 2)] for p in range(3)] + [var[(2, 0)]]
        result = solver.solve(assumptions=assumptions)
        assert result.is_unsat
        assert set(result.core) <= set(assumptions)
        self._assert_core_unsat_when_reasserted(cnf, result.core)
        # the solver itself is not poisoned: dropping the assumptions
        # restores satisfiability
        assert solver.solve().is_sat

    def test_core_survives_push_pop_cycles(self):
        solver = SATSolver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([-a, -b])
        solver.push()
        solver.add_clause([-a, -c])
        first = solver.solve(assumptions=[a, c])
        assert first.is_unsat and set(first.core) <= {a, c}
        solver.pop()
        # the scoped clause is gone: the same assumptions are SAT again
        assert solver.solve(assumptions=[a, c]).is_sat
        second = solver.solve(assumptions=[a, b])
        assert second.is_unsat and set(second.core) <= {a, b}


class TestAgainstBruteForceWithAssumptions:
    @settings(max_examples=40, deadline=None)
    @given(
        num_vars=st.integers(min_value=2, max_value=8),
        num_clauses=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=100_000),
    )
    def test_incremental_assumption_solving_matches_oracle(
        self, num_vars, num_clauses, seed
    ):
        cnf = _random_cnf(num_vars, num_clauses, seed)
        solver = SATSolver.from_cnf(cnf)
        rng = random.Random(seed)
        # one persistent solver, several assumption sets: exactly the
        # incremental usage pattern of the time phase
        for _ in range(3):
            k = rng.randint(0, min(3, num_vars))
            variables = rng.sample(range(1, num_vars + 1), k)
            assumptions = [v if rng.random() < 0.5 else -v for v in variables]
            augmented = CNF()
            for _ in range(num_vars):
                augmented.new_var()
            augmented.add_clauses([list(c) for c in cnf.clauses])
            if cnf.contradiction:
                augmented.contradiction = True
            for lit in assumptions:
                augmented.add_clause([lit])
            expected = solve_brute_force(augmented)
            result = solver.solve(assumptions=assumptions)
            assert result.status == expected.status
            if result.is_sat:
                for clause in cnf.clauses:
                    assert any(result.value(lit) for lit in clause)
                for lit in assumptions:
                    assert result.value(lit)
            elif result.core is not None:
                assert set(result.core) <= set(assumptions)


class TestFiniteDomainIncremental:
    def test_guarded_clauses_only_bite_under_selector(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        selector = problem.new_selector(("only-small",))
        with problem.guard(selector):
            problem.add_clause([problem.le_literal(x, 1)])
        free = problem.solve()
        assert free is not None
        constrained = problem.solve(assumptions=[selector])
        assert constrained is not None and constrained.value(x) <= 1
        # without the assumption the restriction is gone again
        problem.add_clause([problem.ge_literal(x, 3)])
        unrestricted = problem.solve()
        assert unrestricted is not None and unrestricted.value(x) == 3
        assert problem.solve(assumptions=[selector]) is None

    def test_pseudo_literal_assumptions(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 1)
        assert problem.solve(assumptions=[TRUE_LIT]) is not None
        assert problem.solve(assumptions=[FALSE_LIT]) is None
        assert problem.solve(assumptions=[problem.value_literal(x, 1)]).value(x) == 1

    def test_push_pop_retracts_constraints_and_indicators(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 5)
        problem.push()
        indicator = problem.mod_indicator(x, 2, 0)
        problem.add_clause([indicator])
        problem.add_eq_const(x, 4)
        solution = problem.solve()
        assert solution is not None and solution.value(x) == 4
        problem.pop()
        # the eq-const is retracted; the indicator can be recreated cleanly
        problem.add_eq_const(x, 3)
        solution = problem.solve()
        assert solution is not None and solution.value(x) == 3
        again = problem.mod_indicator(x, 2, 0)
        assert again == indicator  # same pooled SAT variable

    def test_enumeration_with_guarded_blocking(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 2)
        selector = problem.new_selector(("enum",))
        seen = [
            s.value(x)
            for s in problem.enumerate_solutions(
                block_on=[x], assumptions=[selector], block_guard=selector
            )
        ]
        assert sorted(seen) == [0, 1, 2]
        # blocking clauses die with the selector: everything is legal again
        assert problem.solve() is not None
        fresh = [s.value(x) for s in problem.enumerate_solutions(block_on=[x])]
        assert sorted(fresh) == [0, 1, 2]
