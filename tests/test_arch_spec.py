"""Tests for the declarative architecture spec and the heterogeneous CGRA.

Covers the JSON round trip (load -> dump -> load), the preset library, the
per-PE operation threading through CGRA and MRRG, and the cache-key
satellite fix (``CGRA.__eq__``/``__hash__`` include the PE operation sets).
"""

import json

import pytest

from repro.arch.cgra import CGRA
from repro.arch.isa import DEFAULT_PE_OPERATIONS, Opcode
from repro.arch.mrrg import MRRG
from repro.arch.spec import (
    MEMORY_FAMILY,
    MUL_FAMILY,
    PRESETS,
    ArchSpec,
    build_preset,
    preset_names,
    resolve_arch,
    spec_of,
)
from repro.arch.topology import Topology


class TestArchSpecBasics:
    def test_defaults_are_the_papers_fabric(self):
        spec = ArchSpec(name="plain", rows=4, cols=4)
        assert spec.topology is Topology.TORUS
        assert spec.is_homogeneous
        assert spec.operations_of(0) == DEFAULT_PE_OPERATIONS
        cgra = spec.build()
        assert cgra.is_homogeneous
        assert cgra == CGRA(4, 4)

    def test_rejects_degenerate_specs(self):
        with pytest.raises(ValueError):
            ArchSpec(name="bad", rows=0, cols=4)
        with pytest.raises(ValueError):
            ArchSpec(name="bad", rows=1, cols=1)
        with pytest.raises(ValueError):
            ArchSpec(name="bad", rows=2, cols=2,
                     pe_operations={7: frozenset({Opcode.ADD})})

    def test_per_pe_overrides_reach_the_cgra(self):
        spec = ArchSpec(
            name="one-odd", rows=2, cols=2,
            pe_operations={3: frozenset({Opcode.ADD, Opcode.CONST})},
        )
        assert not spec.is_homogeneous
        cgra = spec.build()
        assert not cgra.is_homogeneous
        assert cgra.pe(3).operations == frozenset({Opcode.ADD, Opcode.CONST})
        assert cgra.pe(0).operations == DEFAULT_PE_OPERATIONS
        assert cgra.supporting_pes(Opcode.MUL) == frozenset({0, 1, 2})
        assert cgra.supporting_pes(Opcode.ADD) == frozenset({0, 1, 2, 3})

    def test_uniform_overrides_count_as_homogeneous(self):
        # overrides covering every PE with one identical set describe a
        # homogeneous fabric; spec and built CGRA must agree
        ops = frozenset({Opcode.ADD, Opcode.CONST})
        spec = ArchSpec(name="uniform", rows=2, cols=2,
                        pe_operations={i: ops for i in range(4)})
        assert spec.is_homogeneous
        assert spec.build().is_homogeneous

    def test_specs_are_hashable_and_usable_as_keys(self):
        a = build_preset("memory_column_mesh", 2, 2)
        b = build_preset("memory_column_mesh", 2, 2)
        c = build_preset("mul_sparse_checkerboard", 2, 2)
        assert hash(a) == hash(b) and a == b
        assert len({a, b, c}) == 2

    def test_describe_mentions_overrides(self):
        spec = build_preset("memory_column_mesh", 3, 3)
        text = spec.describe()
        assert "memory_column_mesh" in text
        assert "PE1" in text  # an override PE is listed


class TestJsonRoundTrip:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_load_dump_load_fixpoint(self, preset, tmp_path):
        spec = build_preset(preset, 4, 4)
        path = tmp_path / f"{preset}.json"
        spec.dump(str(path))
        loaded = ArchSpec.load(str(path))
        assert loaded == spec
        # dump -> load -> dump is byte-stable (the CI round-trip smoke)
        again = tmp_path / "again.json"
        loaded.dump(str(again))
        assert path.read_text() == again.read_text()

    def test_json_uses_all_sentinel_for_full_isa(self):
        spec = build_preset("homogeneous_torus", 2, 2)
        data = json.loads(spec.to_json())
        assert data["default_operations"] == "all"
        assert data["pe_operations"] == {}

    def test_explicit_op_lists_round_trip(self):
        spec = ArchSpec(
            name="tiny", rows=2, cols=2,
            default_operations=frozenset({Opcode.ADD, Opcode.SUB}),
            pe_operations={1: frozenset({Opcode.ADD, Opcode.MUL})},
        )
        assert ArchSpec.from_json(spec.to_json()) == spec

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec.from_dict({"name": "x", "rows": 2})

    def test_bad_operation_set_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec.from_dict(
                {"rows": 2, "cols": 2, "default_operations": "some"}
            )

    def test_spec_of_inverts_build(self):
        for preset in sorted(PRESETS):
            spec = build_preset(preset, 3, 4)
            recovered = spec_of(spec.build(), name=spec.name)
            assert recovered.build() == spec.build()


class TestPresets:
    def test_preset_names_and_resolution(self):
        assert "memory_column_mesh" in preset_names()
        spec = resolve_arch("mul_sparse_checkerboard", 4, 4)
        assert spec.rows == 4 and spec.cols == 4

    def test_resolve_arch_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_arch("does_not_exist", 4, 4)

    def test_resolve_arch_loads_spec_files(self, tmp_path):
        path = tmp_path / "fabric.json"
        build_preset("memory_column_mesh", 5, 3).dump(str(path))
        spec = resolve_arch(str(path), 2, 2)  # file size is authoritative
        assert (spec.rows, spec.cols) == (5, 3)

    def test_memory_column_mesh_layout(self):
        cgra = build_preset("memory_column_mesh", 3, 3).build()
        assert cgra.topology is Topology.MESH
        assert cgra.supporting_pes(Opcode.LOAD) == frozenset({0, 3, 6})
        assert cgra.supporting_pes(Opcode.STORE) == frozenset({0, 3, 6})
        assert cgra.supporting_pes(Opcode.ADD) == frozenset(range(9))

    def test_mul_sparse_checkerboard_layout(self):
        cgra = build_preset("mul_sparse_checkerboard", 3, 3).build()
        expected = frozenset(
            r * 3 + c for r in range(3) for c in range(3) if (r + c) % 2 == 0
        )
        for opcode in MUL_FAMILY:
            assert cgra.supporting_pes(opcode) == expected
        assert cgra.supports_everywhere(Opcode.ADD)

    def test_mul_free_torus_has_no_multiplier(self):
        cgra = build_preset("mul_free_torus", 2, 2).build()
        assert cgra.supporting_pes(Opcode.MUL) == frozenset()
        assert cgra.is_homogeneous  # uniformly restricted is homogeneous

    def test_families_are_disjoint(self):
        assert not (MUL_FAMILY & MEMORY_FAMILY)


class TestHeterogeneousCGRAIdentity:
    """Satellite: eq/hash must include the PE operation sets."""

    def test_heterogeneous_arrays_do_not_collide(self):
        plain = CGRA(4, 4)
        checker = build_preset("mul_sparse_checkerboard", 4, 4).build()
        memcol = build_preset("memory_column_mesh", 4, 4).build()
        assert plain != checker
        assert len({plain, checker, memcol}) == 3  # usable as dict keys
        assert checker == build_preset("mul_sparse_checkerboard", 4, 4).build()
        assert hash(checker) == hash(
            build_preset("mul_sparse_checkerboard", 4, 4).build()
        )

    def test_homogeneous_restriction_differs_from_full_isa(self):
        full = CGRA(2, 2)
        restricted = CGRA(2, 2, operations=[Opcode.ADD, Opcode.CONST])
        assert full != restricted


class TestMRRGCompatibility:
    def test_vertex_compatibility_follows_the_pe(self):
        cgra = build_preset("mul_sparse_checkerboard", 3, 3).build()
        mrrg = MRRG(cgra, ii=2)
        for vertex in mrrg.vertices():
            assert mrrg.supports(vertex, Opcode.MUL) == cgra.supports(
                mrrg.pe_of(vertex), Opcode.MUL
            )
            assert mrrg.supports(vertex, Opcode.ADD)

    def test_compatible_vertices_filters_by_op(self):
        cgra = build_preset("mul_sparse_checkerboard", 3, 3).build()
        mrrg = MRRG(cgra, ii=3)
        for slot in range(3):
            muls = list(mrrg.compatible_vertices(slot, Opcode.MUL))
            assert muls == [
                v for v in mrrg.vertices_with_label(slot)
                if mrrg.supports(v, Opcode.MUL)
            ]
            adds = list(mrrg.compatible_vertices(slot, Opcode.ADD))
            assert adds == list(mrrg.vertices_with_label(slot))

    def test_networkx_export_carries_operation_sets(self):
        cgra = build_preset("memory_column_mesh", 2, 2).build()
        graph = MRRG(cgra, ii=2).to_networkx()
        for vertex, data in graph.nodes(data=True):
            assert data["operations"] == cgra.pe(data["pe"]).operations
