"""Unit tests for ASAP/ALAP/MobS, ResII, RecII and mII (paper Sec. IV-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.analysis import (
    MobilitySchedule,
    alap_schedule,
    asap_schedule,
    critical_path_length,
    min_ii,
    mobility_schedule,
    rec_ii,
    rec_ii_by_cycle_enumeration,
    res_ii,
)
from repro.graphs.generators import binary_tree_dfg, chain_dfg, random_dfg


class TestAsapAlap:
    def test_chain(self):
        dfg = chain_dfg(5, loop_carried=False)
        asap = asap_schedule(dfg)
        assert [asap[i] for i in range(5)] == [0, 1, 2, 3, 4]
        alap = alap_schedule(dfg)
        assert alap == asap  # a pure chain has no mobility

    def test_tree_mobility(self):
        dfg = binary_tree_dfg(2)  # 4 leaves, 3 adds
        mobs = mobility_schedule(dfg)
        assert critical_path_length(dfg) == 3
        # leaves feeding the root's child adders have zero mobility; the
        # deeper leaves would only exist in unbalanced trees
        assert all(mobs.mobility(n) >= 0 for n in dfg.node_ids())

    def test_running_example_matches_paper_table1(self, example_dfg):
        mobs = mobility_schedule(example_dfg)
        assert mobs.asap_rows() == [
            [0, 1, 2, 3, 4], [5, 11], [6, 12], [7, 8, 13], [9], [10]]
        assert mobs.alap_rows() == [
            [4], [3, 5], [0, 2, 6], [1, 8, 11], [7, 9, 12], [10, 13]]
        assert mobs.rows() == [
            [0, 1, 2, 3, 4],
            [0, 1, 2, 3, 5, 11],
            [0, 1, 2, 6, 11, 12],
            [1, 7, 8, 11, 12, 13],
            [7, 9, 12, 13],
            [10, 13],
        ]

    def test_alap_horizon_extension(self, example_dfg):
        longer = alap_schedule(example_dfg, horizon=8)
        baseline = alap_schedule(example_dfg)
        assert all(longer[n] == baseline[n] + 2 for n in example_dfg.node_ids())

    def test_alap_rejects_too_short_horizon(self, example_dfg):
        with pytest.raises(ValueError):
            alap_schedule(example_dfg, horizon=3)

    def test_mobility_window_and_validation(self, example_dfg):
        mobs = mobility_schedule(example_dfg, slack=2)
        mobs.validate()
        assert list(mobs.window(4)) == [0, 1, 2]  # slack widens every window
        assert mobs.length == 8

    def test_negative_slack_rejected(self, example_dfg):
        with pytest.raises(ValueError):
            mobility_schedule(example_dfg, slack=-1)


class TestMinimumII:
    def test_res_ii(self, example_dfg):
        assert res_ii(example_dfg, 4) == 4     # ceil(14/4)
        assert res_ii(example_dfg, 25) == 1
        with pytest.raises(ValueError):
            res_ii(example_dfg, 0)

    def test_rec_ii_running_example(self, example_dfg):
        assert rec_ii(example_dfg) == 4
        assert rec_ii_by_cycle_enumeration(example_dfg) == 4

    def test_rec_ii_without_recurrence(self):
        dfg = chain_dfg(6, loop_carried=False)
        assert rec_ii(dfg) == 1

    def test_rec_ii_scales_with_distance(self):
        dfg = chain_dfg(6, loop_carried=False)
        dfg.add_loop_carried_edge(5, 0, distance=2)
        # cycle length 6, distance 2 -> ceil(6/2) = 3
        assert rec_ii(dfg) == 3
        assert rec_ii_by_cycle_enumeration(dfg) == 3

    def test_min_ii_is_max_of_both(self, example_dfg):
        assert min_ii(example_dfg, 4) == 4
        assert min_ii(example_dfg, 2) == 7   # ResII = ceil(14/2) = 7 dominates

    @settings(max_examples=30, deadline=None)
    @given(
        num_nodes=st.integers(min_value=4, max_value=14),
        num_lc=st.integers(min_value=0, max_value=3),
        distance=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_rec_ii_matches_cycle_enumeration(self, num_nodes, num_lc, distance,
                                               seed):
        dfg = random_dfg(num_nodes, edge_probability=0.2,
                         num_loop_carried=num_lc, max_distance=distance,
                         seed=seed)
        assert rec_ii(dfg) == rec_ii_by_cycle_enumeration(dfg)

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=4, max_value=16),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_asap_alap_windows_are_consistent(self, num_nodes, seed):
        dfg = random_dfg(num_nodes, seed=seed)
        mobs = mobility_schedule(dfg)
        length = critical_path_length(dfg)
        for node in dfg.node_ids():
            assert 0 <= mobs.earliest(node) <= mobs.latest(node) < length
        # every data dependence fits inside the windows
        for edge in dfg.data_edges():
            assert mobs.earliest(edge.src) < mobs.latest(edge.dst) + 1
