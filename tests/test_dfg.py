"""Unit tests for the DFG data structure."""

import pytest

from repro.arch.isa import Opcode
from repro.graphs.dfg import DFG, DependenceKind, DFGEdge
from repro.graphs.generators import chain_dfg, random_dfg


class TestConstruction:
    def test_add_nodes_auto_ids(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT)
        b = dfg.add_node(opcode=Opcode.ADD)
        assert (a.id, b.id) == (0, 1)
        assert dfg.num_nodes == 2

    def test_duplicate_node_id_rejected(self):
        dfg = DFG()
        dfg.add_node(3)
        with pytest.raises(ValueError):
            dfg.add_node(3)

    def test_edge_requires_existing_nodes(self):
        dfg = DFG()
        dfg.add_node(0)
        with pytest.raises(ValueError):
            dfg.add_data_edge(0, 1)

    def test_data_self_loop_rejected(self):
        dfg = DFG()
        dfg.add_node(0)
        with pytest.raises(ValueError):
            dfg.add_data_edge(0, 0)

    def test_loop_carried_distance_defaults_to_one(self):
        dfg = DFG()
        dfg.add_node(0)
        dfg.add_node(1)
        edge = dfg.add_edge(1, 0, DependenceKind.LOOP_CARRIED, distance=0)
        assert edge.distance == 1

    def test_edge_kind_invariants(self):
        with pytest.raises(ValueError):
            DFGEdge(src=0, dst=1, kind=DependenceKind.DATA, distance=1)
        with pytest.raises(ValueError):
            DFGEdge(src=0, dst=1, kind=DependenceKind.LOOP_CARRIED, distance=0)


class TestAccessors:
    def test_successors_predecessors(self, example_dfg):
        assert set(example_dfg.successors(6)) == {7, 8}
        assert set(example_dfg.predecessors(7)) == {6, 1}
        assert 4 in example_dfg.successors(7)  # loop-carried successor

    def test_edge_kind_queries(self, example_dfg):
        assert len(example_dfg.loop_carried_edges()) == 2
        assert len(example_dfg.data_edges()) == 13
        assert example_dfg.num_edges == 15

    def test_neighbor_ids_are_undirected(self, example_dfg):
        assert example_dfg.neighbor_ids(4) == {5, 7}
        assert example_dfg.neighbor_ids(10) == {9, 7}

    def test_undirected_edges_deduplicate(self):
        dfg = DFG()
        dfg.add_node(0)
        dfg.add_node(1)
        dfg.add_data_edge(0, 1)
        dfg.add_loop_carried_edge(1, 0)
        assert dfg.undirected_edges() == {(0, 1)}

    def test_operands_sorted_by_index(self, example_dfg):
        operands = example_dfg.operands(7)
        assert [e.operand_index for e in operands] == [0, 1]
        assert [e.src for e in operands] == [6, 1]

    def test_sources_and_sinks(self, example_dfg):
        assert set(example_dfg.source_nodes()) == {0, 1, 2, 3, 4}
        assert 10 in example_dfg.sink_nodes()


class TestValidationAndViews:
    def test_validate_accepts_running_example(self, example_dfg):
        example_dfg.validate()

    def test_validate_rejects_data_cycle(self):
        dfg = DFG()
        for i in range(3):
            dfg.add_node(i)
        dfg.add_data_edge(0, 1)
        dfg.add_data_edge(1, 2)
        dfg.add_data_edge(2, 0)
        with pytest.raises(ValueError):
            dfg.validate()

    def test_validate_rejects_operands_on_leaf_opcodes(self):
        dfg = DFG()
        dfg.add_node(0, Opcode.ADD)
        dfg.add_node(1, Opcode.CONST)
        dfg.add_data_edge(0, 1)
        with pytest.raises(ValueError):
            dfg.validate()

    def test_validate_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            DFG().validate()

    def test_data_dag_excludes_loop_carried(self, example_dfg):
        dag = example_dfg.data_dag()
        assert not dag.has_edge(7, 4)
        assert dag.has_edge(6, 7)

    def test_full_digraph_keeps_distances(self, example_dfg):
        graph = example_dfg.full_digraph()
        assert graph[7][4]["distance"] == 1
        assert graph[6][7]["distance"] == 0

    def test_to_networkx_is_undirected(self, example_dfg):
        graph = example_dfg.to_networkx()
        assert graph.number_of_nodes() == 14
        assert graph.has_edge(4, 7)  # loop-carried edge present undirected


class TestCopySerialisation:
    def test_copy_is_deep_enough(self, example_dfg):
        clone = example_dfg.copy()
        clone.add_node(99)
        assert not example_dfg.has_node(99)
        assert clone.num_edges == example_dfg.num_edges

    def test_relabeled(self, example_dfg):
        mapping = {i: i + 100 for i in example_dfg.node_ids()}
        renamed = example_dfg.relabeled(mapping)
        assert renamed.has_node(104)
        assert set(renamed.successors(106)) == {107, 108}

    def test_json_round_trip(self, example_dfg):
        restored = DFG.from_json(example_dfg.to_json())
        assert restored.num_nodes == example_dfg.num_nodes
        assert restored.num_edges == example_dfg.num_edges
        assert restored.undirected_edges() == example_dfg.undirected_edges()
        assert restored.node(2).opcode is Opcode.CONST

    def test_dict_round_trip_preserves_kinds(self):
        dfg = chain_dfg(4)
        restored = DFG.from_dict(dfg.to_dict())
        assert len(restored.loop_carried_edges()) == 1

    def test_generator_graphs_serialise(self):
        dfg = random_dfg(12, seed=3)
        restored = DFG.from_json(dfg.to_json())
        assert restored.num_nodes == 12
