"""Tests for the repro.perf subsystem and its surfaces.

Covers: PerfCounters accounting through both mapping engines
(``MappingResult.stats``), detailed in-loop attribution under
``config.profile``, the ``repro-map profile`` CLI command, the batch-cache
header record, and the memoized ``Schedule.slot_population``.
"""

import json

import pytest

from repro.arch.cgra import CGRA
from repro.baseline.satmapit import SatMapItMapper
from repro.cli import main as cli_main
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.time_solver import TimeSolver
from repro.experiments.batch import BatchRunner, build_cases
from repro.perf import PerfCounters, timed
from repro.smt.sat import SATSolver
from repro.workloads.suite import load_benchmark


class TestPerfCounters:
    def test_timed_accumulates_and_tolerates_none(self):
        perf = PerfCounters()
        with timed(perf, "encode_seconds"):
            pass
        assert perf.encode_seconds >= 0.0
        with timed(None, "encode_seconds"):
            pass  # no-op, must not raise

    def test_solver_folds_counters_into_perf(self):
        perf = PerfCounters()
        solver = SATSolver(perf=perf)
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        assert solver.solve().is_sat
        assert perf.solve_calls == 1
        assert perf.propagations >= 0
        assert perf.solve_seconds > 0.0

    def test_as_dict_detail_gating(self):
        plain = PerfCounters().as_dict()
        assert "propagate" not in plain["seconds"]
        detailed = PerfCounters(detailed=True).as_dict()
        assert "propagate" in detailed["seconds"]
        assert "reduce" in detailed["seconds"]


class TestMappingResultStats:
    def test_decoupled_engine_populates_stats(self):
        result = MonomorphismMapper(CGRA(4, 4), MapperConfig()).map(
            load_benchmark("bitcount"))
        assert result.success
        stats = result.stats
        assert stats is not None
        assert stats["engine"] == "monomorphism"
        assert stats["backend"] == "arena"
        assert stats["solver"]["propagations"] > 0
        assert stats["seconds"]["encode"] > 0.0
        assert stats["space"]["calls"] >= 1
        assert not stats["detailed"]
        assert "propagate" not in stats["seconds"]

    def test_baseline_engine_populates_stats_with_detail(self):
        result = SatMapItMapper(
            CGRA(4, 4), BaselineConfig(profile=True)
        ).map(load_benchmark("bitcount"))
        assert result.success
        stats = result.stats
        assert stats["engine"] == "satmapit"
        assert stats["detailed"]
        assert stats["solver"]["solve_calls"] >= 1
        assert stats["seconds"]["propagate"] >= 0.0

    def test_infeasible_result_still_carries_stats(self):
        from repro.arch.spec import build_preset

        cgra = build_preset("mul_free_torus", 4, 4).build()
        result = MonomorphismMapper(cgra, MapperConfig()).map(
            load_benchmark("fft"))
        assert not result.success
        assert result.stats is not None


class TestProfileCLI:
    def test_profile_command_emits_json(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = cli_main([
            "profile", "bitcount", "--cgra", "4x4", "--json", str(out),
        ])
        assert code == 0
        records = json.loads(out.read_text())
        assert len(records) == 1
        record = records[0]
        assert record["benchmark"] == "bitcount"
        assert record["status"] == "success"
        assert record["stats"]["detailed"]
        assert "propagate" in record["stats"]["seconds"]
        assert record["stats"]["solver"]["propagations"] > 0
        rendered = capsys.readouterr().out
        assert "Profile" in rendered and "bitcount" in rendered

    def test_profile_command_baseline_reference_backend(self, capsys):
        code = cli_main([
            "profile", "bitcount", "--cgra", "3x3",
            "--approach", "baseline", "--solver-backend", "reference",
        ])
        assert code == 0
        out = capsys.readouterr().out
        records = json.loads(out[out.index("["):])
        assert records[0]["approach"] == "satmapit"
        assert records[0]["stats"]["backend"] == "reference"

    def test_profile_command_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            cli_main(["profile", "definitely-not-a-benchmark"])


class TestBatchCacheHeader:
    def test_header_records_job_count_and_cache_still_hits(self, tmp_path):
        cache = tmp_path / "cache.jsonl"
        cases = build_cases(["bitcount"], ["2x2"], ["monomorphism"], 60.0)
        first = BatchRunner(jobs=2, cache_path=str(cache)).run(cases)
        assert first.executed == 1
        lines = [json.loads(line) for line in
                 cache.read_text().splitlines() if line.strip()]
        assert lines[0]["header"]["jobs"] == 2
        assert lines[0]["header"]["cases"] == 1
        # a second run must hit the cache despite the header line
        second = BatchRunner(jobs=3, cache_path=str(cache)).run(cases)
        assert second.cache_hits == 1
        assert second.executed == 0

    def test_sweep_and_drivers_default_jobs_to_cpu_count(self):
        import os

        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--benchmarks", "bitcount"])
        assert args.jobs == (os.cpu_count() or 1)

    def test_jobs_default_to_one_when_cpu_count_unknown(self, monkeypatch):
        """``os.cpu_count()`` may return None; ``--jobs`` must default to 1.

        The parser bakes the default in at build time, so the regression
        is only visible when the parser is built *while* cpu_count is
        unknowable -- exactly what containers with restricted procfs do.
        """
        import os

        from repro.cli import build_parser

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        args = build_parser().parse_args(["sweep", "--benchmarks", "bitcount"])
        assert args.jobs == 1


class TestScheduleMemoization:
    def test_slot_population_is_cached_and_stable(self):
        dfg = load_benchmark("bitcount")
        solver = TimeSolver(dfg, CGRA(4, 4), ii=3)
        schedule = solver.solve(timeout_seconds=30)
        assert schedule is not None
        first = schedule.slot_population()
        assert schedule.slot_population() is first  # memoized object
        assert schedule.max_slot_population() == max(len(s) for s in first)
        # the cached populations agree with a fresh computation
        recomputed = [set() for _ in range(schedule.ii)]
        for node_id, start in schedule.start_times.items():
            recomputed[start % schedule.ii].add(node_id)
        assert list(first) == recomputed
        # immutable: callers cannot corrupt the shared cache in place
        with pytest.raises(AttributeError):
            first[0].add(999)


class TestPerfHistory:
    """The BENCH_*.json artifacts keep a per-commit trajectory."""

    def test_fresh_artifact_gets_summary_and_one_history_entry(self, tmp_path):
        from repro.perf.history import update_artifact

        path = tmp_path / "BENCH.json"
        written = update_artifact(
            path,
            {"workload": "w", "speedup": 2.5},
            {"label": "native-vs-arena", "speedup": 2.5},
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == written
        assert on_disk["workload"] == "w"
        assert len(on_disk["history"]) == 1
        entry = on_disk["history"][0]
        assert entry["label"] == "native-vs-arena"
        # stamped in: the commit SHA (or None outside a checkout) and a
        # UTC date in YYYY-MM-DD
        assert "git_sha" in entry
        assert len(entry["date"]) == 10

    def test_rerun_replaces_same_commit_entry_and_new_commit_appends(
            self, tmp_path):
        from repro.perf.history import update_artifact

        path = tmp_path / "BENCH.json"
        update_artifact(path, {"speedup": 1.0},
                        {"label": "l", "git_sha": "aaa", "speedup": 1.0})
        update_artifact(path, {"speedup": 2.0},
                        {"label": "l", "git_sha": "aaa", "speedup": 2.0})
        data = json.loads(path.read_text())
        assert [e["speedup"] for e in data["history"]] == [2.0]
        update_artifact(path, {"speedup": 3.0},
                        {"label": "l", "git_sha": "bbb", "speedup": 3.0})
        data = json.loads(path.read_text())
        assert [e["speedup"] for e in data["history"]] == [2.0, 3.0]
        assert data["speedup"] == 3.0  # summary tracks the latest run

    def test_independent_labels_share_one_artifact(self, tmp_path):
        from repro.perf.history import update_artifact

        path = tmp_path / "BENCH.json"
        update_artifact(path, {"arena_speedup": 4.0},
                        {"label": "arena-vs-reference", "git_sha": "aaa"})
        update_artifact(path, {"native_speedup": 1.8},
                        {"label": "native-vs-arena", "git_sha": "aaa"})
        data = json.loads(path.read_text())
        # the second leg merged its summary without clobbering the first
        assert data["arena_speedup"] == 4.0
        assert data["native_speedup"] == 1.8
        assert sorted(e["label"] for e in data["history"]) == [
            "arena-vs-reference", "native-vs-arena"]

    def test_corrupt_or_legacy_artifact_starts_a_fresh_history(
            self, tmp_path):
        from repro.perf.history import update_artifact

        path = tmp_path / "BENCH.json"
        path.write_text("not json {{{")
        data = update_artifact(path, {"speedup": 1.5},
                               {"label": "l", "git_sha": "aaa"})
        assert data["speedup"] == 1.5
        assert len(data["history"]) == 1
        # a pre-history artifact (plain summary dict) is upgraded in place
        path.write_text(json.dumps({"speedup": 9.9, "workload": "old"}))
        data = update_artifact(path, {"speedup": 1.0},
                               {"label": "l", "git_sha": "bbb"})
        assert data["workload"] == "old"
        assert data["speedup"] == 1.0
        assert len(data["history"]) == 1

    def test_summary_only_update_keeps_history(self, tmp_path):
        from repro.perf.history import update_artifact

        path = tmp_path / "BENCH.json"
        update_artifact(path, {"speedup": 1.0}, {"label": "l",
                                                 "git_sha": "aaa"})
        update_artifact(path, {"extra": True})
        data = json.loads(path.read_text())
        assert data["extra"] is True
        assert len(data["history"]) == 1
