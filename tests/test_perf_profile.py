"""Tests for the repro.perf subsystem and its surfaces.

Covers: PerfCounters accounting through both mapping engines
(``MappingResult.stats``), detailed in-loop attribution under
``config.profile``, the ``repro-map profile`` CLI command, the batch-cache
header record, and the memoized ``Schedule.slot_population``.
"""

import json

import pytest

from repro.arch.cgra import CGRA
from repro.baseline.satmapit import SatMapItMapper
from repro.cli import main as cli_main
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.time_solver import TimeSolver
from repro.experiments.batch import BatchRunner, build_cases
from repro.perf import PerfCounters, timed
from repro.smt.sat import SATSolver
from repro.workloads.suite import load_benchmark


class TestPerfCounters:
    def test_timed_accumulates_and_tolerates_none(self):
        perf = PerfCounters()
        with timed(perf, "encode_seconds"):
            pass
        assert perf.encode_seconds >= 0.0
        with timed(None, "encode_seconds"):
            pass  # no-op, must not raise

    def test_solver_folds_counters_into_perf(self):
        perf = PerfCounters()
        solver = SATSolver(perf=perf)
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        assert solver.solve().is_sat
        assert perf.solve_calls == 1
        assert perf.propagations >= 0
        assert perf.solve_seconds > 0.0

    def test_as_dict_detail_gating(self):
        plain = PerfCounters().as_dict()
        assert "propagate" not in plain["seconds"]
        detailed = PerfCounters(detailed=True).as_dict()
        assert "propagate" in detailed["seconds"]
        assert "reduce" in detailed["seconds"]


class TestMappingResultStats:
    def test_decoupled_engine_populates_stats(self):
        result = MonomorphismMapper(CGRA(4, 4), MapperConfig()).map(
            load_benchmark("bitcount"))
        assert result.success
        stats = result.stats
        assert stats is not None
        assert stats["engine"] == "monomorphism"
        assert stats["backend"] == "arena"
        assert stats["solver"]["propagations"] > 0
        assert stats["seconds"]["encode"] > 0.0
        assert stats["space"]["calls"] >= 1
        assert not stats["detailed"]
        assert "propagate" not in stats["seconds"]

    def test_baseline_engine_populates_stats_with_detail(self):
        result = SatMapItMapper(
            CGRA(4, 4), BaselineConfig(profile=True)
        ).map(load_benchmark("bitcount"))
        assert result.success
        stats = result.stats
        assert stats["engine"] == "satmapit"
        assert stats["detailed"]
        assert stats["solver"]["solve_calls"] >= 1
        assert stats["seconds"]["propagate"] >= 0.0

    def test_infeasible_result_still_carries_stats(self):
        from repro.arch.spec import build_preset

        cgra = build_preset("mul_free_torus", 4, 4).build()
        result = MonomorphismMapper(cgra, MapperConfig()).map(
            load_benchmark("fft"))
        assert not result.success
        assert result.stats is not None


class TestProfileCLI:
    def test_profile_command_emits_json(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = cli_main([
            "profile", "bitcount", "--cgra", "4x4", "--json", str(out),
        ])
        assert code == 0
        records = json.loads(out.read_text())
        assert len(records) == 1
        record = records[0]
        assert record["benchmark"] == "bitcount"
        assert record["status"] == "success"
        assert record["stats"]["detailed"]
        assert "propagate" in record["stats"]["seconds"]
        assert record["stats"]["solver"]["propagations"] > 0
        rendered = capsys.readouterr().out
        assert "Profile" in rendered and "bitcount" in rendered

    def test_profile_command_baseline_reference_backend(self, capsys):
        code = cli_main([
            "profile", "bitcount", "--cgra", "3x3",
            "--approach", "baseline", "--solver-backend", "reference",
        ])
        assert code == 0
        out = capsys.readouterr().out
        records = json.loads(out[out.index("["):])
        assert records[0]["approach"] == "satmapit"
        assert records[0]["stats"]["backend"] == "reference"

    def test_profile_command_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            cli_main(["profile", "definitely-not-a-benchmark"])


class TestBatchCacheHeader:
    def test_header_records_job_count_and_cache_still_hits(self, tmp_path):
        cache = tmp_path / "cache.jsonl"
        cases = build_cases(["bitcount"], ["2x2"], ["monomorphism"], 60.0)
        first = BatchRunner(jobs=2, cache_path=str(cache)).run(cases)
        assert first.executed == 1
        lines = [json.loads(line) for line in
                 cache.read_text().splitlines() if line.strip()]
        assert lines[0]["header"]["jobs"] == 2
        assert lines[0]["header"]["cases"] == 1
        # a second run must hit the cache despite the header line
        second = BatchRunner(jobs=3, cache_path=str(cache)).run(cases)
        assert second.cache_hits == 1
        assert second.executed == 0

    def test_sweep_and_drivers_default_jobs_to_cpu_count(self):
        import os

        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--benchmarks", "bitcount"])
        assert args.jobs == (os.cpu_count() or 1)


class TestScheduleMemoization:
    def test_slot_population_is_cached_and_stable(self):
        dfg = load_benchmark("bitcount")
        solver = TimeSolver(dfg, CGRA(4, 4), ii=3)
        schedule = solver.solve(timeout_seconds=30)
        assert schedule is not None
        first = schedule.slot_population()
        assert schedule.slot_population() is first  # memoized object
        assert schedule.max_slot_population() == max(len(s) for s in first)
        # the cached populations agree with a fresh computation
        recomputed = [set() for _ in range(schedule.ii)]
        for node_id, start in schedule.start_times.items():
            recomputed[start % schedule.ii].add(node_id)
        assert list(first) == recomputed
        # immutable: callers cannot corrupt the shared cache in place
        with pytest.raises(AttributeError):
            first[0].add(999)
