"""Differential property tests: mapper vs validator vs cycle-level sim.

Seeded random (but arity-consistent, hence executable) DFGs are mapped
onto homogeneous fabrics of every topology *and* onto the heterogeneous
presets. Every mapping the mapper returns must

* pass :mod:`repro.core.validation` (mono1/2/3, timing, capacity,
  connectivity, op support),
* never place an operation on a PE that does not implement it, and
* execute on the cycle-level executor with a value trace identical to the
  sequential :class:`repro.sim.reference.ReferenceInterpreter`.

The seed base is fixed (overridable through ``REPRO_PROPERTY_SEED`` so CI
can pin it explicitly), making every run reproducible.
"""

import os

import pytest

from repro.arch.cgra import CGRA
from repro.arch.spec import build_preset
from repro.arch.topology import Topology
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.validation import validate_mapping
from repro.graphs.generators import executable_random_dfg
from repro.sim.executor import run_and_compare
from repro.sim.reference import ReferenceInterpreter

SEED_BASE = int(os.environ.get("REPRO_PROPERTY_SEED", "20260730"))
ITERATIONS = 6

TOPOLOGIES = [Topology.TORUS, Topology.MESH, Topology.DIAGONAL]
HETEROGENEOUS_PRESETS = ["memory_column_mesh", "mul_sparse_checkerboard"]


def _fast_config() -> MapperConfig:
    return MapperConfig(
        time_timeout_seconds=20.0,
        space_timeout_seconds=20.0,
        total_timeout_seconds=40.0,
    )


def _check_mapping_differentially(dfg, cgra, result) -> None:
    """The shared oracle: validation, op support, and trace equality."""
    assert result.success, f"{dfg.name}: {result.summary()}"
    mapping = result.mapping
    assert validate_mapping(mapping) == []
    for node in dfg.nodes():
        assert cgra.pe(mapping.pe(node.id)).supports(node.opcode), (
            f"node {node.id} ({node.opcode}) on unsupported "
            f"PE {mapping.pe(node.id)}"
        )
    mapped_trace, reference_trace = run_and_compare(
        mapping, iterations=ITERATIONS
    )
    # run_and_compare raises on mismatch; cross-check the traces anyway so
    # this test stays meaningful if its internals ever change
    assert mapped_trace.values == reference_trace.values
    fresh = ReferenceInterpreter(dfg).run(ITERATIONS)
    assert fresh.values == reference_trace.values


class TestHomogeneousTopologies:
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t.value for t in TOPOLOGIES])
    @pytest.mark.parametrize("offset", range(3))
    def test_mapping_matches_reference(self, topology, offset):
        seed = SEED_BASE + offset
        dfg = executable_random_dfg(8 + offset, seed=seed)
        cgra = CGRA(3, 3, topology=topology)
        result = MonomorphismMapper(cgra, _fast_config()).map(dfg)
        _check_mapping_differentially(dfg, cgra, result)


class TestHeterogeneousPresets:
    @pytest.mark.parametrize("preset", HETEROGENEOUS_PRESETS)
    @pytest.mark.parametrize("offset", range(3))
    def test_mapping_matches_reference(self, preset, offset):
        seed = SEED_BASE + 100 + offset
        dfg = executable_random_dfg(8 + offset, seed=seed)
        cgra = build_preset(preset, 3, 3).build()
        result = MonomorphismMapper(cgra, _fast_config()).map(dfg)
        _check_mapping_differentially(dfg, cgra, result)

    @pytest.mark.parametrize("offset", range(2))
    def test_baseline_agrees_with_reference_on_checkerboard(self, offset):
        seed = SEED_BASE + 200 + offset
        dfg = executable_random_dfg(7 + offset, seed=seed)
        cgra = build_preset("mul_sparse_checkerboard", 3, 3).build()
        result = SatMapItMapper(
            cgra, BaselineConfig(timeout_seconds=30.0)
        ).map(dfg)
        _check_mapping_differentially(dfg, cgra, result)


class TestDeterminism:
    def test_same_seed_same_mapping(self):
        dfg_a = executable_random_dfg(9, seed=SEED_BASE)
        dfg_b = executable_random_dfg(9, seed=SEED_BASE)
        assert dfg_a.to_dict() == dfg_b.to_dict()
        cgra = build_preset("mul_sparse_checkerboard", 3, 3).build()
        first = MonomorphismMapper(cgra, _fast_config()).map(dfg_a)
        second = MonomorphismMapper(cgra, _fast_config()).map(dfg_b)
        assert first.success and second.success
        assert first.ii == second.ii
        assert first.mapping.placement == second.mapping.placement
        assert first.mapping.schedule.start_times == \
            second.mapping.schedule.start_times
