"""Unit tests for PEs, register files and interconnect topologies."""

import pytest

from repro.arch.isa import Opcode
from repro.arch.pe import ProcessingElement, RegisterFile, RegisterFileOverflow
from repro.arch.topology import (
    Topology,
    all_positions,
    grid_neighbors,
    max_degree,
    uniform_degree,
)


class TestRegisterFile:
    def test_write_and_read(self):
        rf = RegisterFile(capacity=4)
        rf.write("x", 41)
        assert rf.read("x") == 41
        assert rf.contains("x")
        assert rf.live_registers == 1

    def test_overwrite_does_not_allocate(self):
        rf = RegisterFile(capacity=1)
        rf.write("x", 1)
        rf.write("x", 2)
        assert rf.read("x") == 2

    def test_overflow(self):
        rf = RegisterFile(capacity=2)
        rf.write("a", 1)
        rf.write("b", 2)
        with pytest.raises(RegisterFileOverflow):
            rf.write("c", 3)

    def test_free_releases_capacity(self):
        rf = RegisterFile(capacity=1)
        rf.write("a", 1)
        rf.free("a")
        rf.write("b", 2)
        assert rf.read("b") == 2

    def test_read_unknown_register(self):
        rf = RegisterFile()
        with pytest.raises(KeyError):
            rf.read("nope")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RegisterFile(capacity=0)

    def test_clear(self):
        rf = RegisterFile(capacity=4)
        rf.write("a", 1)
        rf.clear()
        assert rf.live_registers == 0


class TestProcessingElement:
    def test_position_and_supports(self):
        pe = ProcessingElement(index=3, row=1, col=1)
        assert pe.position == (1, 1)
        assert pe.supports(Opcode.ADD)

    def test_restricted_operations(self):
        pe = ProcessingElement(index=0, row=0, col=0,
                               operations=frozenset({Opcode.ADD}))
        assert pe.supports(Opcode.ADD)
        assert not pe.supports(Opcode.MUL)

    def test_make_register_file_uses_configured_size(self):
        pe = ProcessingElement(index=0, row=0, col=0, register_file_size=7)
        assert pe.make_register_file().capacity == 7


class TestTopology:
    def test_mesh_corner_has_two_neighbors(self):
        assert grid_neighbors(3, 3, 0, 0, Topology.MESH) == {(0, 1), (1, 0)}

    def test_mesh_center_has_four_neighbors(self):
        assert len(grid_neighbors(3, 3, 1, 1, Topology.MESH)) == 4

    def test_torus_wraps_around(self):
        neighbors = grid_neighbors(3, 3, 0, 0, Topology.TORUS)
        assert (2, 0) in neighbors and (0, 2) in neighbors
        assert len(neighbors) == 4

    def test_torus_2x2_has_two_distinct_neighbors(self):
        # up == down and left == right on a 2-wide torus
        assert len(grid_neighbors(2, 2, 0, 0, Topology.TORUS)) == 2

    def test_diagonal_center_has_eight_neighbors(self):
        assert len(grid_neighbors(3, 3, 1, 1, Topology.DIAGONAL)) == 8

    def test_uniform_degree(self):
        assert uniform_degree(3, 3, Topology.TORUS)
        assert not uniform_degree(3, 3, Topology.MESH)
        assert uniform_degree(2, 2, Topology.TORUS)

    def test_max_degree(self):
        assert max_degree(3, 3, Topology.MESH) == 4
        assert max_degree(3, 3, Topology.TORUS) == 4
        assert max_degree(2, 2, Topology.TORUS) == 2

    def test_all_positions_row_major(self):
        assert all_positions(2, 3) == [(0, 0), (0, 1), (0, 2),
                                       (1, 0), (1, 1), (1, 2)]

    def test_out_of_range_position(self):
        with pytest.raises(ValueError):
            grid_neighbors(2, 2, 2, 0, Topology.MESH)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            grid_neighbors(0, 2, 0, 0, Topology.MESH)

    def test_neighbors_never_contain_self(self):
        for topology in Topology:
            for rows, cols in [(2, 2), (3, 4), (5, 5)]:
                for r, c in all_positions(rows, cols):
                    assert (r, c) not in grid_neighbors(rows, cols, r, c, topology)
