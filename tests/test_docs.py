"""Tier-1 wrapper around the docs consistency checker (tools/check_docs.py).

Keeps the documentation contract inside the ordinary test run: relative
links must resolve and every documented CLI example must match the real
parser surface (and vice versa -- every subcommand must be documented).
"""

import importlib.util
import os

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
_spec = importlib.util.spec_from_file_location(
    "check_docs", os.path.join(REPO_ROOT, "tools", "check_docs.py"))
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_no_dead_links(self):
        assert check_docs.check_links(check_docs.doc_files()) == []

    def test_no_cli_drift(self):
        assert check_docs.check_cli_drift(check_docs.doc_files()) == []

    def test_every_doc_is_covered(self):
        names = {os.path.basename(p) for p in check_docs.doc_files()}
        assert "README.md" in names
        assert "index.md" in names
        assert "service.md" in names


class TestCheckerDetectsProblems:
    """The checks must actually fail on broken docs, not just pass."""

    def test_dead_link_detected(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md) and "
                       "[ok](https://example.com)")
        problems = check_docs.check_links([str(bad)])
        assert len(problems) == 1
        assert "no/such/file.md" in problems[0]

    def test_unknown_flag_detected(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("run `repro-map map --no-such-flag 1`\n"
                       "and `repro-serve start --port 1`\n")
        problems = check_docs.check_cli_drift([str(bad)])
        assert any("--no-such-flag" in p for p in problems)
        # the real flag produced no complaint
        assert not any("--port" in p for p in problems)

    def test_unknown_subcommand_detected(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("`repro-map transmogrify --fast`")
        problems = check_docs.check_cli_drift([str(bad)])
        assert any("transmogrify" in p for p in problems)

    def test_missing_subcommand_mention_detected(self, tmp_path):
        sparse = tmp_path / "sparse.md"
        sparse.write_text("only `repro-map map` is mentioned here")
        problems = check_docs.check_cli_drift([str(sparse)])
        assert any("repro-map sweep" in p for p in problems)
        assert any("repro-serve start" in p for p in problems)

    def test_continuation_lines_are_joined(self, tmp_path):
        doc = tmp_path / "wrapped.md"
        doc.write_text("repro-map sweep --sizes 2x2 \\\n"
                       "    --jobs 4 --bogus-flag\n")
        problems = check_docs.check_cli_drift([str(doc)])
        assert any("--bogus-flag" in p for p in problems)
        assert not any("--jobs" in p for p in problems)

    def test_parser_surface_includes_forwarded_drivers(self):
        surface = check_docs.cli_surfaces()["repro-map"]
        assert "--remote" in surface["map"]
        assert "--strategy" in surface["map"]
        assert "--opt-levels" in surface["optsweep"]  # inline driver parser
        serve = check_docs.cli_surfaces()["repro-serve"]
        assert "--store" in serve["start"]
