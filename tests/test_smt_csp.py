"""Unit tests for the finite-domain ("mini SMT") layer."""

import pytest

from repro.smt.cnf import FALSE_LIT, TRUE_LIT
from repro.smt.csp import FiniteDomainProblem, IntVar


class TestIntVar:
    def test_domain(self):
        var = IntVar("x", 2, 5)
        assert list(var.domain) == [2, 3, 4, 5]
        assert var.domain_size == 4

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            IntVar("x", 3, 2)

    def test_duplicate_names_rejected(self):
        problem = FiniteDomainProblem()
        problem.new_int("x", 0, 1)
        with pytest.raises(ValueError):
            problem.new_int("x", 0, 1)


class TestSolving:
    def test_single_variable_takes_some_domain_value(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 3, 7)
        solution = problem.solve()
        assert 3 <= solution.value(x) <= 7

    def test_eq_and_ne_constants(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 4)
        problem.add_ne_const(x, 2)
        problem.add_eq_const(x, 2)
        assert problem.solve() is None

    def test_restrict_domain(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 7)
        problem.restrict_domain(x, {1, 4, 6})
        seen = {s.value(x) for s in problem.enumerate_solutions(block_on=[x])}
        assert seen == {1, 4, 6}

    def test_restrict_domain_to_nothing_is_unsat(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        problem.restrict_domain(x, {9, 10})  # disjoint from the domain
        assert problem.solve() is None

    def test_difference_constraint(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 10)
        y = problem.new_int("y", 0, 10)
        problem.add_ge(y, x, 3)       # y >= x + 3
        problem.add_eq_const(x, 6)
        solution = problem.solve()
        assert solution.value(y) >= 9

    def test_unsatisfiable_difference_chain(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        y = problem.new_int("y", 0, 3)
        z = problem.new_int("z", 0, 3)
        problem.add_ge(y, x, 2)
        problem.add_ge(z, y, 2)
        problem.add_ge(x, z, 0)
        assert problem.solve() is None

    def test_add_le_is_symmetric_to_add_ge(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 5)
        y = problem.new_int("y", 0, 5)
        problem.add_le(x, y, 4)       # x + 4 <= y
        solution = problem.solve()
        assert solution.value(y) - solution.value(x) >= 4

    def test_value_and_le_literals(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        assert problem.value_literal(x, 9) == FALSE_LIT
        assert problem.le_literal(x, 3) == TRUE_LIT
        assert problem.le_literal(x, -1) == FALSE_LIT
        problem.add_clause([problem.value_literal(x, 2)])
        assert problem.solve().value(x) == 2

    def test_ge_literal(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        problem.add_clause([problem.ge_literal(x, 2)])
        problem.add_clause([problem.le_literal(x, 2)])
        assert problem.solve().value(x) == 2

    def test_mod_indicator_upper_bound(self):
        problem = FiniteDomainProblem()
        variables = [problem.new_int(f"x{i}", 0, 5) for i in range(4)]
        indicators = [problem.mod_indicator(v, 3, 0) for v in variables]
        # at most one of the four variables may be congruent to 0 mod 3
        problem.at_most(indicators, 1)
        solution = problem.solve()
        congruent = [v for v in variables if solution.value(v) % 3 == 0]
        assert len(congruent) <= 1

    def test_mod_indicator_empty_residue(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 1, 2)
        assert problem.mod_indicator(x, 5, 4) == FALSE_LIT

    def test_mod_indicator_is_cached(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 8)
        first = problem.mod_indicator(x, 4, 1)
        second = problem.mod_indicator(x, 4, 1)
        assert first == second

    def test_cardinality_over_value_literals(self):
        problem = FiniteDomainProblem()
        variables = [problem.new_int(f"x{i}", 0, 1) for i in range(5)]
        ones = [problem.value_literal(v, 1) for v in variables]
        problem.exactly(ones, 2)
        solution = problem.solve()
        assert sum(solution.value(v) for v in variables) == 2

    def test_prioritize_does_not_change_satisfiability(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 6)
        y = problem.new_int("y", 0, 6)
        problem.prioritize(x, 5.0)
        problem.add_ge(y, x, 4)
        solution = problem.solve()
        assert solution.value(y) >= solution.value(x) + 4


class TestEnumeration:
    def test_enumerates_all_solutions(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 2)
        y = problem.new_int("y", 0, 2)
        problem.add_ge(y, x, 1)
        solutions = {(s.value(x), s.value(y))
                     for s in problem.enumerate_solutions()}
        assert solutions == {(0, 1), (0, 2), (1, 2)}

    def test_limit_respected(self):
        problem = FiniteDomainProblem()
        problem.new_int("x", 0, 9)
        assert len(list(problem.enumerate_solutions(limit=4))) == 4

    def test_block_on_subset(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        y = problem.new_int("y", 0, 3)
        values = [s.value(x) for s in problem.enumerate_solutions(block_on=[x])]
        assert sorted(values) == [0, 1, 2, 3]

    def test_forbid_assignment(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 1)
        y = problem.new_int("y", 0, 1)
        for vx in (0, 1):
            for vy in (0, 1):
                if (vx, vy) != (1, 0):
                    problem.forbid_assignment({x: vx, y: vy})
        solution = problem.solve()
        assert (solution.value(x), solution.value(y)) == (1, 0)

    def test_solution_mapping_interface(self):
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 2, 2)
        solution = problem.solve()
        assert solution[x] == 2
        assert solution.as_dict() == {"x": 2}

    def test_out_of_order_prioritize_survives_pop(self):
        # prioritize() on a pre-scope variable *after* creating a
        # scope-local one breaks the ascending-literal order of the
        # activity seed list; pop() must still retract exactly the
        # scope-local entries (and the next solve must not crash boosting
        # a rolled-back literal)
        problem = FiniteDomainProblem()
        x = problem.new_int("x", 0, 3)
        problem.push()
        y = problem.new_int("y", 0, 3)
        problem.prioritize(y, weight=1.0)
        problem.prioritize(x, weight=9.0)  # out of order on purpose
        assert problem.solve() is not None
        problem.pop()
        solution = problem.solve()
        assert solution is not None and solution.value(x) in range(4)
        # x's late re-prioritization was not scope-local: it survives
        assert any(lit <= problem.num_sat_variables
                   for lit, _ in problem._initial_activity)
        assert all(lit <= problem.num_sat_variables
                   for lit, _ in problem._initial_activity)
