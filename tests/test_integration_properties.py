"""Cross-module integration and property-based tests.

These tests exercise the full pipeline (DFG -> time phase -> space phase ->
validation -> cycle-level execution) on randomly generated inputs, checking
the invariants the paper's proof relies on.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.space_solver import SpaceSolver
from repro.core.time_solver import TimeSolver
from repro.core.validation import validate_mapping
from repro.graphs.analysis import min_ii
from repro.graphs.generators import layered_dfg, random_dfg
from repro.sim.executor import run_and_compare

_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**_SETTINGS)
@given(
    num_nodes=st.integers(min_value=5, max_value=18),
    num_loop_carried=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_mapper_results_always_validate_and_execute(num_nodes, num_loop_carried,
                                                    seed):
    """Whatever the mapper returns must be structurally valid.

    Random DFGs are not arity-consistent (their opcodes are decorative), so
    only the structural properties are checked here; functional execution is
    covered by the workload and front-end simulator tests.
    """
    dfg = random_dfg(num_nodes, edge_probability=0.15,
                     num_loop_carried=num_loop_carried, seed=seed)
    cgra = CGRA(4, 4)
    config = MapperConfig(time_timeout_seconds=20, space_timeout_seconds=20,
                          total_timeout_seconds=40)
    result = MonomorphismMapper(cgra, config).map(dfg)
    if result.success:
        assert result.ii >= min_ii(dfg, cgra.num_pes)
        assert validate_mapping(result.mapping) == []
    else:
        # the mapper must fail cleanly, never with an invalid mapping
        assert result.mapping is None
        assert result.status is not None


@pytest.mark.parametrize("workload", ["susan", "lud", "gsm", "fft", "bitcount"])
def test_paper_theorem_time_solution_implies_space_solution(workload):
    """Sec. IV-D: under capacity + connectivity constraints and a uniform-
    degree (torus) CGRA, a time solution admits a space solution.

    Checked on the paper's benchmark DFGs at their mII on a 5x5 array (the
    paper's own evaluation setting); the strict connectivity variant is used
    to close the known blind spot of the local bound (see DESIGN.md).
    """
    from repro.workloads.suite import load_benchmark

    dfg = load_benchmark(workload)
    cgra = CGRA(5, 5)  # torus, uniform degree
    config = MapperConfig(strict_connectivity=True)
    ii = min_ii(dfg, cgra.num_pes)
    solver = TimeSolver(dfg, cgra, ii, config=config)
    space = SpaceSolver(cgra, config)
    found_any = False
    for schedule in solver.iter_schedules(limit=3, timeout_seconds=20):
        found_any = True
        result = space.solve(schedule, timeout_seconds=20)
        assert result.found, (
            f"schedule of {workload} satisfied the time constraints "
            f"but no monomorphism was found"
        )
    assert found_any, f"no schedule exists at mII={ii} for {workload}"


@settings(**_SETTINGS)
@given(
    widths=st.lists(st.integers(min_value=1, max_value=4), min_size=2,
                    max_size=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_layered_graphs_map_on_wide_cgra(widths, seed):
    dfg = layered_dfg(widths, seed=seed)
    cgra = CGRA(5, 5)
    config = MapperConfig(time_timeout_seconds=20, space_timeout_seconds=20,
                          total_timeout_seconds=40, max_ii=8)
    result = MonomorphismMapper(cgra, config).map(dfg)
    if result.success:
        assert validate_mapping(result.mapping) == []
    else:
        assert result.mapping is None


def test_decoupled_and_baseline_agree_on_ii_for_small_graphs():
    """Quality parity claim of the paper, on a deterministic mini-sweep."""
    from repro.baseline.satmapit import SatMapItMapper
    from repro.core.config import BaselineConfig

    cgra = CGRA(2, 2)
    for seed in range(3):
        dfg = random_dfg(8, edge_probability=0.2, num_loop_carried=1, seed=seed)
        decoupled = MonomorphismMapper(
            cgra, MapperConfig(total_timeout_seconds=30)).map(dfg)
        coupled = SatMapItMapper(cgra, BaselineConfig(timeout_seconds=30)).map(dfg)
        assert decoupled.success and coupled.success
        assert decoupled.ii == coupled.ii


def test_full_flow_from_source_to_execution():
    """README's end-to-end story: source text -> mapping -> correct values."""
    from repro.frontend import extract_dfg
    from repro.sim.machine import DataMemory

    program = extract_dfg("""
        array a[16];
        acc best = 0;
        for i in 0..16 {
            x = load(a, i);
            best = max(best, x * x);
        }
    """)
    result = MonomorphismMapper(
        CGRA(3, 3), MapperConfig(total_timeout_seconds=30)).map(program.dfg)
    assert result.success
    memory = DataMemory()
    values = [((7 * i) % 13) - 6 for i in range(16)]
    memory.declare("a", 16, values)
    mapped, reference = run_and_compare(
        result.mapping, iterations=16, memory=memory,
        initial_values=program.initial_values)
    best_node = program.outputs["best"]
    assert mapped.last_value(best_node) == max(v * v for v in values)
