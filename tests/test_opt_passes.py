"""Per-pass unit tests for the repro.opt optimization subsystem."""

import pytest

from repro.arch.cgra import CGRA
from repro.arch.isa import DEFAULT_PE_OPERATIONS, Opcode
from repro.arch.spec import build_preset
from repro.graphs.dfg import DFG, DFGNode
from repro.opt import (
    AlgebraicSimplificationPass,
    CommonSubexpressionEliminationPass,
    ConstantFoldingPass,
    DeadNodeEliminationPass,
    GraphEdit,
    OptVerificationError,
    PassContext,
    ReassociationPass,
    StrengthReductionPass,
    build_pipeline,
    compose_maps,
    make_pass,
    observable_ids,
    optimize_dfg,
    parse_opt_level,
    pass_names,
    rebuild,
    verify_equivalence,
)
from repro.graphs.analysis import critical_path_length, rec_ii
from repro.sim.reference import ReferenceInterpreter


def _run(opt_pass, dfg, target=None):
    return opt_pass.run(dfg, PassContext.for_dfg(dfg, target=target))


def _reference_values(dfg, node_id, iterations=4):
    trace = ReferenceInterpreter(dfg).run(iterations)
    return [trace.value(node_id, k) for k in range(iterations)]


# ---------------------------------------------------------------------- #
# Rewrite plumbing
# ---------------------------------------------------------------------- #
class TestRewrite:
    def test_forward_chains_resolve_transitively(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=1)
        b = dfg.add_node(opcode=Opcode.ROUTE)
        c = dfg.add_node(opcode=Opcode.ROUTE)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(a.id, b.id)
        dfg.add_data_edge(b.id, c.id)
        dfg.add_data_edge(c.id, sink.id)
        new_dfg, node_map = rebuild(
            dfg, GraphEdit(forward={c.id: b.id, b.id: a.id})
        )
        assert node_map == {a.id: a.id, b.id: a.id, c.id: a.id,
                            sink.id: sink.id}
        assert new_dfg.predecessors(sink.id) == [a.id]

    def test_dangling_edge_is_rejected(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT)
        b = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(a.id, b.id)
        with pytest.raises(ValueError, match="dangling"):
            rebuild(dfg, GraphEdit(drop={a.id}))

    def test_override_must_keep_the_id(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT)
        dfg.add_node(opcode=Opcode.OUTPUT)
        with pytest.raises(ValueError, match="carries id"):
            rebuild(dfg, GraphEdit(
                overrides={a.id: DFGNode(id=99, opcode=Opcode.CONST)}
            ))

    def test_compose_maps(self):
        first = {0: 0, 1: 2, 3: None}
        second = {0: 5, 2: None}
        assert compose_maps(first, second) == {0: 5, 1: None, 3: None}

    def test_observables_include_accumulator_cycles(self):
        dfg = DFG()
        x = dfg.add_node(opcode=Opcode.INPUT, value=3)
        acc = dfg.add_node(opcode=Opcode.ADD)
        dfg.add_data_edge(x.id, acc.id, operand_index=0)
        dfg.add_loop_carried_edge(acc.id, acc.id, distance=1, operand_index=1)
        # acc's only out-edge is loop-carried: it is the live-out value
        assert acc.id in observable_ids(dfg)


# ---------------------------------------------------------------------- #
# Constant folding
# ---------------------------------------------------------------------- #
class TestConstantFolding:
    def test_folds_cascading_constants(self):
        dfg = DFG()
        c2 = dfg.add_node(opcode=Opcode.CONST, value=2)
        c3 = dfg.add_node(opcode=Opcode.CONST, value=3)
        mul = dfg.add_node(opcode=Opcode.MUL)
        neg = dfg.add_node(opcode=Opcode.NEG)
        out = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(c2.id, mul.id, operand_index=0)
        dfg.add_data_edge(c3.id, mul.id, operand_index=1)
        dfg.add_data_edge(mul.id, neg.id)
        dfg.add_data_edge(neg.id, out.id)
        new_dfg, node_map, _ = _run(ConstantFoldingPass(), dfg)
        assert new_dfg.node(mul.id).opcode is Opcode.CONST
        assert new_dfg.node(mul.id).value == 6
        assert new_dfg.node(neg.id).opcode is Opcode.CONST
        assert new_dfg.node(neg.id).value == -6
        assert node_map[neg.id] == neg.id
        verify_equivalence(dfg, new_dfg, node_map)

    def test_loop_carried_sources_are_not_folded(self):
        dfg = DFG()
        c1 = dfg.add_node(opcode=Opcode.CONST, value=1)
        c2 = dfg.add_node(opcode=Opcode.CONST, value=2)
        add = dfg.add_node(opcode=Opcode.ADD, value=7)  # initial operand: 7
        route = dfg.add_node(opcode=Opcode.ROUTE)
        dfg.add_data_edge(c1.id, add.id, operand_index=0)
        dfg.add_data_edge(c2.id, add.id, operand_index=1)
        dfg.add_loop_carried_edge(add.id, route.id, distance=1)
        outcome = _run(ConstantFoldingPass(), dfg)
        if outcome is not None:
            new_dfg, node_map, _ = outcome
            assert new_dfg.node(add.id).opcode is Opcode.ADD
            verify_equivalence(dfg, new_dfg, node_map)

    def test_input_nodes_are_not_constants(self):
        dfg = DFG()
        x = dfg.add_node(opcode=Opcode.INPUT, value=5)
        c = dfg.add_node(opcode=Opcode.CONST, value=1)
        add = dfg.add_node(opcode=Opcode.ADD)
        dfg.add_data_edge(x.id, add.id, operand_index=0)
        dfg.add_data_edge(c.id, add.id, operand_index=1)
        assert _run(ConstantFoldingPass(), dfg) is None


# ---------------------------------------------------------------------- #
# Algebraic simplification
# ---------------------------------------------------------------------- #
class TestAlgebraicSimplification:
    def _one_op(self, opcode, a_value=None, b_value=None, a_op=Opcode.INPUT,
                b_op=Opcode.INPUT):
        dfg = DFG()
        a = dfg.add_node(opcode=a_op, value=a_value, name="a")
        b = dfg.add_node(opcode=b_op, value=b_value, name="b")
        op = dfg.add_node(opcode=opcode)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(a.id, op.id, operand_index=0)
        dfg.add_data_edge(b.id, op.id, operand_index=1)
        dfg.add_data_edge(op.id, sink.id)
        return dfg, a, b, op, sink

    @pytest.mark.parametrize("opcode", [Opcode.ADD, Opcode.SUB, Opcode.OR,
                                        Opcode.XOR])
    def test_zero_identity_forwards(self, opcode):
        dfg, a, _, op, sink = self._one_op(opcode, a_value=9,
                                           b_op=Opcode.CONST, b_value=0)
        new_dfg, node_map, _ = _run(AlgebraicSimplificationPass(), dfg)
        assert node_map[op.id] == a.id
        assert new_dfg.predecessors(sink.id) == [a.id]
        verify_equivalence(dfg, new_dfg, node_map)

    def test_zero_shift_is_not_an_identity_here(self):
        # the ISA's shifter masks to 32 bits, so x<<0 truncates negative
        # and wide values: the tempting rewrite must never fire
        for opcode in (Opcode.SHL, Opcode.SHR):
            dfg, a, _, op, _ = self._one_op(opcode, a_value=-1,
                                            b_op=Opcode.CONST, b_value=0)
            assert _run(AlgebraicSimplificationPass(), dfg) is None
            assert _reference_values(dfg, op.id)[0] == 0xFFFFFFFF
            assert _reference_values(dfg, a.id)[0] == -1

    def test_div_rem_by_one_are_not_simplified(self):
        # DIV/REM evaluate through float true division (int(a / b)),
        # which loses precision beyond 2**53: x/1 != x for huge x
        for opcode in (Opcode.DIV, Opcode.REM):
            dfg, _, _, _, _ = self._one_op(opcode, a_value=9,
                                           b_op=Opcode.CONST, b_value=1)
            assert _run(AlgebraicSimplificationPass(), dfg) is None

    def test_self_cancellation_becomes_zero(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=12)
        sub = dfg.add_node(opcode=Opcode.SUB)
        dfg.add_data_edge(a.id, sub.id, operand_index=0)
        dfg.add_data_edge(a.id, sub.id, operand_index=1)
        new_dfg, node_map, _ = _run(AlgebraicSimplificationPass(), dfg)
        assert new_dfg.node(sub.id).opcode is Opcode.CONST
        assert new_dfg.node(sub.id).value == 0
        verify_equivalence(dfg, new_dfg, node_map)

    def test_mul_by_one_and_zero(self):
        dfg, a, _, op, _ = self._one_op(Opcode.MUL, a_value=9,
                                        b_op=Opcode.CONST, b_value=1)
        _, node_map, _ = _run(AlgebraicSimplificationPass(), dfg)
        assert node_map[op.id] == a.id
        dfg, _, _, op, _ = self._one_op(Opcode.MUL, a_value=9,
                                        b_op=Opcode.CONST, b_value=0)
        new_dfg, node_map, _ = _run(AlgebraicSimplificationPass(), dfg)
        assert new_dfg.node(op.id).opcode is Opcode.CONST
        assert new_dfg.node(op.id).value == 0

    def test_involutions_cancel(self):
        for opcode in (Opcode.NEG, Opcode.NOT):
            dfg = DFG()
            x = dfg.add_node(opcode=Opcode.INPUT, value=-5)
            inner = dfg.add_node(opcode=opcode)
            outer = dfg.add_node(opcode=opcode)
            sink = dfg.add_node(opcode=Opcode.OUTPUT)
            dfg.add_data_edge(x.id, inner.id)
            dfg.add_data_edge(inner.id, outer.id)
            dfg.add_data_edge(outer.id, sink.id)
            new_dfg, node_map, _ = _run(AlgebraicSimplificationPass(), dfg)
            assert node_map[outer.id] == x.id
            verify_equivalence(dfg, new_dfg, node_map)

    def test_select_with_literal_condition(self):
        dfg = DFG()
        cond = dfg.add_node(opcode=Opcode.CONST, value=1)
        a = dfg.add_node(opcode=Opcode.INPUT, value=4, name="a")
        b = dfg.add_node(opcode=Opcode.INPUT, value=6, name="b")
        select = dfg.add_node(opcode=Opcode.SELECT)
        dfg.add_data_edge(cond.id, select.id, operand_index=0)
        dfg.add_data_edge(a.id, select.id, operand_index=1)
        dfg.add_data_edge(b.id, select.id, operand_index=2)
        _, node_map, _ = _run(AlgebraicSimplificationPass(), dfg)
        assert node_map[select.id] == a.id

    def test_loop_carried_source_is_kept(self):
        # acc = acc + 0 is an accumulator: erasing the ADD would lose the
        # node that carries the recurrence and its initial value
        dfg = DFG()
        zero = dfg.add_node(opcode=Opcode.CONST, value=0)
        acc = dfg.add_node(opcode=Opcode.ADD, value=5)
        dfg.add_data_edge(zero.id, acc.id, operand_index=0)
        dfg.add_loop_carried_edge(acc.id, acc.id, distance=1, operand_index=1)
        assert _run(AlgebraicSimplificationPass(), dfg) is None


# ---------------------------------------------------------------------- #
# Strength reduction
# ---------------------------------------------------------------------- #
class TestStrengthReduction:
    def _mul_by_two(self):
        dfg = DFG()
        x = dfg.add_node(opcode=Opcode.INPUT, value=-7, name="x")
        two = dfg.add_node(opcode=Opcode.CONST, value=2)
        mul = dfg.add_node(opcode=Opcode.MUL)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(x.id, mul.id, operand_index=0)
        dfg.add_data_edge(two.id, mul.id, operand_index=1)
        dfg.add_data_edge(mul.id, sink.id)
        return dfg, x, mul

    def test_mul_by_two_becomes_add(self):
        dfg, x, mul = self._mul_by_two()
        new_dfg, node_map, _ = _run(StrengthReductionPass(), dfg)
        assert new_dfg.node(mul.id).opcode is Opcode.ADD
        assert new_dfg.predecessors(mul.id) == [x.id, x.id]
        # exact for negative values, unlike a 32-bit masked shift
        assert _reference_values(new_dfg, mul.id) == \
            _reference_values(dfg, mul.id)
        verify_equivalence(dfg, new_dfg, node_map)

    def test_gated_on_target_op_support(self):
        dfg, _, mul = self._mul_by_two()
        # mul-sparse fabric: ADD everywhere, MUL on half the PEs -> fires
        checker = build_preset("mul_sparse_checkerboard", 4, 4).build()
        assert _run(StrengthReductionPass(), dfg, target=checker) is not None
        # pathological fabric where ADD is rarer than MUL -> must not fire
        add_free = CGRA(2, 2, pe_operations={
            0: DEFAULT_PE_OPERATIONS - {Opcode.ADD},
            1: DEFAULT_PE_OPERATIONS - {Opcode.ADD},
        })
        assert _run(StrengthReductionPass(), dfg, target=add_free) is None


# ---------------------------------------------------------------------- #
# Common-subexpression elimination
# ---------------------------------------------------------------------- #
class TestCSE:
    def test_merges_identical_and_commutative_duplicates(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=2, name="a")
        b = dfg.add_node(opcode=Opcode.INPUT, value=3, name="b")
        first = dfg.add_node(opcode=Opcode.ADD)
        swapped = dfg.add_node(opcode=Opcode.ADD)
        dfg.add_data_edge(a.id, first.id, operand_index=0)
        dfg.add_data_edge(b.id, first.id, operand_index=1)
        dfg.add_data_edge(b.id, swapped.id, operand_index=0)
        dfg.add_data_edge(a.id, swapped.id, operand_index=1)
        consumer = dfg.add_node(opcode=Opcode.SUB)
        dfg.add_data_edge(first.id, consumer.id, operand_index=0)
        dfg.add_data_edge(swapped.id, consumer.id, operand_index=1)
        new_dfg, node_map, _ = _run(CommonSubexpressionEliminationPass(), dfg)
        assert node_map[swapped.id] == first.id
        assert not new_dfg.has_node(swapped.id)
        assert new_dfg.predecessors(consumer.id) == [first.id, first.id]
        verify_equivalence(dfg, new_dfg, node_map)

    def test_noncommutative_order_matters(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=9, name="a")
        b = dfg.add_node(opcode=Opcode.INPUT, value=4, name="b")
        sub_ab = dfg.add_node(opcode=Opcode.SUB)
        sub_ba = dfg.add_node(opcode=Opcode.SUB)
        dfg.add_data_edge(a.id, sub_ab.id, operand_index=0)
        dfg.add_data_edge(b.id, sub_ab.id, operand_index=1)
        dfg.add_data_edge(b.id, sub_ba.id, operand_index=0)
        dfg.add_data_edge(a.id, sub_ba.id, operand_index=1)
        assert _run(CommonSubexpressionEliminationPass(), dfg) is None

    def test_duplicate_constants_merge(self):
        dfg = DFG()
        c1 = dfg.add_node(opcode=Opcode.CONST, value=5)
        c2 = dfg.add_node(opcode=Opcode.CONST, value=5)
        add = dfg.add_node(opcode=Opcode.ADD)
        dfg.add_data_edge(c1.id, add.id, operand_index=0)
        dfg.add_data_edge(c2.id, add.id, operand_index=1)
        new_dfg, node_map, _ = _run(CommonSubexpressionEliminationPass(), dfg)
        assert node_map[c2.id] == c1.id
        assert new_dfg.predecessors(add.id) == [c1.id, c1.id]

    def test_loop_carried_source_duplicate_is_kept(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=1)
        b = dfg.add_node(opcode=Opcode.INPUT, value=2)
        keep = dfg.add_node(opcode=Opcode.ADD)
        lc_source = dfg.add_node(opcode=Opcode.ADD, value=42)
        route = dfg.add_node(opcode=Opcode.ROUTE)
        for node in (keep, lc_source):
            dfg.add_data_edge(a.id, node.id, operand_index=0)
            dfg.add_data_edge(b.id, node.id, operand_index=1)
        dfg.add_loop_carried_edge(lc_source.id, route.id, distance=1)
        outcome = _run(CommonSubexpressionEliminationPass(), dfg)
        if outcome is not None:
            new_dfg, node_map, _ = outcome
            assert node_map[lc_source.id] == lc_source.id
            assert new_dfg.has_node(lc_source.id)


# ---------------------------------------------------------------------- #
# Dead-node elimination
# ---------------------------------------------------------------------- #
class TestDeadNodeElimination:
    def test_orphans_die_but_observables_survive(self):
        dfg = DFG()
        live = dfg.add_node(opcode=Opcode.INPUT, value=1)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(live.id, sink.id)
        orphan = dfg.add_node(opcode=Opcode.CONST, value=9)

        # anchor observability on the graph *before* the orphan appeared:
        # the orphan is pass-created garbage, not an original sink
        ctx = PassContext(observables={sink.id})
        outcome = DeadNodeEliminationPass().run(dfg, ctx)
        assert outcome is not None
        new_dfg, node_map, _ = outcome
        assert not new_dfg.has_node(orphan.id)
        assert node_map[orphan.id] is None
        assert new_dfg.has_node(live.id) and new_dfg.has_node(sink.id)

    def test_stores_are_always_roots(self):
        dfg = DFG()
        addr = dfg.add_node(opcode=Opcode.INDUCTION)
        value = dfg.add_node(opcode=Opcode.INPUT, value=3)
        store = dfg.add_node(opcode=Opcode.STORE, array="out")
        dfg.add_data_edge(addr.id, store.id, operand_index=0)
        dfg.add_data_edge(value.id, store.id, operand_index=1)
        ctx = PassContext(observables=set())  # even with no anchors
        assert DeadNodeEliminationPass().run(dfg, ctx) is None


# ---------------------------------------------------------------------- #
# Reassociation
# ---------------------------------------------------------------------- #
class TestReassociation:
    def _chain(self, length, opcode=Opcode.ADD):
        dfg = DFG()
        leaves = [dfg.add_node(opcode=Opcode.INPUT, value=i + 1,
                               name=f"l{i}").id
                  for i in range(length + 1)]
        current = leaves[0]
        chain = []
        for leaf in leaves[1:]:
            node = dfg.add_node(opcode=opcode)
            dfg.add_data_edge(current, node.id, operand_index=0)
            dfg.add_data_edge(leaf, node.id, operand_index=1)
            current = node.id
            chain.append(node.id)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(current, sink.id)
        return dfg, chain, sink

    def test_linear_chain_is_balanced(self):
        dfg, chain, _ = self._chain(6)
        root = chain[-1]
        before = _reference_values(dfg, root)
        new_dfg, node_map, _ = _run(ReassociationPass(), dfg)
        assert critical_path_length(new_dfg) < critical_path_length(dfg)
        assert node_map[root] == root
        # interiors were replaced by fresh ids
        for interior in chain[:-1]:
            assert node_map[interior] is None
        assert _reference_values(new_dfg, root) == before
        verify_equivalence(dfg, new_dfg, node_map)

    def test_idempotent(self):
        dfg, _, _ = self._chain(6)
        new_dfg, _, _ = _run(ReassociationPass(), dfg)
        assert _run(ReassociationPass(), new_dfg) is None

    def test_accumulator_recurrence_is_hoisted(self):
        # acc = (((acc + a) + b) + c) + d  -> RecII 4 collapses to 1
        dfg = DFG()
        leaves = [dfg.add_node(opcode=Opcode.INPUT, value=i + 1).id
                  for i in range(4)]
        first = dfg.add_node(opcode=Opcode.ADD)
        dfg.add_data_edge(leaves[0], first.id, operand_index=0)
        current = first.id
        for leaf in leaves[1:]:
            node = dfg.add_node(opcode=Opcode.ADD)
            dfg.add_data_edge(current, node.id, operand_index=0)
            dfg.add_data_edge(leaf, node.id, operand_index=1)
            current = node.id
        dfg.add_loop_carried_edge(current, first.id, distance=1,
                                  operand_index=1)
        assert rec_ii(dfg) == 4
        before = _reference_values(dfg, current, iterations=6)
        new_dfg, node_map, _ = _run(ReassociationPass(), dfg)
        assert rec_ii(new_dfg) == 1
        assert node_map[current] == current
        assert _reference_values(new_dfg, current, iterations=6) == before
        verify_equivalence(dfg, new_dfg, node_map, iterations=6)

    def test_cycle_pinned_leaf_never_sinks_deeper(self):
        # a recurrence entering the chain through a leaf: rebalancing must
        # keep that leaf at its depth or shallower, or RecII would grow
        dfg = DFG()
        phi = dfg.add_node(opcode=Opcode.MUL, name="cycle")  # on the cycle
        seed = dfg.add_node(opcode=Opcode.INPUT, value=3)
        dfg.add_data_edge(seed.id, phi.id, operand_index=0)
        leaves = [dfg.add_node(opcode=Opcode.INPUT, value=i + 1).id
                  for i in range(5)]
        current = phi.id
        chain = []
        for leaf in leaves:
            node = dfg.add_node(opcode=Opcode.ADD)
            dfg.add_data_edge(current, node.id, operand_index=0)
            dfg.add_data_edge(leaf, node.id, operand_index=1)
            current = node.id
            chain.append(node.id)
        dfg.add_loop_carried_edge(current, phi.id, distance=1,
                                  operand_index=1)
        baseline = rec_ii(dfg)
        outcome = _run(ReassociationPass(), dfg)
        if outcome is not None:
            new_dfg, node_map, _ = outcome
            assert rec_ii(new_dfg) <= baseline
            verify_equivalence(dfg, new_dfg, node_map, iterations=6)

    def test_non_associative_chains_untouched(self):
        dfg, _, _ = self._chain(5, opcode=Opcode.SUB)
        assert _run(ReassociationPass(), dfg) is None


# ---------------------------------------------------------------------- #
# Pipeline / registry plumbing
# ---------------------------------------------------------------------- #
class TestPipelinePlumbing:
    def test_parse_opt_level(self):
        assert parse_opt_level(None) == 0
        assert parse_opt_level("O2") == 2
        assert parse_opt_level("o1") == 1
        assert parse_opt_level("2") == 2
        assert parse_opt_level(0) == 0
        with pytest.raises(ValueError):
            parse_opt_level(3)
        with pytest.raises(ValueError):
            parse_opt_level("fast")

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown optimization pass"):
            make_pass("loop-unrolling")
        with pytest.raises(ValueError):
            build_pipeline(passes=["constfold", "nope"])

    def test_registry_names(self):
        assert set(pass_names()) == {
            "constfold", "algebraic", "strength", "cse", "dce", "reassoc",
        }

    def test_o0_is_identity(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=1)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(a.id, sink.id)
        result = optimize_dfg(dfg, opt_level=0)
        assert result.optimized is dfg
        assert not result.changed

    def test_explicit_pass_list_overrides_level(self):
        dfg = DFG()
        c1 = dfg.add_node(opcode=Opcode.CONST, value=1)
        c2 = dfg.add_node(opcode=Opcode.CONST, value=2)
        add = dfg.add_node(opcode=Opcode.ADD)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(c1.id, add.id, operand_index=0)
        dfg.add_data_edge(c2.id, add.id, operand_index=1)
        dfg.add_data_edge(add.id, sink.id)
        only_cse = optimize_dfg(dfg, opt_level=0, passes=["cse"])
        assert only_cse.nodes_after == dfg.num_nodes
        folded = optimize_dfg(dfg, opt_level=0, passes=["constfold", "dce"])
        assert folded.optimized.node(add.id).opcode is Opcode.CONST
        assert folded.nodes_after < dfg.num_nodes

    def test_verifier_catches_a_broken_rewrite(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=3)
        b = dfg.add_node(opcode=Opcode.INPUT, value=4)
        add = dfg.add_node(opcode=Opcode.ADD)
        dfg.add_data_edge(a.id, add.id, operand_index=0)
        dfg.add_data_edge(b.id, add.id, operand_index=1)
        broken, _ = rebuild(dfg, GraphEdit(
            overrides={add.id: DFGNode(id=add.id, opcode=Opcode.CONST,
                                       value=999)},
            drop_in_edges={add.id},
        ))
        with pytest.raises(OptVerificationError, match="diverges"):
            verify_equivalence(dfg, broken,
                               {n: n for n in dfg.node_ids()})

    def test_verifier_catches_a_lost_observable(self):
        dfg = DFG()
        a = dfg.add_node(opcode=Opcode.INPUT, value=3)
        sink = dfg.add_node(opcode=Opcode.OUTPUT)
        dfg.add_data_edge(a.id, sink.id)
        smaller, _ = rebuild(dfg, GraphEdit(drop={sink.id}))
        with pytest.raises(OptVerificationError, match="optimized away"):
            verify_equivalence(dfg, smaller, {a.id: a.id, sink.id: None})
