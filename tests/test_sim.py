"""Tests for the reference interpreter and the cycle-level mapped executor."""

import pytest

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.mapping import Mapping
from repro.frontend import EXAMPLE_KERNELS, extract_dfg
from repro.sim.executor import MappedLoopExecutor, run_and_compare
from repro.sim.machine import CGRAMachine, DataMemory, SimulationError
from repro.sim.program import ConfigurationMemory
from repro.sim.reference import ReferenceInterpreter
from repro.workloads.running_example import running_example_dfg
from repro.workloads.suite import load_benchmark


@pytest.fixture
def mapper_4x4(fast_config):
    return MonomorphismMapper(CGRA(4, 4), fast_config)


def _map_kernel(source_name: str, cgra: CGRA, config: MapperConfig):
    program = extract_dfg(EXAMPLE_KERNELS[source_name], name=source_name)
    result = MonomorphismMapper(cgra, config).map(program.dfg)
    assert result.success, result.summary()
    return program, result.mapping


class TestDataMemory:
    def test_declare_load_store(self):
        memory = DataMemory()
        memory.declare("a", 4, [1, 2, 3, 4])
        assert memory.load("a", 2) == 3
        memory.store("a", 1, 99)
        assert memory.dump("a") == [1, 99, 3, 4]

    def test_addresses_wrap(self):
        memory = DataMemory({"a": [10, 20]})
        assert memory.load("a", 5) == 20

    def test_errors(self):
        memory = DataMemory()
        with pytest.raises(SimulationError):
            memory.load("missing", 0)
        with pytest.raises(ValueError):
            memory.declare("a", 0)
        with pytest.raises(ValueError):
            memory.declare("a", 3, [1])

    def test_copy_is_independent(self):
        memory = DataMemory({"a": [1, 2]})
        clone = memory.copy()
        clone.store("a", 0, 9)
        assert memory.load("a", 0) == 1


class TestCGRAMachine:
    def test_neighbour_read_allowed_self_and_adjacent(self, cgra_2x2):
        machine = CGRAMachine(cgra_2x2, DataMemory())
        machine.write(pe=1, node=7, copy=0, iteration=0, value=42)
        assert machine.read(reader_pe=1, producer_pe=1, node=7, copy=0,
                            iteration=0) == 42
        assert machine.read(reader_pe=0, producer_pe=1, node=7, copy=0,
                            iteration=0) == 42

    def test_non_adjacent_read_rejected(self, cgra_2x2):
        machine = CGRAMachine(cgra_2x2, DataMemory())
        machine.write(pe=3, node=1, copy=0, iteration=0, value=5)
        with pytest.raises(SimulationError):
            machine.read(reader_pe=0, producer_pe=3, node=1, copy=0, iteration=0)

    def test_overwritten_value_detected(self, cgra_2x2):
        machine = CGRAMachine(cgra_2x2, DataMemory())
        machine.write(pe=0, node=1, copy=0, iteration=0, value=5)
        machine.write(pe=0, node=1, copy=0, iteration=1, value=6)
        with pytest.raises(SimulationError):
            machine.read(reader_pe=0, producer_pe=0, node=1, copy=0, iteration=0)

    def test_register_capacity_enforcement(self):
        cgra = CGRA(2, 2, register_file_size=1)
        machine = CGRAMachine(cgra, DataMemory(), enforce_register_capacity=True)
        machine.write(pe=0, node=1, copy=0, iteration=0, value=5)
        with pytest.raises(SimulationError):
            machine.write(pe=0, node=2, copy=0, iteration=0, value=6)


class TestReferenceInterpreter:
    def test_accumulator_semantics(self):
        program = extract_dfg("""
            acc s = 10;
            for i in 0..8 { s = s + i; }
        """)
        trace = ReferenceInterpreter(
            program.dfg, initial_values=program.initial_values
        ).run(5)
        # 10 + 0 + 1 + 2 + 3 + 4 = 20
        assert trace.last_value(program.outputs["s"]) == 20

    def test_memory_kernels(self):
        program = extract_dfg(EXAMPLE_KERNELS["dot_product"])
        memory = DataMemory()
        memory.declare("a", 64, list(range(64)))
        memory.declare("b", 64, [2] * 64)
        trace = ReferenceInterpreter(
            program.dfg, memory=memory, initial_values=program.initial_values
        ).run(10)
        assert trace.last_value(program.outputs["sum"]) == 2 * sum(range(10))

    def test_store_results_visible_in_memory(self):
        program = extract_dfg("""
            array out[8];
            for i in 0..8 { store(out, i, i * i); }
        """)
        memory = DataMemory()
        memory.declare("out", 8)
        ReferenceInterpreter(program.dfg, memory=memory).run(8)
        assert memory.dump("out") == [i * i for i in range(8)]

    def test_requires_positive_iterations(self, example_dfg):
        with pytest.raises(ValueError):
            ReferenceInterpreter(example_dfg).run(0)


class TestConfigurationMemory:
    def test_slot_table_and_rotation(self, cgra_2x2, fast_config, example_dfg):
        result = MonomorphismMapper(cgra_2x2, fast_config).map(example_dfg)
        configuration = ConfigurationMemory(result.mapping)
        assert len(configuration) == 14
        table = configuration.slot_table()
        assert len(table) == result.mapping.ii
        for instruction in configuration.instructions.values():
            assert configuration.at(instruction.slot, instruction.pe) is instruction
            assert instruction.rotating_copies >= 1
        assert configuration.max_rotating_copies() >= 1


class TestMappedExecution:
    def test_running_example_matches_reference(self, cgra_2x2, fast_config):
        result = MonomorphismMapper(cgra_2x2, fast_config).map(running_example_dfg())
        run_and_compare(result.mapping, iterations=10)

    @pytest.mark.parametrize("kernel", ["dot_product", "crc8", "sad",
                                        "bitcount4", "running_max"])
    def test_front_end_kernels_match_reference(self, kernel, fast_config):
        # (kernel names refer to repro.frontend.kernels.EXAMPLE_KERNELS)
        program, mapping = _map_kernel(kernel, CGRA(4, 4), fast_config)
        memory = DataMemory()
        for name, size in program.arrays.items():
            memory.declare(name, size, [(3 * i + name.__len__()) % 17
                                        for i in range(size)])
        run_and_compare(mapping, iterations=12, memory=memory,
                        initial_values=program.initial_values)

    def test_fir_with_stores_matches_reference(self, fast_config):
        program, mapping = _map_kernel("fir3", CGRA(4, 4), fast_config)
        memory = DataMemory()
        memory.declare("samples", 48, [i % 9 for i in range(48)])
        memory.declare("out", 48)
        run_and_compare(mapping, iterations=16, memory=memory,
                        initial_values=program.initial_values)

    @pytest.mark.parametrize("workload", ["bitcount", "susan", "lud", "fft"])
    def test_synthetic_benchmarks_execute_correctly(self, workload,
                                                    mapper_4x4):
        result = mapper_4x4.map(load_benchmark(workload))
        assert result.success
        run_and_compare(result.mapping, iterations=9)

    def test_detects_broken_placement_at_runtime(self, cgra_2x2, fast_config,
                                                 example_dfg):
        result = MonomorphismMapper(cgra_2x2, fast_config).map(example_dfg)
        mapping = result.mapping
        # corrupt the placement: move the producer of a dependence to a
        # non-adjacent PE (and bypass the static validator on purpose)
        broken_placement = dict(mapping.placement)
        broken_placement[7] = 0
        broken_placement[4] = 3
        broken = Mapping(dfg=mapping.dfg, cgra=mapping.cgra,
                         schedule=mapping.schedule, placement=broken_placement)
        with pytest.raises(SimulationError):
            MappedLoopExecutor(broken).run(6)

    def test_executor_rejects_zero_iterations(self, cgra_2x2, fast_config,
                                              example_dfg):
        result = MonomorphismMapper(cgra_2x2, fast_config).map(example_dfg)
        with pytest.raises(ValueError):
            MappedLoopExecutor(result.mapping).run(0)

    def test_trace_metadata(self, cgra_2x2, fast_config, example_dfg):
        result = MonomorphismMapper(cgra_2x2, fast_config).map(example_dfg)
        trace = MappedLoopExecutor(result.mapping).run(5)
        assert trace.iterations == 5
        assert trace.cycles == result.mapping.total_cycles(5)
        assert trace.prologue_cycles == result.mapping.prologue_cycles()
