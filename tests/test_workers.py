"""Tests for :mod:`repro.core.workers` -- the shared process reaper.

The batch runner and the parallel portfolio both race worker processes
against deadlines; both used to ``terminate()`` and hope. A worker wedged
in a C-level solver loop ignores SIGTERM, so :func:`repro.core.workers.reap`
must escalate terminate -> kill -> join and close the result pipe either
way, or every hard timeout leaks a process and a pair of descriptors.
"""

import multiprocessing
import signal
import time

from repro.core.workers import reap


def _sleep_forever(ready):
    ready.send("up")
    ready.close()
    while True:
        time.sleep(60)


def _ignore_sigterm_and_sleep(ready):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.send("up")
    ready.close()
    while True:
        time.sleep(60)


def _exit_quickly(ready):
    ready.send("done")
    ready.close()


def _start(target):
    parent, child = multiprocessing.Pipe()
    process = multiprocessing.Process(target=target, args=(child,),
                                      daemon=True)
    process.start()
    child.close()
    return process, parent


class TestReap:
    def test_cooperative_worker_dies_on_terminate(self):
        process, conn = _start(_sleep_forever)
        assert conn.recv() == "up"
        exitcode = reap(process, conn, grace=5.0)
        assert not process.is_alive()
        assert exitcode == -signal.SIGTERM

    def test_sigterm_ignoring_worker_is_killed(self):
        """The satellite regression: terminate alone never reaps this one."""
        process, conn = _start(_ignore_sigterm_and_sleep)
        assert conn.recv() == "up"
        exitcode = reap(process, conn, grace=0.5)
        assert not process.is_alive()
        assert exitcode == -signal.SIGKILL

    def test_connection_is_closed_even_for_a_finished_worker(self):
        process, conn = _start(_exit_quickly)
        assert conn.recv() == "done"
        process.join(timeout=10)
        reap(process, conn, terminate=False)
        assert not process.is_alive()
        assert conn.closed

    def test_already_closed_connection_is_tolerated(self):
        process, conn = _start(_sleep_forever)
        assert conn.recv() == "up"
        conn.close()
        exitcode = reap(process, conn, grace=5.0)
        assert not process.is_alive()
        assert exitcode is not None
