"""Unit tests for the PE instruction set (repro.arch.isa)."""

import pytest

from repro.arch.isa import (
    DEFAULT_PE_OPERATIONS,
    OPCODE_INFO,
    Opcode,
    arity,
    evaluate,
    is_memory_op,
    latency,
)


def test_every_opcode_has_metadata():
    for opcode in Opcode:
        assert opcode in OPCODE_INFO


def test_default_latency_is_one_cycle():
    # The paper's modulo-scheduling maths assumes unit latencies.
    assert all(latency(op) == 1 for op in Opcode)


@pytest.mark.parametrize(
    "opcode,expected",
    [
        (Opcode.ADD, 2),
        (Opcode.NEG, 1),
        (Opcode.SELECT, 3),
        (Opcode.MAC, 3),
        (Opcode.CONST, 0),
        (Opcode.INPUT, 0),
        (Opcode.LOAD, 1),
        (Opcode.STORE, 2),
        (Opcode.PHI, 1),
    ],
)
def test_arity(opcode, expected):
    assert arity(opcode) == expected


def test_memory_classification():
    assert is_memory_op(Opcode.LOAD)
    assert is_memory_op(Opcode.STORE)
    assert not is_memory_op(Opcode.ADD)
    assert not is_memory_op(Opcode.CONST)


@pytest.mark.parametrize(
    "opcode,operands,expected",
    [
        (Opcode.ADD, [3, 4], 7),
        (Opcode.SUB, [3, 4], -1),
        (Opcode.MUL, [3, 4], 12),
        (Opcode.DIV, [7, 2], 3),
        (Opcode.DIV, [7, 0], 0),
        (Opcode.REM, [7, 3], 1),
        (Opcode.REM, [7, 0], 0),
        (Opcode.MIN, [5, -2], -2),
        (Opcode.MAX, [5, -2], 5),
        (Opcode.ABS, [-9], 9),
        (Opcode.NEG, [4], -4),
        (Opcode.AND, [0b1100, 0b1010], 0b1000),
        (Opcode.OR, [0b1100, 0b1010], 0b1110),
        (Opcode.XOR, [0b1100, 0b1010], 0b0110),
        (Opcode.SHL, [1, 4], 16),
        (Opcode.SHR, [16, 2], 4),
        (Opcode.EQ, [3, 3], 1),
        (Opcode.NE, [3, 3], 0),
        (Opcode.LT, [2, 3], 1),
        (Opcode.GE, [2, 3], 0),
        (Opcode.SELECT, [1, 10, 20], 10),
        (Opcode.SELECT, [0, 10, 20], 20),
        (Opcode.MAC, [2, 3, 4], 10),
    ],
)
def test_evaluate(opcode, operands, expected):
    assert evaluate(opcode, operands) == expected


def test_shift_amounts_are_masked():
    assert evaluate(Opcode.SHL, [1, 33]) == 2  # 33 & 31 == 1
    assert evaluate(Opcode.SHR, [4, 33]) == 2


def test_evaluate_rejects_wrong_arity():
    with pytest.raises(ValueError):
        evaluate(Opcode.ADD, [1])


def test_evaluate_rejects_pseudo_opcodes():
    with pytest.raises(ValueError):
        evaluate(Opcode.CONST, [])
    with pytest.raises(ValueError):
        evaluate(Opcode.LOAD, [0])


def test_default_pe_operations_cover_the_full_isa():
    assert DEFAULT_PE_OPERATIONS == frozenset(Opcode)
