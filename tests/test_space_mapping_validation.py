"""Unit tests for the space phase, the Mapping object and the validator."""

import json

import pytest

from repro.arch.cgra import CGRA
from repro.core.exceptions import InvalidMappingError
from repro.core.mapping import Mapping
from repro.core.space_solver import SpaceSolver, build_pattern
from repro.core.time_solver import TimeSolver
from repro.core.validation import assert_valid_mapping, validate_mapping


@pytest.fixture
def example_mapping(example_dfg, cgra_2x2):
    schedule = TimeSolver(example_dfg, cgra_2x2, ii=4).solve()
    result = SpaceSolver(cgra_2x2).solve(schedule)
    assert result.found
    return Mapping(dfg=example_dfg, cgra=cgra_2x2, schedule=schedule,
                   placement=result.placement)


class TestSpaceSolver:
    def test_pattern_carries_slot_labels_and_all_edges(self, example_dfg,
                                                       cgra_2x2):
        schedule = TimeSolver(example_dfg, cgra_2x2, ii=4).solve()
        pattern = build_pattern(schedule)
        assert pattern.num_vertices == 14
        assert pattern.num_edges == len(example_dfg.undirected_edges())
        for node, label in pattern.labels.items():
            slot, opcode = label
            assert slot == schedule.slot(node)
            assert opcode is example_dfg.node(node).opcode

    def test_running_example_space_solution(self, example_mapping):
        assert validate_mapping(example_mapping) == []

    def test_space_solver_respects_mesh_topology(self, example_dfg):
        from repro.arch.topology import Topology

        mesh = CGRA(3, 3, topology=Topology.MESH)
        schedule = TimeSolver(example_dfg, mesh, ii=4).solve()
        result = SpaceSolver(mesh).solve(schedule)
        if result.found:
            mapping = Mapping(dfg=example_dfg, cgra=mesh, schedule=schedule,
                              placement=result.placement)
            assert validate_mapping(mapping) == []

    def test_failure_is_reported_not_raised(self, cgra_2x2):
        # A schedule that deliberately violates the connectivity condition:
        # 4 independent nodes all in slot 0 plus a centre adjacent to all of
        # them in slot 1 cannot be placed on a 2x2 CGRA (D_M = 3).
        from repro.graphs.dfg import DFG
        from repro.core.time_solver import Schedule

        dfg = DFG()
        centre = dfg.add_node(0).id
        for i in range(1, 5):
            dfg.add_node(i)
            dfg.add_data_edge(centre, i)
        schedule = Schedule(dfg, ii=2,
                            start_times={0: 0, 1: 1, 2: 1, 3: 1, 4: 1})
        result = SpaceSolver(cgra_2x2).solve(schedule)
        assert not result.found
        assert not result.timed_out


class TestMappingObject:
    def test_kernel_table_shape(self, example_mapping):
        table = example_mapping.kernel_table()
        assert len(table) == 4
        assert all(len(row) == 4 for row in table)
        placed = [node for row in table for node in row if node is not None]
        assert sorted(placed) == list(range(14))

    def test_timing_quantities(self, example_mapping):
        assert example_mapping.ii == 4
        assert example_mapping.schedule_length == 6
        assert example_mapping.num_stages == 2
        assert example_mapping.prologue_cycles() == 4
        assert example_mapping.epilogue_cycles() == 2
        assert example_mapping.total_cycles(1) == 6
        assert example_mapping.total_cycles(10) == 9 * 4 + 6

    def test_total_cycles_requires_positive_iterations(self, example_mapping):
        with pytest.raises(ValueError):
            example_mapping.total_cycles(0)

    def test_utilization_and_load(self, example_mapping):
        assert example_mapping.utilization() == pytest.approx(14 / 16)
        load = example_mapping.pe_load()
        assert sum(load.values()) == 14
        assert max(load.values()) <= 4

    def test_render_and_stats(self, example_mapping):
        rendering = example_mapping.render_kernel()
        assert "PE0" in rendering and "T=3" in rendering
        stats = example_mapping.stats()
        assert stats["ii"] == 4 and stats["nodes"] == 14

    def test_serialisation(self, example_mapping):
        data = json.loads(example_mapping.to_json())
        assert data["ii"] == 4
        assert len(data["placement"]) == 14

    def test_missing_placement_rejected(self, example_mapping):
        placement = dict(example_mapping.placement)
        placement.pop(0)
        with pytest.raises(ValueError):
            Mapping(dfg=example_mapping.dfg, cgra=example_mapping.cgra,
                    schedule=example_mapping.schedule, placement=placement)

    def test_mrrg_vertex_consistency(self, example_mapping):
        for node in example_mapping.dfg.node_ids():
            vertex = example_mapping.mrrg_vertex(node)
            assert vertex % 4 == example_mapping.pe(node)
            assert vertex // 4 == example_mapping.slot(node)


class TestValidator:
    def test_valid_mapping_passes(self, example_mapping):
        assert validate_mapping(example_mapping, check_registers=True) == []
        assert_valid_mapping(example_mapping)

    def test_detects_pe_conflict(self, example_mapping):
        broken = dict(example_mapping.placement)
        # find two nodes in the same slot and put them on the same PE
        by_slot = {}
        for node in example_mapping.dfg.node_ids():
            by_slot.setdefault(example_mapping.slot(node), []).append(node)
        slot, nodes = next((s, ns) for s, ns in by_slot.items() if len(ns) >= 2)
        broken[nodes[1]] = broken[nodes[0]]
        mapping = Mapping(dfg=example_mapping.dfg, cgra=example_mapping.cgra,
                          schedule=example_mapping.schedule, placement=broken)
        violations = validate_mapping(mapping)
        assert any("mono1" in v for v in violations)

    def test_detects_non_adjacent_dependence(self, example_mapping):
        # Fig. 2c: placing the endpoints of the 7 -> 4 loop-carried
        # dependence on diagonal (non-adjacent) PEs is invalid.
        broken = dict(example_mapping.placement)
        broken[7] = 0
        broken[4] = 3
        mapping = Mapping(dfg=example_mapping.dfg, cgra=example_mapping.cgra,
                          schedule=example_mapping.schedule, placement=broken)
        violations = validate_mapping(mapping)
        assert any("mono3" in v or "mono1" in v for v in violations)

    def test_detects_dependence_timing_violation(self, example_mapping):
        # Fig. 2c: scheduling nodes 2 and 8 in the same step violates their
        # data dependence.
        start_times = dict(example_mapping.schedule.start_times)
        start_times[8] = start_times[2]
        from repro.core.time_solver import Schedule

        schedule = Schedule(example_mapping.dfg, ii=4, start_times=start_times)
        mapping = Mapping(dfg=example_mapping.dfg, cgra=example_mapping.cgra,
                          schedule=schedule, placement=example_mapping.placement)
        violations = validate_mapping(mapping)
        assert any("timing" in v for v in violations)

    def test_assert_valid_raises_with_details(self, example_mapping):
        broken = dict(example_mapping.placement)
        by_slot = {}
        for node in example_mapping.dfg.node_ids():
            by_slot.setdefault(example_mapping.slot(node), []).append(node)
        _slot, nodes = next((s, ns) for s, ns in by_slot.items() if len(ns) >= 2)
        broken[nodes[1]] = broken[nodes[0]]  # two ops on one PE in one slot
        mapping = Mapping(dfg=example_mapping.dfg, cgra=example_mapping.cgra,
                          schedule=example_mapping.schedule, placement=broken)
        with pytest.raises(InvalidMappingError) as excinfo:
            assert_valid_mapping(mapping)
        assert excinfo.value.violations
