"""Op-compatibility-aware mapping on heterogeneous fabrics.

The acceptance tests of the heterogeneity subsystem: neither the decoupled
mapper nor the SAT-MapIt-style baseline may ever place an operation on a PE
that does not implement it, infeasible kernels are reported cleanly, and
the feasibility analysis tightens mII on restricted fabrics.
"""

import pytest

from repro.arch.cgra import CGRA
from repro.arch.isa import DEFAULT_PE_OPERATIONS, Opcode
from repro.arch.spec import MUL_FAMILY, build_preset
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.feasibility import analyze_feasibility, heterogeneous_res_ii
from repro.core.mapper import MappingStatus, MonomorphismMapper
from repro.core.validation import validate_mapping
from repro.graphs.dfg import DFG
from repro.graphs.generators import executable_random_dfg


def _mul_heavy_dfg(seed: int) -> DFG:
    return executable_random_dfg(
        9, seed=seed, opcodes=(Opcode.MUL, Opcode.ADD, Opcode.MUL)
    )


def _memory_dfg() -> DFG:
    """i -> load a[i] -> +1 -> store b[i] (a tiny streaming kernel)."""
    dfg = DFG(name="stream")
    dfg.add_node(0, Opcode.INDUCTION, name="i")
    dfg.add_node(1, Opcode.LOAD, name="x", array="a")
    dfg.add_node(2, Opcode.CONST, name="one", value=1)
    dfg.add_node(3, Opcode.ADD, name="y")
    dfg.add_node(4, Opcode.STORE, name="out", array="b")
    dfg.add_data_edge(0, 1, operand_index=0)
    dfg.add_data_edge(1, 3, operand_index=0)
    dfg.add_data_edge(2, 3, operand_index=1)
    dfg.add_data_edge(0, 4, operand_index=0)
    dfg.add_data_edge(3, 4, operand_index=1)
    return dfg


@pytest.fixture
def checkerboard():
    return build_preset("mul_sparse_checkerboard", 3, 3).build()


class TestOpPlacementRespected:
    """Acceptance: a mul-less PE is never assigned a mul node."""

    @pytest.mark.parametrize("seed", range(4))
    def test_decoupled_mapper_respects_mul_support(self, checkerboard, seed):
        dfg = _mul_heavy_dfg(seed)
        result = MonomorphismMapper(
            checkerboard, MapperConfig(total_timeout_seconds=30)
        ).map(dfg)
        assert result.success, result.summary()
        assert validate_mapping(result.mapping) == []
        mul_pes = checkerboard.supporting_pes(Opcode.MUL)
        for node in dfg.nodes():
            if node.opcode in MUL_FAMILY:
                assert result.mapping.pe(node.id) in mul_pes

    @pytest.mark.parametrize("seed", range(2))
    def test_baseline_respects_mul_support(self, checkerboard, seed):
        dfg = _mul_heavy_dfg(seed)
        result = SatMapItMapper(
            checkerboard, BaselineConfig(timeout_seconds=30)
        ).map(dfg)
        assert result.success, result.summary()
        assert validate_mapping(result.mapping) == []
        mul_pes = checkerboard.supporting_pes(Opcode.MUL)
        for node in dfg.nodes():
            if node.opcode in MUL_FAMILY:
                assert result.mapping.pe(node.id) in mul_pes

    def test_memory_ops_stay_in_the_memory_column(self):
        cgra = build_preset("memory_column_mesh", 3, 3).build()
        dfg = _memory_dfg()
        result = MonomorphismMapper(
            cgra, MapperConfig(total_timeout_seconds=30)
        ).map(dfg)
        assert result.success, result.summary()
        memory_pes = cgra.supporting_pes(Opcode.LOAD)
        assert result.mapping.pe(1) in memory_pes   # the load
        assert result.mapping.pe(4) in memory_pes   # the store

    def test_validator_flags_unsupported_placement(self, checkerboard):
        # Map on a homogeneous array, then re-validate the same placement
        # against the heterogeneous fabric: every misplaced mul node must
        # surface as an op-support violation.
        from repro.core.mapping import Mapping

        dfg = _mul_heavy_dfg(0)
        result = MonomorphismMapper(
            CGRA(3, 3), MapperConfig(total_timeout_seconds=30)
        ).map(dfg)
        assert result.success
        forged = Mapping(
            dfg=dfg,
            cgra=checkerboard,
            schedule=result.mapping.schedule,
            placement=dict(result.mapping.placement),
        )
        violations = validate_mapping(forged)
        mul_pes = checkerboard.supporting_pes(Opcode.MUL)
        misplaced = [
            node.id for node in dfg.nodes()
            if node.opcode in MUL_FAMILY
            and result.mapping.pe(node.id) not in mul_pes
        ]
        op_violations = [v for v in violations if v.startswith("op-support")]
        assert len(op_violations) == len(misplaced)


class TestInfeasibilityReporting:
    """Acceptance: unsupported opcodes report infeasible, never crash."""

    def test_decoupled_mapper_reports_infeasible(self):
        cgra = build_preset("mul_free_torus", 4, 4).build()
        dfg = _mul_heavy_dfg(1)
        result = MonomorphismMapper(cgra).map(dfg)
        assert result.status is MappingStatus.INFEASIBLE
        assert not result.success and result.mapping is None
        assert "mul" in result.message
        assert "supported by no PE" in result.message

    def test_baseline_reports_infeasible(self):
        cgra = build_preset("mul_free_torus", 4, 4).build()
        dfg = _mul_heavy_dfg(1)
        result = SatMapItMapper(cgra).map(dfg)
        assert result.status is MappingStatus.INFEASIBLE
        assert not result.success and result.mapping is None
        assert "mul" in result.message

    def test_infeasible_is_immediate(self):
        # No solver work may happen: the report comes back in milliseconds
        # even with a generous budget.
        cgra = build_preset("mul_free_torus", 4, 4).build()
        result = MonomorphismMapper(
            cgra, MapperConfig(total_timeout_seconds=3600)
        ).map(_mul_heavy_dfg(2))
        assert result.status is MappingStatus.INFEASIBLE
        assert result.total_seconds < 5.0
        assert result.schedules_tried == 0


class TestFeasibilityAnalysis:
    def test_homogeneous_array_is_always_feasible(self):
        report = analyze_feasibility(_mul_heavy_dfg(0), CGRA(3, 3))
        assert report.feasible
        assert report.restricted_classes == {}
        assert report.message() == ""

    def test_unsupported_opcodes_are_grouped(self):
        cgra = build_preset("mul_free_torus", 2, 2).build()
        dfg = _mul_heavy_dfg(0)
        report = analyze_feasibility(dfg, cgra)
        assert not report.feasible
        muls = sorted(
            n.id for n in dfg.nodes() if n.opcode is Opcode.MUL
        )
        assert sorted(report.unsupported[Opcode.MUL]) == muls

    def test_restricted_class_tightens_res_ii(self):
        # 6 muls on a fabric with 2 mul-capable PEs need at least 3 slots.
        cgra = CGRA(2, 2, pe_operations={
            1: DEFAULT_PE_OPERATIONS - MUL_FAMILY,
            3: DEFAULT_PE_OPERATIONS - MUL_FAMILY,
        })
        dfg = DFG(name="muls")
        dfg.add_node(0, Opcode.INPUT, value=1)
        for i in range(1, 7):
            dfg.add_node(i, Opcode.MUL)
            dfg.add_data_edge(0, i, operand_index=0)
            dfg.add_data_edge(0, i, operand_index=1)
        assert heterogeneous_res_ii(dfg, cgra) == 3
        # II=3 packs the two mul PEs completely, leaving no slot for the
        # input next to both of them; allow the mapper to relax to II=4+
        result = MonomorphismMapper(
            cgra, MapperConfig(total_timeout_seconds=30, max_ii=6)
        ).map(dfg)
        assert result.success, result.summary()
        assert result.mii >= 3
        assert result.ii >= 3
        assert validate_mapping(result.mapping) == []

    def test_equal_on_homogeneous(self):
        dfg = _mul_heavy_dfg(3)
        assert heterogeneous_res_ii(dfg, CGRA(2, 2)) == -(-dfg.num_nodes // 4)
