"""Tests for the incremental time phase and its mapper integration."""

import pytest

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.time_solver import IncrementalTimeSolver, TimeSolver
from repro.graphs.dfg import DFG
from repro.workloads.running_example import running_example_dfg
from repro.workloads.suite import load_benchmark


def _check_schedule(schedule, cgra) -> None:
    assert schedule.validate_dependences() == []
    assert schedule.max_slot_population() <= cgra.num_pes
    degree = cgra.connectivity_degree
    for node in schedule.dfg.node_ids():
        for slot in range(schedule.ii):
            assert schedule.neighbor_slot_count(node, slot) <= degree


class TestIncrementalTimeSolver:
    def test_matches_reencoding_solver_across_ii_sweep(self):
        cases = [
            (running_example_dfg(), CGRA(2, 2), range(3, 7)),
            (load_benchmark("bitcount"), CGRA(2, 2), range(2, 5)),
            (load_benchmark("gsm"), CGRA(4, 4), range(3, 7)),
        ]
        for dfg, cgra, iis in cases:
            incremental = IncrementalTimeSolver(dfg, cgra)
            for ii in iis:
                for slack in (0, 1, 2):
                    fresh = TimeSolver(dfg, cgra, ii, slack=slack).solve(
                        timeout_seconds=30
                    )
                    reused = incremental.solve(ii, slack=slack,
                                               timeout_seconds=30)
                    assert (fresh is None) == (reused is None), (
                        dfg.name, ii, slack)
                    if reused is not None:
                        assert reused.ii == ii
                        _check_schedule(reused, cgra)

    def test_below_rec_ii_is_unsat(self):
        incremental = IncrementalTimeSolver(running_example_dfg(), CGRA(2, 2))
        assert incremental.solve(3) is None
        assert incremental.solve(4) is not None

    def test_capacity_constraint_enforced(self):
        dfg = DFG()
        for i in range(6):
            dfg.add_node(i)
        dfg.add_data_edge(0, 5)
        incremental = IncrementalTimeSolver(dfg, CGRA(2, 2))
        assert incremental.solve(1) is None  # 6 nodes > 4 PEs in one slot
        assert incremental.solve(2) is not None

    def test_enumeration_is_distinct_and_blocking_is_retracted(self):
        incremental = IncrementalTimeSolver(running_example_dfg(), CGRA(2, 2))
        schedules = list(incremental.iter_schedules(4, limit=5))
        assert 1 <= len(schedules) <= 5
        signatures = {
            tuple(sorted(s.start_times.items())) for s in schedules
        }
        assert len(signatures) == len(schedules)
        # moving to another II and back retracts the blocking clauses
        assert incremental.solve(5) is not None
        assert incremental.solve(4) is not None
        # full enumerations are order-independent: running one after another
        # proves every blocking clause of the first was retracted
        first = {
            tuple(sorted(s.start_times.items()))
            for s in incremental.iter_schedules(4, limit=10_000)
        }
        second = {
            tuple(sorted(s.start_times.items()))
            for s in incremental.iter_schedules(4, limit=10_000)
        }
        assert first and first == second
        assert signatures <= first

    def test_horizon_rebuild_on_large_slack(self):
        incremental = IncrementalTimeSolver(running_example_dfg(), CGRA(2, 2))
        small = incremental.max_slack
        schedule = incremental.solve(6, slack=small + 5)
        assert incremental._rebuilds == 1
        assert incremental.max_slack > small
        assert schedule is not None
        _check_schedule(schedule, CGRA(2, 2))

    def test_invalid_ii(self):
        incremental = IncrementalTimeSolver(running_example_dfg(), CGRA(2, 2))
        with pytest.raises(ValueError):
            incremental.solve(0)


class TestMapperIntegration:
    @pytest.mark.parametrize("name,size", [
        ("bitcount", (2, 2)),
        ("susan", (4, 4)),
        ("gsm", (4, 4)),
        ("crc32", (4, 4)),
    ])
    def test_incremental_and_reencoding_mappers_agree(self, name, size):
        dfg = load_benchmark(name)
        cgra = CGRA(*size)
        incremental = MonomorphismMapper(
            cgra, MapperConfig(total_timeout_seconds=60, incremental_time=True)
        ).map(dfg)
        reencoding = MonomorphismMapper(
            cgra, MapperConfig(total_timeout_seconds=60, incremental_time=False)
        ).map(dfg)
        assert incremental.status == reencoding.status
        assert incremental.ii == reencoding.ii
        assert incremental.mii == reencoding.mii
        if incremental.success:
            assert incremental.mapping is not None

    def test_running_example_maps_at_paper_ii(self):
        result = MonomorphismMapper(
            CGRA(2, 2), MapperConfig(total_timeout_seconds=30)
        ).map(running_example_dfg())
        assert result.success and result.ii == 4
