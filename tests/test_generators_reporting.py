"""Tests for the synthetic DFG generators and the reporting helpers."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.analysis import rec_ii
from repro.graphs.dfg import DependenceKind
from repro.graphs.generators import (
    binary_tree_dfg,
    chain_dfg,
    layered_dfg,
    random_dfg,
)
from repro.reporting.figures import Series, render_line_chart, series_to_csv
from repro.reporting.tables import Table, format_ratio, format_seconds


class TestGenerators:
    def test_chain(self):
        dfg = chain_dfg(5)
        assert dfg.num_nodes == 5
        assert rec_ii(dfg) == 5
        assert chain_dfg(5, loop_carried=False).loop_carried_edges() == []

    def test_chain_rejects_bad_length(self):
        with pytest.raises(ValueError):
            chain_dfg(0)

    def test_binary_tree(self):
        dfg = binary_tree_dfg(3)
        assert dfg.num_nodes == 8 + 7
        assert dfg.loop_carried_edges() == []
        dfg.validate()

    def test_layered(self):
        dfg = layered_dfg([3, 4, 2], seed=1)
        assert dfg.num_nodes == 9
        dfg.validate()
        with pytest.raises(ValueError):
            layered_dfg([])

    @settings(max_examples=30, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=30),
        edge_probability=st.floats(min_value=0.0, max_value=0.5),
        num_loop_carried=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_dfg_invariants(self, num_nodes, edge_probability,
                                   num_loop_carried, seed):
        dfg = random_dfg(num_nodes, edge_probability, num_loop_carried,
                         seed=seed)
        dfg.validate()
        assert dfg.num_nodes == num_nodes
        assert nx.is_directed_acyclic_graph(dfg.data_dag())
        assert nx.is_connected(dfg.to_networkx())
        assert len(dfg.loop_carried_edges()) <= num_loop_carried
        for edge in dfg.edges():
            if edge.kind is DependenceKind.LOOP_CARRIED:
                assert edge.distance >= 1

    def test_random_dfg_is_deterministic_per_seed(self):
        assert random_dfg(15, seed=7).to_dict() == random_dfg(15, seed=7).to_dict()


class TestTables:
    def test_render_and_column(self):
        table = Table(headers=["name", "value"], title="demo")
        table.add_row("a", 1)
        table.add_row("b", None)
        text = table.render()
        assert "demo" in text and "name" in text and "-" in text
        assert table.column("value") == [1, None]
        assert len(table) == 2

    def test_row_width_checked(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_csv(self, tmp_path):
        table = Table(headers=["x", "y"])
        table.add_row(1, 2.5)
        path = tmp_path / "out.csv"
        text = table.to_csv(str(path))
        assert "x,y" in text
        assert path.read_text().startswith("x,y")

    def test_formatters(self):
        assert format_seconds(None) == "TO"
        assert format_seconds(0.001) == "~0.01"
        assert format_seconds(1.234) == "1.23"
        assert format_ratio(None) == "-"
        assert format_ratio(12.3456) == "12.35"


class TestFigures:
    def test_render_line_chart(self):
        ours = Series("ours", ["2x2", "5x5"], [0.1, 0.2])
        baseline = Series("baseline", ["2x2", "5x5"], [1.0, None])
        text = render_line_chart([ours, baseline], title="demo")
        assert "demo" in text and "legend" in text
        assert "ours" in text and "baseline" in text

    def test_render_empty(self):
        assert render_line_chart([Series("x", ["a"], [None])]) == "(no data)"

    def test_series_csv(self, tmp_path):
        ours = Series("ours", ["2x2", "5x5"], [0.1, 0.2])
        path = tmp_path / "series.csv"
        text = series_to_csv([ours], str(path))
        assert "x,ours" in text
        assert path.exists()
