"""Unit tests for the Modulo Routing Resource Graph."""

import pytest

from repro.arch.cgra import CGRA
from repro.arch.mrrg import MRRG, TimeAdjacency


@pytest.fixture
def mrrg_2x2_ii4(cgra_2x2):
    return MRRG(cgra_2x2, ii=4)


class TestStructure:
    def test_vertex_count(self, mrrg_2x2_ii4):
        # |V_M| = II * |V_Mi| (paper Sec. IV-A, Fig. 3 has 16 vertices).
        assert mrrg_2x2_ii4.num_vertices == 16

    def test_vertex_encoding_round_trip(self, mrrg_2x2_ii4):
        for pe in range(4):
            for slot in range(4):
                vertex = mrrg_2x2_ii4.vertex(pe, slot)
                assert mrrg_2x2_ii4.pe_of(vertex) == pe
                assert mrrg_2x2_ii4.slot_of(vertex) == slot
                assert mrrg_2x2_ii4.label(vertex) == slot

    def test_labels_partition_vertices(self, mrrg_2x2_ii4):
        seen = set()
        for slot in range(4):
            vertices = list(mrrg_2x2_ii4.vertices_with_label(slot))
            assert len(vertices) == 4
            assert all(mrrg_2x2_ii4.label(v) == slot for v in vertices)
            seen.update(vertices)
        assert seen == set(range(16))

    def test_invalid_arguments(self, cgra_2x2, mrrg_2x2_ii4):
        with pytest.raises(ValueError):
            MRRG(cgra_2x2, ii=0)
        with pytest.raises(ValueError):
            mrrg_2x2_ii4.vertex(5, 0)
        with pytest.raises(ValueError):
            mrrg_2x2_ii4.vertex(0, 4)
        with pytest.raises(ValueError):
            list(mrrg_2x2_ii4.vertices_with_label(4))

    def test_capacity_per_slot(self, mrrg_2x2_ii4):
        assert mrrg_2x2_ii4.capacity_per_slot() == [4, 4, 4, 4]

    def test_connectivity_degree_matches_cgra(self, mrrg_2x2_ii4, cgra_2x2):
        assert mrrg_2x2_ii4.connectivity_degree == cgra_2x2.connectivity_degree


class TestAdjacency:
    def test_no_self_edges(self, mrrg_2x2_ii4):
        for vertex in mrrg_2x2_ii4.vertices():
            assert not mrrg_2x2_ii4.has_edge(vertex, vertex)

    def test_edges_require_spatial_adjacency(self, mrrg_2x2_ii4):
        # PE0 and PE3 are diagonal on the 2x2 torus: never MRRG-adjacent.
        for slot_a in range(4):
            for slot_b in range(4):
                a = mrrg_2x2_ii4.vertex(0, slot_a)
                b = mrrg_2x2_ii4.vertex(3, slot_b)
                assert not mrrg_2x2_ii4.has_edge(a, b)

    def test_same_pe_different_slots_connected(self, mrrg_2x2_ii4):
        # A PE can keep a value in its own register file across slots.
        a = mrrg_2x2_ii4.vertex(0, 0)
        b = mrrg_2x2_ii4.vertex(0, 2)
        assert mrrg_2x2_ii4.has_edge(a, b)

    def test_all_pairs_time_adjacency(self, cgra_2x2):
        # Fig. 3: PE0 at T=0 is time-adjacent to its neighbours at all slots.
        mrrg = MRRG(cgra_2x2, ii=4, time_adjacency=TimeAdjacency.ALL_PAIRS)
        a = mrrg.vertex(0, 0)
        assert mrrg.has_edge(a, mrrg.vertex(1, 2))
        assert mrrg.has_edge(a, mrrg.vertex(1, 3))

    def test_consecutive_time_adjacency_restricts_slot_distance(self, cgra_2x2):
        mrrg = MRRG(cgra_2x2, ii=4, time_adjacency=TimeAdjacency.CONSECUTIVE)
        a = mrrg.vertex(0, 0)
        assert mrrg.has_edge(a, mrrg.vertex(1, 1))
        assert mrrg.has_edge(a, mrrg.vertex(1, 3))  # wrap-around slot
        assert not mrrg.has_edge(a, mrrg.vertex(1, 2))
        assert mrrg.has_edge(a, mrrg.vertex(1, 0))  # same slot, neighbour PE

    def test_adjacency_is_symmetric(self, mrrg_2x2_ii4):
        vertices = list(mrrg_2x2_ii4.vertices())
        for a in vertices:
            for b in vertices:
                assert mrrg_2x2_ii4.has_edge(a, b) == mrrg_2x2_ii4.has_edge(b, a)

    def test_neighbors_match_has_edge(self, mrrg_2x2_ii4):
        for vertex in mrrg_2x2_ii4.vertices():
            neighbors = set(mrrg_2x2_ii4.neighbors(vertex))
            expected = {
                other
                for other in mrrg_2x2_ii4.vertices()
                if mrrg_2x2_ii4.has_edge(vertex, other)
            }
            assert neighbors == expected

    def test_degree_uniform_on_torus(self, mrrg_2x2_ii4):
        degrees = {mrrg_2x2_ii4.degree(v) for v in mrrg_2x2_ii4.vertices()}
        assert len(degrees) == 1
        # neighbours-or-self (3) across 4 slots, minus the vertex itself
        assert degrees.pop() == 3 * 4 - 1

    def test_num_edges_matches_networkx_export(self, cgra_2x2):
        mrrg = MRRG(cgra_2x2, ii=3)
        graph = mrrg.to_networkx()
        assert graph.number_of_nodes() == mrrg.num_vertices
        assert graph.number_of_edges() == mrrg.num_edges

    def test_ii_one_is_spatial_graph_only(self, cgra_3x3):
        mrrg = MRRG(cgra_3x3, ii=1)
        assert mrrg.num_vertices == 9
        # neighbours within the single slot = spatial neighbours (no self)
        assert set(mrrg.neighbors(mrrg.vertex(0, 0))) == set(
            cgra_3x3.neighbors(0)
        )

    def test_large_instance_is_cheap_to_query(self):
        mrrg = MRRG(CGRA(20, 20), ii=16)
        assert mrrg.num_vertices == 6400
        a = mrrg.vertex(0, 0)
        b = mrrg.vertex(1, 15)
        assert mrrg.has_edge(a, b)
        assert mrrg.degree(a) == 5 * 16 - 1
