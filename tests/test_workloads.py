"""Tests for the benchmark workload suite (Table III stand-ins)."""

import pytest

from repro.graphs.analysis import min_ii, rec_ii
from repro.sim.reference import ReferenceInterpreter
from repro.workloads.kernels import KernelShape, build_kernel
from repro.workloads.running_example import running_example_dfg
from repro.workloads.suite import (
    SPECS,
    benchmark_names,
    load_all,
    load_benchmark,
    spec,
)

#: Node counts straight from the paper's Table III "DFG Nodes" column.
PAPER_NODE_COUNTS = {
    "aes": 23, "backprop": 34, "basicmath": 21, "bitcount": 7, "cfd": 51,
    "crc32": 24, "fft": 20, "gsm": 24, "heartwall": 35, "hotspot3D": 57,
    "lud": 26, "nw": 33, "particlefilter": 38, "sha1": 21, "sha2": 25,
    "stringsearch": 28, "susan": 21,
}


def test_suite_contains_the_17_paper_benchmarks():
    assert len(benchmark_names()) == 17
    assert set(benchmark_names()) == set(PAPER_NODE_COUNTS)


@pytest.mark.parametrize("name", sorted(PAPER_NODE_COUNTS))
def test_node_counts_match_the_paper(name):
    dfg = load_benchmark(name)
    assert dfg.num_nodes == PAPER_NODE_COUNTS[name]
    assert dfg.num_nodes == spec(name).num_nodes


@pytest.mark.parametrize("name", sorted(PAPER_NODE_COUNTS))
def test_rec_ii_matches_the_spec(name):
    dfg = load_benchmark(name)
    assert rec_ii(dfg) == spec(name).rec_ii


@pytest.mark.parametrize("name", sorted(PAPER_NODE_COUNTS))
def test_mii_matches_the_paper_for_every_cgra_size(name):
    dfg = load_benchmark(name)
    benchmark_spec = spec(name)
    for size, pes in [("2x2", 4), ("5x5", 25), ("10x10", 100), ("20x20", 400)]:
        assert min_ii(dfg, pes) == benchmark_spec.paper_mii[size], (
            f"{name} on {size}"
        )


@pytest.mark.parametrize("name", sorted(PAPER_NODE_COUNTS))
def test_dfgs_are_structurally_valid_and_deterministic(name):
    first = load_benchmark(name)
    second = load_benchmark(name)
    first.validate()
    assert first.to_dict() == second.to_dict()
    # connected as an undirected graph
    import networkx as nx

    assert nx.is_connected(first.to_networkx())


@pytest.mark.parametrize("name", ["aes", "hotspot3D", "nw", "particlefilter"])
def test_dfgs_are_executable(name):
    dfg = load_benchmark(name)
    trace = ReferenceInterpreter(dfg).run(4)
    assert len(trace.values) == dfg.num_nodes * 4


def test_load_all_returns_every_benchmark():
    assert set(load_all()) == set(benchmark_names())


def test_running_example_is_loadable_by_name():
    assert load_benchmark("running_example").num_nodes == 14
    assert running_example_dfg().num_nodes == 14


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        spec("doesnotexist")
    with pytest.raises(KeyError):
        load_benchmark("doesnotexist")


def test_specs_record_paper_reference_values():
    aes = spec("aes")
    assert aes.paper_ii["2x2"] == 16
    assert aes.paper_mii["2x2"] == 14
    assert spec("cfd").paper_ii["20x20"] is None
    assert spec("hotspot3D").suite == "rodinia"


class TestKernelBuilder:
    def test_exact_node_count_for_arbitrary_shapes(self):
        for nodes, rec in [(10, 2), (23, 14), (57, 2), (15, 7), (40, 9)]:
            for style in ("tree", "chain", "split"):
                shape = KernelShape(num_nodes=nodes, rec_ii=rec,
                                    feeder_style=style, sink_nodes=3,
                                    theme="integer", seed=1)
                dfg = build_kernel(f"k{nodes}_{rec}_{style}", shape)
                assert dfg.num_nodes == nodes
                assert rec_ii(dfg) == rec

    def test_rejects_impossible_shapes(self):
        with pytest.raises(ValueError):
            build_kernel("bad", KernelShape(num_nodes=3, rec_ii=1))
        with pytest.raises(ValueError):
            build_kernel("bad", KernelShape(num_nodes=4, rec_ii=4))

    def test_bounded_degree(self):
        # keeping node degrees moderate is what makes the kernels mappable on
        # a 2x2 CGRA (connectivity constraint with D_M = 3)
        for name in ("hotspot3D", "cfd", "backprop"):
            dfg = load_benchmark(name)
            max_degree = max(len(dfg.neighbor_ids(n)) for n in dfg.node_ids())
            assert max_degree <= 8
