"""Tests of the engine-portfolio runner (`repro.heuristic.portfolio`)."""

import pytest

from repro.core.config import PortfolioConfig
from repro.core.mapper import MappingResult, MappingStatus
from repro.heuristic.portfolio import PortfolioMapper, _better
from repro.core.validation import validate_mapping
from repro.workloads.suite import load_benchmark


def _result(status, ii=None, mii=0, seconds=1.0):
    return MappingResult(status=status, ii=ii, mii=mii,
                         total_seconds=seconds)


class TestPreferenceOrder:
    def test_success_beats_failure(self):
        good = _result(MappingStatus.SUCCESS, ii=5)
        bad = _result(MappingStatus.NO_SOLUTION)
        assert _better(bad, good) is good
        assert _better(good, bad) is good

    def test_lower_ii_beats_higher(self):
        low = _result(MappingStatus.SUCCESS, ii=3, seconds=9.0)
        high = _result(MappingStatus.SUCCESS, ii=5, seconds=0.1)
        assert _better(high, low) is low
        assert _better(low, high) is low

    def test_equal_ii_prefers_faster(self):
        fast = _result(MappingStatus.SUCCESS, ii=3, seconds=0.1)
        slow = _result(MappingStatus.SUCCESS, ii=3, seconds=5.0)
        assert _better(slow, fast) is fast
        # ... and the incumbent keeps a tie
        assert _better(fast, slow) is fast

    def test_none_takes_anything(self):
        failed = _result(MappingStatus.NO_SOLUTION)
        assert _better(None, failed) is failed


class TestSequentialPortfolio:
    def test_maps_and_records_per_engine_outcomes(self, cgra_3x3):
        dfg = load_benchmark("bitcount")
        config = PortfolioConfig(budget_seconds=60.0, seed=7)
        result = PortfolioMapper(cgra_3x3, config).map(dfg)
        assert result.success
        assert validate_mapping(result.mapping) == []
        stats = result.stats
        assert stats["engine"] == "portfolio"
        assert stats["winner"] in config.engines
        recorded = [o["engine"] for o in stats["portfolio"]]
        assert recorded == list(config.engines)[: len(recorded)]
        winning = [o for o in stats["portfolio"]
                   if o["engine"] == stats["winner"]][0]
        assert winning["status"] == "success"
        assert winning["ii"] == result.ii

    def test_short_circuits_on_provable_optimality(self, cgra_3x3):
        # bitcount maps at II == mII for every engine; the heuristic runs
        # first and proves optimality, so the exact engines never run
        dfg = load_benchmark("bitcount")
        result = PortfolioMapper(
            cgra_3x3, PortfolioConfig(budget_seconds=60.0, seed=7)
        ).map(dfg)
        assert result.success
        assert result.ii == result.mii
        assert len(result.stats["portfolio"]) == 1
        assert result.stats["winner"] == "heuristic"

    def test_engine_subset_and_order_are_respected(self, cgra_3x3):
        dfg = load_benchmark("susan")
        config = PortfolioConfig(engines=("monomorphism",),
                                 budget_seconds=60.0)
        result = PortfolioMapper(cgra_3x3, config).map(dfg)
        assert result.success
        assert result.stats["winner"] == "monomorphism"
        assert [o["engine"] for o in result.stats["portfolio"]] == \
            ["monomorphism"]

    def test_per_engine_budget_division(self):
        config = PortfolioConfig(budget_seconds=90.0)
        assert config.per_engine_budget() == pytest.approx(30.0)
        parallel = PortfolioConfig(budget_seconds=90.0, parallel=True)
        assert parallel.per_engine_budget() == pytest.approx(90.0)

    def test_infeasible_everywhere_reports_failure(self):
        from repro.arch.spec import build_preset

        cgra = build_preset("mul_free_torus", 4, 4).build()
        dfg = load_benchmark("fft")  # needs MUL
        result = PortfolioMapper(
            cgra, PortfolioConfig(budget_seconds=30.0, seed=1)
        ).map(dfg)
        assert not result.success
        assert all(o["status"] == "infeasible"
                   for o in result.stats["portfolio"])


class TestParallelPortfolio:
    def test_parallel_race_maps_and_attributes(self, cgra_3x3):
        dfg = load_benchmark("gsm")
        result = PortfolioMapper(
            cgra_3x3,
            PortfolioConfig(budget_seconds=60.0, seed=7, parallel=True),
        ).map(dfg)
        assert result.success
        assert validate_mapping(result.mapping) == []
        stats = result.stats
        assert stats["engine"] == "portfolio"
        assert stats["winner"] is not None
        assert len(stats["portfolio"]) == 3
        for outcome in stats["portfolio"]:
            assert outcome["status"] in (
                "success", "cancelled", "hard_timeout", "no_solution",
                "time_timeout", "space_timeout", "total_timeout",
            )
