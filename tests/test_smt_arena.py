"""Unit tests for flat-arena kernel internals not visible at the API level.

The public solver contract is covered by test_smt_sat / test_smt_incremental
(which now run against the arena kernel) and by the differential suite.
This file pins down the rewrite-specific machinery: LBD clause-DB
reduction, the snapshot-backed model object, bulk clause loading, capacity
growth, and the lazy order-heap rebuild after pop.
"""

import random

import pytest

from repro.perf import PerfCounters
from repro.smt.cnf import CNF
from repro.smt.sat import (
    GLUE_LBD,
    SATSolver,
    _SnapshotModel,
    solve_brute_force,
)


def _hard_cnf(seed: int, num_vars: int = 40, clause_factor: float = 4.2) -> CNF:
    """A random 3-CNF near the phase transition: plenty of conflicts."""
    rng = random.Random(seed)
    cnf = CNF()
    variables = [cnf.new_var() for _ in range(num_vars)]
    for _ in range(int(num_vars * clause_factor)):
        chosen = rng.sample(variables, 3)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


class TestClauseDatabaseReduction:
    def test_reduction_tombstones_learnts_and_preserves_status(self):
        reduced_somewhere = False
        for seed in range(12):
            cnf = _hard_cnf(seed)
            baseline = SATSolver.from_cnf(cnf).solve().status
            perf = PerfCounters()
            solver = SATSolver.from_cnf(cnf)
            solver.perf = perf
            solver._reduce_interval = 20  # force frequent reductions
            result = solver.solve()
            assert result.status == baseline, seed
            if perf.reductions:
                reduced_somewhere = True
                assert perf.learnts_deleted > 0
                # no pops happened: every tombstone is still in the arena
                assert sum(solver.c_dead) == perf.learnts_deleted
        assert reduced_somewhere

    def test_glue_and_locked_clauses_survive_reduction(self):
        solver = SATSolver.from_cnf(_hard_cnf(3))
        solver._reduce_interval = 20
        solver.solve()
        for index in range(len(solver.c_off)):
            if solver.c_dead[index]:
                assert solver.c_learnt[index], "problem clause tombstoned"
                assert solver.c_lbd[index] > GLUE_LBD, "glue clause deleted"

    def test_reduction_inside_scope_restores_learnt_count_on_pop(self):
        solver = SATSolver.from_cnf(_hard_cnf(5))
        assert solver.solve().status is not None
        outside = solver.num_learnts
        solver.push()
        solver._reduce_interval = 20
        extra = _hard_cnf(6, num_vars=30)
        offset = solver.num_vars
        solver.ensure_vars(offset + 30)
        for clause in extra.clauses:
            solver.add_clause([
                lit + offset if lit > 0 else lit - offset for lit in clause
            ])
        solver.solve()
        solver.pop()
        # pop subtracts scope learnts *and* pre-scope learnts tombstoned
        # while the scope was open
        live = sum(
            1 for index in range(len(solver.c_off))
            if solver.c_learnt[index] and not solver.c_dead[index]
        )
        assert solver.num_learnts == live <= outside


class TestSnapshotModel:
    def test_mapping_protocol(self):
        solver = SATSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-b])
        result = solver.solve()
        model = result.model
        assert isinstance(model, _SnapshotModel)
        assert model[a] is True and model[b] is False
        assert model.get(a) and not model.get(b)
        assert model.get(99, True) is True  # out of range -> default
        assert a in model and 99 not in model and "x" not in model
        assert len(model) == 2
        assert list(model) == [a, b]
        assert list(model.keys()) == [a, b]
        assert dict(model.items()) == {a: True, b: False}
        with pytest.raises(KeyError):
            model[99]
        assert result.value(a) and result.value(-b)

    def test_brute_force_oracle_still_returns_plain_dicts(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        assert solve_brute_force(cnf).model == {1: True}


class TestBulkLoading:
    def test_add_clauses_matches_per_clause_loading(self):
        for seed in range(10):
            cnf = _hard_cnf(seed, num_vars=12, clause_factor=3.0)
            bulk = SATSolver()
            bulk.ensure_vars(cnf.num_vars)
            bulk.add_clauses(cnf.clauses)
            serial = SATSolver()
            serial.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                serial.add_clause(clause)
            assert bulk.solve().status == serial.solve().status, seed
            assert [sorted(c) for c in bulk.clauses] == [
                sorted(c) for c in serial.clauses
            ]

    def test_capacity_growth_preserves_state(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve().is_sat
        solver.ensure_vars(5000)  # forces several relayouts worth of growth
        b = 4999
        solver.add_clause([-a, b])
        result = solver.solve()
        assert result.is_sat and result.value(a) and result.value(b)


class TestLazyHeapRebuild:
    def test_pop_defers_heap_rebuild_to_next_solve(self):
        solver = SATSolver.from_cnf(_hard_cnf(1, num_vars=20))
        solver.solve()
        solver.push()
        solver.add_clause([solver.new_var()])
        solver.solve()
        solver.pop()
        assert solver._heap_dirty  # satellite: pop marks, solve rebuilds
        result = solver.solve()
        assert not solver._heap_dirty
        assert result.status == SATSolver.from_cnf(
            _hard_cnf(1, num_vars=20)).solve().status
