"""Chaos suite: crash isolation, supervised retries, drain, recovery.

Every test here exercises the service *under injected failure*: workers
killed mid-job via :mod:`repro.service.faults` (``REPRO_FAULTS``),
stalled heartbeats, hard-deadline overruns, torn store writes, SIGTERM
against a live daemon. The process pool must absorb each fault --
restart the worker, retry the job within its budget, demote a crashing
solver backend, journal queued work across a drain -- while the job's
event stream, the counters and ``/metrics`` attribute what happened.
"""

import json
import os
import signal
import socket
import socketserver
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import faults, procpool
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import MappingService, ServiceUnavailable
from repro.service.server import create_server
from repro.service.store import ResultStore, content_key

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REFINE_PAYLOAD = {"benchmark": "running_example", "approach": "heuristic",
                  "strategy": "refine", "seed": 7, "budget_seconds": 20}


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no fault plan armed."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


def arm(monkeypatch, spec):
    """Arm a fault plan for this process and future worker forks."""
    monkeypatch.setenv(faults.ENV_VAR, json.dumps(spec))
    faults.reset()  # drop the cached (empty) plan so children inherit none


def finish(service, job):
    """Block until ``job`` is terminal (drains its event stream)."""
    list(service.stream_events(job.id))
    return job


def event_names(job):
    return [e["event"] for e in job.events]


# --------------------------------------------------------------------- #
# The fault-plan parser
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_empty_env_is_inactive(self):
        assert not faults.FaultPlan.parse(None).active
        assert not faults.FaultPlan.parse("").active

    def test_round_trip(self):
        plan = faults.FaultPlan.parse(json.dumps(
            {"kill_worker": {"phase": "engine", "attempts": [0, 1]},
             "slow_solver": {"seconds": 1.5}}))
        assert plan.active
        assert plan.kill_action("engine", 0) is not None
        assert plan.kill_action("engine", 2) is None
        assert plan.kill_action("start", 0) is None
        assert plan.slow_solver_delay == 1.5
        # delay faults only fire inside marked worker processes
        assert plan.slow_solver_seconds() == 0.0

    @pytest.mark.parametrize("text", [
        "not json",
        "[1, 2]",
        '{"explode": {}}',
        '{"kill_worker": {"phase": "teardown"}}',
        '{"kill_worker": {"attempts": "first"}}',
        '{"stall_worker": {"seconds": "long"}}',
        '{"slow_solver": {}}',
        '{"torn_write": {"fraction": 1.5}}',
    ])
    def test_invalid_plans_are_rejected(self, text):
        with pytest.raises(faults.FaultError):
            faults.FaultPlan.parse(text)


# --------------------------------------------------------------------- #
# Crash isolation and supervised retry
# --------------------------------------------------------------------- #
class TestCrashRecovery:
    def test_killed_worker_is_restarted_and_job_retried(
            self, tmp_path, monkeypatch):
        """The acceptance path: SIGKILL mid-engine, then a clean rerun."""
        arm(monkeypatch, {"kill_worker": {"phase": "engine",
                                          "attempts": [0]}})
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1)
        try:
            job = finish(service, service.submit(dict(REFINE_PAYLOAD)))
            assert job.status == "done"
            assert job.attempts == 2
            names = event_names(job)
            assert "worker_crashed" in names
            assert "retrying" in names
            assert names.index("worker_crashed") < names.index("retrying")
            crash = next(e for e in job.events
                         if e["event"] == "worker_crashed")
            assert crash["reason"] == "crashed"
            assert "signal" in crash["exit"] or "exit" in crash["exit"]
            assert service.counters["worker_crashes"] == 1
            assert service.counters["worker_restarts"] == 1
            assert service.counters["retries"] == 1
            # the crash is visible on /metrics, labelled by reason
            exposition = obs_metrics.render()
            assert 'repro_worker_crashes_total{reason="crashed"} 1' \
                in exposition
            assert "repro_worker_restarts_total 1" in exposition
            # the result survived the crash and reached the store
            assert job.result is not None
            view = job.view()
            assert view["attempts"] == 2 and view["crashes"] == 1
        finally:
            service.shutdown()

    def test_crashing_on_every_attempt_fails_the_job(
            self, tmp_path, monkeypatch):
        arm(monkeypatch, {"kill_worker": {"phase": "start",
                                          "attempts": "all"}})
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1, max_retries=1)
        try:
            job = finish(service, service.submit(dict(REFINE_PAYLOAD)))
            assert job.status == "failed"
            assert job.attempts == 2  # max_retries=1 -> two attempts total
            assert "crashed" in job.error
            assert event_names(job).count("worker_crashed") == 2
        finally:
            service.shutdown()

    def test_stalled_worker_is_detected_and_replaced(
            self, tmp_path, monkeypatch):
        """Heartbeat silence, not just death, puts a worker down."""
        arm(monkeypatch, {"stall_worker": {"seconds": 30,
                                           "attempts": [0]}})
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1, heartbeat_timeout_seconds=1.0)
        try:
            job = finish(service, service.submit(dict(REFINE_PAYLOAD)))
            assert job.status == "done"
            crash = next(e for e in job.events
                         if e["event"] == "worker_crashed")
            assert crash["reason"] == "stalled"
            assert service.counters["worker_crashes"] == 1
        finally:
            service.shutdown()

    def test_hard_deadline_overrun_fails_without_retry(
            self, tmp_path, monkeypatch):
        """A worker blowing budget + grace is killed and NOT retried:
        a second attempt would burn another full budget the same way."""
        arm(monkeypatch, {"slow_solver": {"seconds": 30}})
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1,
                                 hard_deadline_grace_seconds=0.5)
        try:
            payload = dict(REFINE_PAYLOAD, budget_seconds=0.2)
            job = finish(service, service.submit(payload))
            assert job.status == "failed"
            assert job.attempts == 1
            assert "hard deadline" in job.error
            assert "retrying" not in event_names(job)
            assert service.counters["retries"] == 0
            crash = next(e for e in job.events
                         if e["event"] == "worker_crashed")
            assert crash["reason"] == "hard_timeout"
        finally:
            service.shutdown()


class TestGracefulDegradation:
    def test_crashing_backend_is_demoted_down_the_ladder(
            self, tmp_path, monkeypatch):
        """native crashes twice -> the job finishes on numpy."""
        arm(monkeypatch, {"kill_worker": {"phase": "start",
                                          "attempts": [0, 1]}})
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1)
        try:
            payload = {"benchmark": "running_example",
                       "approach": "monomorphism",
                       "solver_backend": "native", "budget_seconds": 20}
            job = finish(service, service.submit(payload))
            assert job.status == "done"
            demoted = next(e for e in job.events
                           if e["event"] == "backend_demoted")
            assert demoted["from"] == "native"
            assert demoted["to"] == "numpy"
            assert job.effective_backend == "numpy"
            assert job.view()["effective_backend"] == "numpy"
            assert service.counters["demotions"] == 1
            assert "repro_backend_demotions_total 1" in obs_metrics.render()
        finally:
            service.shutdown()

    def test_unspawnable_pool_degrades_to_in_thread_execution(
            self, tmp_path, monkeypatch):
        """If worker processes cannot start at all, the service keeps
        answering -- in-thread, flagged degraded on /healthz."""
        def refuse(self):
            raise procpool.WorkerStartError("fork refused (injected)")

        monkeypatch.setattr(procpool.ProcessWorker, "ensure", refuse)
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1)
        try:
            job = finish(service, service.submit(dict(REFINE_PAYLOAD)))
            assert job.status == "done"
            assert "degraded" in event_names(job)
            health = service.health()
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert 'repro_service_degraded 1' in obs_metrics.render()
        finally:
            service.shutdown()


# --------------------------------------------------------------------- #
# Drain, journal, recover (in-process)
# --------------------------------------------------------------------- #
class TestDrainAndRecover:
    def test_drain_finishes_inflight_journals_queued_then_recovers(
            self, tmp_path, monkeypatch):
        arm(monkeypatch, {"slow_solver": {"seconds": 1.5}})
        store_path = str(tmp_path / "results")
        service = MappingService(store_path=store_path, workers=1)
        try:
            running = service.submit(dict(REFINE_PAYLOAD, seed=11))
            deadline = time.monotonic() + 10
            while running.status != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            queued = service.submit(dict(REFINE_PAYLOAD, seed=12))
            assert queued.status == "queued"

            summary = service.drain(timeout=20)
            assert summary == {"journaled": 1, "running": []}
            assert running.status == "done"
            assert queued.status == "journaled"
            # the journal sits next to the store, outside the shard dir,
            # and carries the original payload
            journal = service.journal_path()
            assert journal == os.path.join(store_path, "journal.jsonl")
            entries = [json.loads(line) for line in open(journal)]
            assert len(entries) == 1
            assert entries[0]["payload"]["seed"] == 12
            # draining services refuse new work with a retry hint
            with pytest.raises(ServiceUnavailable) as excinfo:
                service.submit(dict(REFINE_PAYLOAD, seed=13))
            assert excinfo.value.retry_after > 0
            assert service.health()["status"] == "draining"
        finally:
            service.shutdown()

        # --- restart: a fresh service over the same store recovers ---
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reset()
        revived = MappingService(store_path=store_path, workers=1)
        try:
            assert revived.recover_journal() == 1
            assert not os.path.exists(journal)
            assert revived.counters["recovered"] == 1
            jobs = list(revived.jobs.values())
            assert len(jobs) == 1
            recovered = finish(revived, jobs[0])
            assert recovered.status == "done"
            assert recovered.request.seed == 12
        finally:
            revived.shutdown()

    def test_drain_without_store_cancels_queued_honestly(
            self, monkeypatch):
        arm(monkeypatch, {"slow_solver": {"seconds": 1.0}})
        service = MappingService(workers=1)
        try:
            running = service.submit(dict(REFINE_PAYLOAD, seed=21))
            deadline = time.monotonic() + 10
            while running.status != "running":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            queued = service.submit(dict(REFINE_PAYLOAD, seed=22))
            summary = service.drain(timeout=20)
            assert summary["journaled"] == 0
            assert queued.status == "cancelled"
            assert running.status == "done"
            assert service.journal_path() is None
        finally:
            service.shutdown()


# --------------------------------------------------------------------- #
# Torn writes and compaction
# --------------------------------------------------------------------- #
class TestTornWritesAndCompaction:
    def test_torn_write_is_skipped_on_load_and_healed_by_compact(
            self, tmp_path, monkeypatch):
        path = str(tmp_path / "results")
        arm(monkeypatch, {"torn_write": {"times": 1, "fraction": 0.4}})
        torn_key = content_key({"n": "torn"})
        ResultStore(path).put(torn_key, {"value": "lost"})
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reset()
        store = ResultStore(path)
        good_key = content_key({"n": "good"})
        store.put(good_key, {"value": "kept"})

        reloaded = ResultStore(path)
        assert reloaded.get(torn_key) is None  # torn line never loads
        assert reloaded.get(good_key)["value"] == "kept"
        assert reloaded.stats()["skipped_lines"] == 1

        summary = reloaded.compact()
        assert summary["dropped_lines"] == 1
        assert summary["records"] == 1
        healed = ResultStore(path)
        assert healed.stats()["skipped_lines"] == 0
        assert len(healed) == 1

    def test_compact_preserves_live_lines_byte_identically(self, tmp_path):
        path = str(tmp_path / "results")
        store = ResultStore(path, header={"writer": "test"})
        key_a = content_key({"n": "a"})
        key_b = content_key({"n": "b"})
        store.put(key_a, {"value": 1})
        store.put(key_a, {"value": 2})  # supersedes value 1
        store.put(key_b, {"value": 3})
        # capture the exact bytes of every live line before compaction
        live = {}
        for shard in sorted(
                os.listdir(os.path.join(path, "shards"))):
            for line in open(os.path.join(path, "shards", shard)):
                record = json.loads(line)
                if "key" in record:
                    live[record["key"]] = line

        fresh = ResultStore(path)
        summary = fresh.compact()
        assert summary["dropped_lines"] == 1  # the superseded value 1
        assert summary["records"] == 2
        after = []
        for shard in sorted(
                os.listdir(os.path.join(path, "shards"))):
            after.extend(
                open(os.path.join(path, "shards", shard)).readlines())
        for key in (key_a, key_b):
            assert live[key] in after  # byte-identical survival
        assert ResultStore(path).get(key_a)["value"] == 2
        # a clean store is not rewritten again
        again = ResultStore(path).compact()
        assert again["rewritten"] == 0 and again["dropped_lines"] == 0

    def test_store_size_is_reported(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        assert store.stats()["size_bytes"] == 0
        store.put(content_key({"n": 1}), {"value": 1})
        assert store.stats()["size_bytes"] > 0


# --------------------------------------------------------------------- #
# Client resilience
# --------------------------------------------------------------------- #
class _FlakyHandler(BaseHTTPRequestHandler):
    """Answers 500 to the first N requests, then a healthy /healthz."""

    failures = 2
    calls = 0

    def do_GET(self):  # noqa: N802
        cls = type(self)
        cls.calls += 1
        if cls.calls <= cls.failures:
            body = json.dumps(
                {"error": {"code": "internal", "message": "flaky"}}
            ).encode()
            self.send_response(500)
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence
        pass


class TestClientResilience:
    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:1", retries=0,
                               timeout=0.5)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert excinfo.value.code == "unreachable"
        assert excinfo.value.retryable

    def test_idempotent_request_retries_through_transient_5xx(self):
        class Handler(_FlakyHandler):
            failures = 2
            calls = 0

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            client = ServiceClient(f"http://127.0.0.1:{port}", retries=3,
                                   backoff_seconds=0.01,
                                   backoff_cap_seconds=0.05)
            assert client.health() == {"status": "ok"}
            assert Handler.calls == 3  # two failures + the success
        finally:
            server.shutdown()
            server.server_close()

    def test_retries_exhausted_surfaces_the_server_error(self):
        class Handler(_FlakyHandler):
            failures = 10 ** 6
            calls = 0

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            port = server.server_address[1]
            client = ServiceClient(f"http://127.0.0.1:{port}", retries=1,
                                   backoff_seconds=0.01,
                                   backoff_cap_seconds=0.02)
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            assert excinfo.value.status == 500
            assert Handler.calls == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_wait_deadline_bounds_a_hung_server(self):
        """wait(timeout=1) must give up in ~1s even though the socket
        timeout is 30s: the overall deadline caps each poll."""
        with socketserver.TCPServer(("127.0.0.1", 0),
                                    socketserver.BaseRequestHandler) as sink:
            # accept connections, never answer
            port = sink.server_address[1]
            threading.Thread(target=sink.serve_forever, daemon=True).start()
            client = ServiceClient(f"http://127.0.0.1:{port}",
                                   timeout=30.0, retries=0)
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                client.wait("j000001", timeout=1.0)
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"wait hung for {elapsed:.1f}s"
            sink.shutdown()

    def test_draining_service_answers_503_with_retry_after(self, tmp_path):
        service = MappingService(store_path=str(tmp_path / "results"),
                                 workers=1)
        server = create_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            port = server.server_address[1]
            client = ServiceClient(f"http://127.0.0.1:{port}", retries=0)
            service.begin_drain()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(dict(REFINE_PAYLOAD))
            assert excinfo.value.status == 503
            assert excinfo.value.code == "draining"
            assert excinfo.value.retryable
            # reads still work while draining
            assert client.health()["status"] == "draining"
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown()


# --------------------------------------------------------------------- #
# The daemon end to end: SIGTERM, journal, restart
# --------------------------------------------------------------------- #
def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _start_daemon(port, store, extra_env=None, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    env.pop(faults.ENV_VAR, None)
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service.cli", "start",
         "--port", str(port), "--store", store, "--workers", "1",
         "--quiet", *extra_args],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


class TestDaemonLifecycle:
    def test_sigterm_drains_journals_and_restart_recovers(self, tmp_path):
        """The full acceptance round trip against a real daemon."""
        store = str(tmp_path / "store")
        port = _free_port()
        slow = json.dumps({"slow_solver": {"seconds": 2.0}})
        proc = _start_daemon(port, store, {faults.ENV_VAR: slow},
                             "--drain-timeout", "30")
        client = ServiceClient(f"http://127.0.0.1:{port}", retries=8)
        try:
            assert client.health()["execution"] == "process"
            inflight = client.submit(dict(REFINE_PAYLOAD, seed=31))
            deadline = time.monotonic() + 15
            while client.job(inflight["id"])["status"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            queued = client.submit(dict(REFINE_PAYLOAD, seed=32))

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        output = proc.stdout.read()
        assert "journaled 1 queued job(s)" in output

        journal = os.path.join(store, "journal.jsonl")
        entries = [json.loads(line) for line in open(journal)]
        assert [e["payload"]["seed"] for e in entries] == [32]
        # the in-flight job finished during the drain and was stored
        assert len(ResultStore(store, writable=False)) == 1

        port2 = _free_port()
        proc2 = _start_daemon(port2, store)
        client2 = ServiceClient(f"http://127.0.0.1:{port2}", retries=8)
        try:
            jobs = client2.jobs()["jobs"]
            assert len(jobs) == 1  # the recovered submission
            done = client2.wait(jobs[0]["id"], timeout=90)
            assert done["status"] == "done"
            assert not os.path.exists(journal)
            # the drained job's payload is now a synchronous store hit
            hit = client2.submit(dict(REFINE_PAYLOAD, seed=31))
            assert hit["status"] == "done"
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=60) == 0
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

    def test_daemon_survives_a_worker_kill_and_answers(self, tmp_path):
        store = str(tmp_path / "store")
        port = _free_port()
        kill = json.dumps({"kill_worker": {"phase": "engine",
                                           "attempts": [0]}})
        proc = _start_daemon(port, store, {faults.ENV_VAR: kill})
        client = ServiceClient(f"http://127.0.0.1:{port}", retries=8)
        try:
            job = client.submit(dict(REFINE_PAYLOAD, seed=41))
            done = client.wait(job["id"], timeout=90)
            assert done["status"] == "done"
            assert done["attempts"] == 2
            assert 'repro_worker_crashes_total{reason="crashed"} 1' \
                in client.metrics()
            assert client.health()["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
