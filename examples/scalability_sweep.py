#!/usr/bin/env python3
"""Scalability sweep (a small-scale version of the paper's Fig. 5).

Maps one benchmark onto increasingly large CGRAs with both the decoupled
monomorphism mapper and the SAT-MapIt-style coupled baseline, and prints the
compilation times side by side. The decoupled times stay roughly flat while
the coupled times grow quickly with the array size -- the paper's headline
scalability result.

Run with::

    python examples/scalability_sweep.py [benchmark] [timeout_seconds]
"""

import sys

from repro.experiments.fig5 import fig5_table, run_fig5
from repro.reporting.figures import render_line_chart


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "fft"
    timeout = float(sys.argv[2]) if len(sys.argv) > 2 else 20.0
    sizes = ["2x2", "4x4", "6x6", "8x8"]

    print(f"benchmark: {benchmark}, sizes: {', '.join(sizes)}, "
          f"timeout per case: {timeout:.0f}s")
    data = run_fig5(benchmark=benchmark, sizes=sizes, timeout_seconds=timeout)
    print()
    print(fig5_table(data).render())
    print()
    measured_only = data["series"][:2]  # skip the paper series for odd sizes
    print(render_line_chart(
        measured_only,
        title=f"compilation time vs CGRA size ({benchmark})",
    ))


if __name__ == "__main__":
    main()
