#!/usr/bin/env python3
"""The paper's running example, end to end (Fig. 2, Fig. 3, Fig. 4, Tables I-II).

Reconstructs the 14-node DFG of Fig. 2a, prints its ASAP/ALAP/Mobility
Schedule (Table I) and Kernel Mobility Schedule (Table II), builds the MRRG
of a 2x2 CGRA with II=4 (Fig. 3), maps the DFG with the decoupled mapper
(Fig. 2b / Fig. 4) and finally validates the mapping functionally on the
cycle-level simulator.

Run with::

    python examples/running_example.py
"""

from repro import CGRA, MapperConfig, MonomorphismMapper, running_example_dfg
from repro.arch.mrrg import MRRG
from repro.experiments.table1_table2 import build_table1, build_table2, summary_lines
from repro.sim.executor import run_and_compare


def main() -> None:
    dfg = running_example_dfg()
    print(f"running example: {dfg.num_nodes} nodes, "
          f"{len(dfg.data_edges())} data edges, "
          f"{len(dfg.loop_carried_edges())} loop-carried edges\n")

    # Table I and the mII derivation.
    print(build_table1().render())
    print()
    for line in summary_lines():
        print(line)
    print()

    # Table II: the KMS for II = 4.
    print(build_table2(ii=4).render())
    print()

    # Fig. 3: the MRRG of a 2x2 CGRA with II = 4.
    cgra = CGRA(2, 2)
    mrrg = MRRG(cgra, ii=4)
    print(mrrg.describe())
    print(f"per-slot capacity: {mrrg.capacity_per_slot()}, "
          f"connectivity degree D_M = {mrrg.connectivity_degree}\n")

    # Fig. 2b / Fig. 4: the mapping found by the decoupled mapper.
    result = MonomorphismMapper(cgra, MapperConfig(total_timeout_seconds=30)).map(dfg)
    print("mapping:", result.summary())
    mapping = result.mapping
    print()
    print(mapping.render_kernel())
    print(f"\nprologue: {mapping.prologue_cycles()} cycles, "
          f"kernel: II={mapping.ii}, epilogue: {mapping.epilogue_cycles()} cycles")

    # Functional validation: software-pipelined execution == sequential run.
    run_and_compare(mapping, iterations=12)
    print("\nsimulation: mapped execution matches the sequential reference "
          "over 12 iterations")


if __name__ == "__main__":
    main()
