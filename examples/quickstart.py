#!/usr/bin/env python3
"""Quickstart: map a benchmark loop onto a CGRA and inspect the result.

Run with::

    python examples/quickstart.py
"""

from repro import CGRA, MapperConfig, MonomorphismMapper, load_benchmark
from repro.core.validation import validate_mapping


def main() -> None:
    # The loop to accelerate: one of the paper's MiBench benchmarks
    # (a synthetic stand-in with the same node count and RecII).
    dfg = load_benchmark("crc32")
    print(f"DFG {dfg.name!r}: {dfg.num_nodes} nodes, {dfg.num_edges} edges, "
          f"{len(dfg.loop_carried_edges())} loop-carried dependences")

    # The target: a 4x4 CGRA with the paper's torus interconnect.
    cgra = CGRA(4, 4)
    print(f"target: {cgra} ({cgra.num_pes} PEs, D_M={cgra.connectivity_degree})")

    # The mapper: time phase (SAT modulo scheduling), then space phase
    # (monomorphism of the labelled DFG into the MRRG).
    mapper = MonomorphismMapper(cgra, MapperConfig(total_timeout_seconds=60))
    result = mapper.map(dfg)
    print("\nresult:", result.summary())

    mapping = result.mapping
    print("\nkernel configuration (one row per slot, one column per PE):")
    print(mapping.render_kernel())

    print("\nmapping statistics:")
    for key, value in mapping.stats().items():
        print(f"  {key}: {value}")

    violations = validate_mapping(mapping)
    print("\nvalidation:", "OK" if not violations else violations)

    cycles = mapping.total_cycles(iterations=100)
    print(f"\n100 loop iterations execute in {cycles} cycles "
          f"(II={mapping.ii}, schedule length {mapping.schedule_length})")


if __name__ == "__main__":
    main()
