#!/usr/bin/env python3
"""Exploring architecture variants with the same mapper.

The mapper is parametric in the CGRA description, so architectural questions
("does an open mesh hurt mappability?", "how much does the neighbour-readable
register file matter?") can be answered by re-running the same flow with a
different :class:`repro.CGRA` or :class:`repro.MapperConfig`. This example
compares, for a handful of benchmarks:

* the paper's torus interconnect vs an open mesh,
* the all-pairs MRRG time adjacency (neighbour register files stay readable)
  vs the classic consecutive-slot-only MRRG,
* two *heterogeneous* fabrics from the declarative arch-spec presets
  (memory-capable column, mul-sparse checkerboard).

Run with::

    python examples/custom_architecture.py
"""

from repro import CGRA, MapperConfig, MonomorphismMapper, Topology, TimeAdjacency
from repro.arch.spec import build_preset
from repro.reporting.tables import Table, format_seconds
from repro.workloads import load_benchmark

BENCHMARKS = ["bitcount", "susan", "fft", "crc32"]
TIMEOUT = 20.0


def run_variant(name, cgra, config):
    rows = []
    mapper = MonomorphismMapper(cgra, config)
    for benchmark in BENCHMARKS:
        result = mapper.map(load_benchmark(benchmark))
        rows.append((benchmark, name, result))
    return rows


def main() -> None:
    variants = [
        (
            "torus / all-pairs (paper)",
            CGRA(4, 4, topology=Topology.TORUS),
            MapperConfig(total_timeout_seconds=TIMEOUT),
        ),
        (
            "open mesh / all-pairs",
            CGRA(4, 4, topology=Topology.MESH),
            MapperConfig(total_timeout_seconds=TIMEOUT),
        ),
        (
            "torus / consecutive-only MRRG",
            CGRA(4, 4, topology=Topology.TORUS),
            MapperConfig(total_timeout_seconds=TIMEOUT,
                         time_adjacency=TimeAdjacency.CONSECUTIVE),
        ),
        (
            "memory-column mesh (heterogeneous)",
            build_preset("memory_column_mesh", 4, 4).build(),
            MapperConfig(total_timeout_seconds=TIMEOUT),
        ),
        (
            "mul-sparse checkerboard (heterogeneous)",
            build_preset("mul_sparse_checkerboard", 4, 4).build(),
            MapperConfig(total_timeout_seconds=TIMEOUT),
        ),
    ]

    table = Table(
        headers=["Benchmark", "Architecture variant", "Status", "II", "mII",
                 "Total time"],
        title="Mapping quality across architecture variants (4x4 CGRA)",
    )
    for name, cgra, config in variants:
        print(f"running variant: {name} "
              f"(uniform degree: {cgra.has_uniform_degree})")
        for benchmark, variant_name, result in run_variant(name, cgra, config):
            table.add_row(
                benchmark,
                variant_name,
                result.status.value,
                result.ii,
                result.mii,
                format_seconds(result.total_seconds),
            )
    print()
    print(table.render())
    print(
        "\nNote: with the consecutive-only MRRG a dependence must be consumed"
        "\non the very next slot, so some schedules that the paper's"
        "\narchitecture accepts become unplaceable and the mapper falls back"
        "\nto a larger II (or fails) -- this is exactly the architectural"
        "\nrestriction the paper lifts with neighbour-readable register files."
    )


if __name__ == "__main__":
    main()
