#!/usr/bin/env python3
"""Full flow from loop source code to validated CGRA execution.

This is the flow the paper assumes in front of its mapper (there, LLVM IR of
a pragma-annotated loop): parse a C-like loop kernel, extract its DFG
(including loop-carried dependencies through the accumulator), map it onto a
CGRA, and execute the mapping cycle by cycle against real input data,
comparing the result with a plain sequential interpretation.

Run with::

    python examples/kernel_from_source.py
"""

from repro import CGRA, MapperConfig, MonomorphismMapper
from repro.frontend import extract_dfg
from repro.sim.executor import MappedLoopExecutor
from repro.sim.machine import DataMemory
from repro.sim.reference import ReferenceInterpreter

KERNEL_SOURCE = """
    # Dot product with saturation, written in the bundled kernel language.
    array a[32];
    array b[32];
    acc sum = 0;
    for i in 0..32 {
        x = load(a, i);
        y = load(b, i);
        product = x * y;
        sum = min(sum + product, 100000);
    }
"""


def main() -> None:
    # 1. Front end: source text -> DFG with loop-carried dependencies.
    program = extract_dfg(KERNEL_SOURCE, name="saturating_dot")
    dfg = program.dfg
    print(f"extracted DFG: {dfg.num_nodes} nodes, {dfg.num_edges} edges")
    print(f"arrays: {program.arrays}, accumulators: {program.accumulators}")

    # 2. Mapper: decoupled time + space search on a 3x3 CGRA.
    cgra = CGRA(3, 3)
    result = MonomorphismMapper(cgra, MapperConfig(total_timeout_seconds=30)).map(dfg)
    print("\nmapping:", result.summary())
    mapping = result.mapping
    print(mapping.render_kernel())

    # 3. Simulation with concrete data.
    iterations = 16
    memory = DataMemory()
    memory.declare("a", 32, [3 * i + 1 for i in range(32)])
    memory.declare("b", 32, [(7 * i) % 11 for i in range(32)])

    executor = MappedLoopExecutor(
        mapping, memory=memory.copy(), initial_values=program.initial_values
    )
    mapped_trace = executor.run(iterations)

    reference = ReferenceInterpreter(
        dfg, memory=memory.copy(), initial_values=program.initial_values
    )
    reference_trace = reference.run(iterations)

    accumulator_node = program.outputs["sum"]
    mapped_sum = mapped_trace.last_value(accumulator_node)
    reference_sum = reference_trace.last_value(accumulator_node)
    expected = 0
    a = [3 * i + 1 for i in range(32)]
    b = [(7 * i) % 11 for i in range(32)]
    for i in range(iterations):
        expected = min(expected + a[i] * b[i], 100000)

    print(f"\nafter {iterations} iterations:")
    print(f"  CGRA (software pipelined, II={mapping.ii}): sum = {mapped_sum}")
    print(f"  sequential reference:                      sum = {reference_sum}")
    print(f"  hand-computed expectation:                 sum = {expected}")
    assert mapped_sum == reference_sum == expected
    print("\nall three agree.")


if __name__ == "__main__":
    main()
