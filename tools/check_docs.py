#!/usr/bin/env python
"""Documentation consistency checker (run by CI's docs job).

Two families of checks over ``README.md`` and ``docs/*.md``:

1. **Dead links** -- every relative markdown link target must exist in
   the repository (anchors are stripped; external ``http(s)``/``mailto``
   links and GitHub-web-relative links that escape the repo are skipped).

2. **CLI drift** -- the docs and the actual parsers must agree:

   * every ``repro-map`` / ``repro-serve`` subcommand must be mentioned
     (as ``repro-map <sub>``) somewhere in the docs, so a new subcommand
     ships documented;
   * every documented command example may only use subcommands and flags
     the parsers actually accept, so a removed or renamed flag fails CI
     instead of rotting in the docs. The forwarded experiment drivers
     (``table3``, ``fig5``, ...) keep their parsers inline in their
     ``main()``; their flag sets are recovered by scanning the driver
     sources for ``add_argument("--...")`` literals.

Exit status 0 when clean; 1 with one line per finding otherwise. The
tier-1 suite runs the same checks through ``tests/test_docs.py``.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List, Set, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: documentation files under the drift contract
DOC_GLOBS = ("README.md", "docs")

#: repro-map subcommands whose parsers live inline in experiment drivers
FORWARDED_DRIVERS = {
    "table3": "src/repro/experiments/table3.py",
    "fig5": "src/repro/experiments/fig5.py",
    "ablation": "src/repro/experiments/ablation.py",
    "archsweep": "src/repro/experiments/arch_sweep.py",
    "optsweep": "src/repro/experiments/opt_sweep.py",
    "table1": "src/repro/experiments/table1_table2.py",
}

#: flags argparse provides on every parser
ALWAYS_OK_FLAGS = {"-h", "--help", "--version"}

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_ADD_ARGUMENT_RE = re.compile(r"""add_argument\(\s*['"](--?[\w-]+)['"]""")


def doc_files() -> List[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            files.append(os.path.join(docs_dir, name))
    return files


# --------------------------------------------------------------------- #
# Check 1: relative links resolve
# --------------------------------------------------------------------- #
def check_links(paths: List[str]) -> List[str]:
    problems = []
    for path in paths:
        path = os.path.abspath(path)
        base = os.path.dirname(path)
        # a doc's links may climb to its repository root but not above it
        # (a link that escapes -- like a README CI badge's ../../actions
        # path -- is GitHub-web-relative, not a repository file)
        root = REPO_ROOT if path.startswith(REPO_ROOT) else base
        rel_name = os.path.relpath(path, REPO_ROOT)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not resolved.startswith(root):
                # GitHub-web-relative (e.g. the CI badge's ../../actions
                # link): not a repository file, nothing to check
                continue
            if not os.path.exists(resolved):
                problems.append(
                    f"{rel_name}: dead link -> {target}")
    return problems


# --------------------------------------------------------------------- #
# Check 2: CLI surface vs documented commands
# --------------------------------------------------------------------- #
def _walk_parser(parser) -> Dict[str, Set[str]]:
    """``{subcommand: accepted flags}`` for an argparse parser tree.

    Nested subparsers (``repro-map arch show``) fold their flags into
    the parent subcommand's set -- docs address them by the top-level
    subcommand.
    """
    import argparse

    surface: Dict[str, Set[str]] = {}

    def flags_of(p, into: Set[str]) -> None:
        for action in p._actions:
            into.update(action.option_strings)
            if isinstance(action, argparse._SubParsersAction):
                for child in action.choices.values():
                    flags_of(child, into)

    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                flags = surface.setdefault(name, set())
                flags_of(sub, flags)
    return surface


def _forwarded_flags() -> Dict[str, Set[str]]:
    """Flag sets of the drivers whose parsers are inline in main()."""
    surface: Dict[str, Set[str]] = {}
    for name, rel_path in FORWARDED_DRIVERS.items():
        with open(os.path.join(REPO_ROOT, rel_path),
                  encoding="utf-8") as handle:
            source = handle.read()
        surface[name] = set(_ADD_ARGUMENT_RE.findall(source))
    return surface


def cli_surfaces() -> Dict[str, Dict[str, Set[str]]]:
    """``{prog: {subcommand: flags}}`` for both console scripts."""
    from repro.cli import build_parser as map_parser
    from repro.service.cli import build_parser as serve_parser

    repro_map = _walk_parser(map_parser())
    for name, flags in _forwarded_flags().items():
        repro_map.setdefault(name, set()).update(flags)
    return {
        "repro-map": repro_map,
        "repro-serve": _walk_parser(serve_parser()),
    }


_PROG_RE = re.compile(r"\b(repro-map|repro-serve)\s+(\S+)")


def _documented_commands(paths: List[str]) -> List[Tuple[str, str, str, List[str]]]:
    """Every ``(file:line, prog, subcommand, flags)`` the docs mention.

    Handles backslash continuation lines, strips markdown/inline-code
    punctuation, and ignores prose mentions of the bare program name.
    """
    mentions = []
    for path in paths:
        rel_name = os.path.relpath(path, REPO_ROOT)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # join shell continuation lines so a wrapped example is one command
        joined: List[Tuple[int, str]] = []
        buffer, start = "", 0
        for number, line in enumerate(lines, 1):
            if buffer:
                buffer = buffer.rstrip("\\") + " " + line.strip()
            else:
                buffer, start = line, number
            if buffer.rstrip().endswith("\\"):
                continue
            joined.append((start, buffer))
            buffer = ""
        if buffer:
            joined.append((start, buffer))

        for number, line in joined:
            for match in _PROG_RE.finditer(line):
                prog = match.group(1)
                rest = line[match.end(1):]
                tokens = [t.strip("`'\",()|;.") for t in rest.split()]
                tokens = [t for t in tokens if t]
                if not tokens or tokens[0].startswith("-"):
                    # bare mention or a global flag like --help
                    continue
                sub = tokens[0]
                if not re.fullmatch(r"[a-z][a-z0-9_-]*", sub):
                    continue  # prose ("repro-map is ..."), not a command
                flags = []
                for token in tokens[1:]:
                    if token in ("&&", "||", "|", "&", ">", ">>", "<"):
                        break
                    if token.startswith("--"):
                        flags.append(token.split("=", 1)[0])
                mentions.append((f"{rel_name}:{number}", prog, sub, flags))
    return mentions


def check_cli_drift(paths: List[str]) -> List[str]:
    problems = []
    surfaces = cli_surfaces()
    mentions = _documented_commands(paths)

    # every real subcommand must be documented somewhere
    documented: Dict[str, Set[str]] = {prog: set() for prog in surfaces}
    for _, prog, sub, _ in mentions:
        documented[prog].add(sub)
    for prog, surface in surfaces.items():
        for sub in sorted(set(surface) - documented[prog]):
            problems.append(
                f"docs never mention `{prog} {sub}` -- document the "
                "subcommand or remove it")

    # every documented example must use real subcommands and flags
    for where, prog, sub, flags in mentions:
        surface = surfaces[prog]
        if sub not in surface:
            problems.append(
                f"{where}: `{prog} {sub}` is not a {prog} subcommand")
            continue
        for flag in flags:
            if flag not in surface[sub] and flag not in ALWAYS_OK_FLAGS:
                problems.append(
                    f"{where}: `{prog} {sub}` does not accept {flag}")
    return problems


def main() -> int:
    paths = doc_files()
    problems = check_links(paths) + check_cli_drift(paths)
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print(f"docs ok: {len(paths)} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.exit(main())
