#!/usr/bin/env python
"""Perf-regression sentinel over the ``BENCH_*.json`` artifacts.

Every benchmark suite appends a per-commit record to its artifact's
``history`` list (see :mod:`repro.perf.history`). This tool is the CI
gate over that trajectory: for each measurement label it compares the
latest entry against the previous one and fails when a tracked metric
moved the wrong way past the tolerance band -- ``speedup`` metrics
regress by dropping, ``*overhead*``/``*seconds*`` metrics by rising.

A label with a single history entry has no baseline yet and passes
vacuously; so does an artifact with no history at all (the heuristic
and opt suites only started recording trajectories recently).

Deliberate trade-offs are recorded, not fought::

    python tools/check_bench.py --bless native-vs-arena

marks the label's newest entry ``"blessed": true`` in every artifact
that carries it: the sentinel accepts that entry and it becomes the
baseline the next commit is judged against.

Exit status 0 when clean; 1 with one line per regression otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.perf import history as perf_history  # noqa: E402


def default_artifacts() -> List[pathlib.Path]:
    root = pathlib.Path(__file__).resolve().parent.parent
    return sorted(root.glob("BENCH_*.json"))


def check_artifact(path: pathlib.Path, tolerance: float,
                   overhead_floor: float) -> List[str]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable artifact: {exc}"]
    if not isinstance(data, dict):
        return [f"{path.name}: not a JSON object"]
    history = data.get("history")
    if not isinstance(history, list) or not history:
        print(f"{path.name}: no history yet (nothing to judge)")
        return []
    findings, comparisons = perf_history.compare_history(
        history, tolerance=tolerance, overhead_floor=overhead_floor)
    labels = {e.get("label") for e in history if isinstance(e, dict)}
    print(f"{path.name}: {len(labels)} label(s), "
          f"{comparisons} metric comparison(s)")
    lines = []
    for finding in findings:
        lines.append(
            "{name}: {label}/{metric} regressed {pct:+.1%} "
            "({previous:g} -> {latest:g}, {dir}-is-better; "
            "baseline {sha})".format(
                name=path.name, label=finding["label"],
                metric=finding["metric"], pct=finding["change"],
                previous=finding["previous"], latest=finding["latest"],
                dir=finding["direction"],
                sha=(finding["previous_sha"] or "unknown")[:12]))
    return lines


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="*", metavar="FILE",
                        help="BENCH_*.json artifact(s) to check "
                             "(default: every BENCH_*.json in the repo "
                             "root)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative band a tracked metric may move "
                             "the wrong way before the sentinel fails "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--overhead-floor", type=float,
                        default=perf_history.OVERHEAD_NOISE_FLOOR,
                        help="lower-is-better metrics below this "
                             "absolute value are treated as noise and "
                             "never flagged")
    parser.add_argument("--bless", metavar="LABEL",
                        help="accept LABEL's newest history entry as a "
                             "deliberate trade-off (writes "
                             "'blessed': true into the artifact) "
                             "instead of checking")
    args = parser.parse_args(argv)

    paths = [pathlib.Path(p) for p in args.artifacts] or default_artifacts()
    if not paths:
        print("no BENCH_*.json artifacts found")
        return 1

    if args.bless:
        blessed = [p.name for p in paths
                   if perf_history.bless_latest(p, args.bless)]
        if not blessed:
            print(f"label {args.bless!r} not found in any artifact")
            return 1
        print(f"blessed {args.bless!r} in: {', '.join(blessed)}")
        return 0

    findings: List[str] = []
    for path in paths:
        findings.extend(check_artifact(
            path, args.tolerance, args.overhead_floor))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} regression(s); re-run the bench, or "
              f"bless a deliberate trade-off with --bless LABEL")
        return 1
    print(f"perf history ok ({len(paths)} artifact(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
