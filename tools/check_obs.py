#!/usr/bin/env python
"""Observability artifact checker (run by CI's obs-smoke job).

Schema-validates the two machine-readable artifacts the observability
layer exports, so a malformed trace or exposition fails CI instead of
failing the first person who opens it in Perfetto or points a Prometheus
scrape at the daemon:

* ``--trace FILE`` -- a Chrome trace-event JSON file written by
  ``repro-map map --trace`` or the daemon's ``--trace-dir``: the
  ``traceEvents`` envelope, per-phase required fields (``ph:"X"``
  complete events carry numeric ``ts``/``dur``, instants carry a scope),
  and referential integrity -- every ``parent_id`` must resolve to a
  ``span_id`` present in the file (0 is "root"). ``--require-span NAME``
  (repeatable) additionally asserts a span of that name exists, which is
  how CI pins the merged daemon trace to
  ``http.handler -> queue.wait -> worker.run -> engine.map -> solver:*``.

* ``--metrics FILE`` -- a Prometheus text exposition as served by
  ``GET /metrics``: every line must parse under the text-format grammar,
  ``HELP``/``TYPE`` appear at most once per family with a known type,
  and at least ``--min-names`` distinct families are typed (the daemon
  advertises its full inventory up front).

* ``--propagation`` -- distributed-trace correlation invariants across
  every ``--trace`` and ``--ndjson`` file given: each span/event that
  carries a ``trace_id`` carries the *same* one (one remote map = one
  trace id end to end, including across a crash + retry), at least one
  id is present at all, and parent ids still resolve -- which holds
  across process boundaries precisely because worker-child spans are
  re-rooted under the parent's ``worker.run`` span on ingest.
  ``--ndjson FILE`` adds a JSON-lines file (a job's NDJSON event stream,
  or a ``--log-json`` run log filtered to one job) to the same check.

Exit status 0 when clean; 1 with one line per finding otherwise. The
tier-1 suite exercises the same invariants through ``tests/test_obs.py``.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(?: [0-9.e+-]+)?$'
)
COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

VALID_PHASES = {"X", "i", "M", "B", "E"}


def check_trace(path: str, required_spans: List[str]) -> List[str]:
    findings: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: not a Chrome trace (no traceEvents envelope)"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents is not a non-empty list"]

    span_ids = {0}
    names = set()
    for index, event in enumerate(events):
        where = f"{path}: traceEvents[{index}]"
        if not isinstance(event, dict):
            findings.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            findings.append(f"{where}: unknown phase {phase!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                findings.append(f"{where}: missing integer {field}")
        if not isinstance(event.get("name"), str):
            findings.append(f"{where}: missing name")
            continue
        if phase == "M":
            continue
        names.add(event["name"])
        if not isinstance(event.get("ts"), (int, float)):
            findings.append(f"{where}: {phase!r} event without numeric ts")
        if phase == "X":
            if not isinstance(event.get("dur"), (int, float)):
                findings.append(f"{where}: complete event without dur")
            elif event["dur"] < 0:
                findings.append(f"{where}: negative dur {event['dur']}")
            args = event.get("args") or {}
            if isinstance(args.get("span_id"), int):
                span_ids.add(args["span_id"])
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            findings.append(f"{where}: instant without a valid scope")

    for index, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        parent = (event.get("args") or {}).get("parent_id")
        if parent is not None and parent not in span_ids:
            findings.append(
                f"{path}: traceEvents[{index}]: parent_id {parent} does "
                f"not resolve to any span_id in the file"
            )

    if not any(isinstance(e, dict) and e.get("ph") == "M" for e in events):
        findings.append(f"{path}: no process_name metadata event")
    for wanted in required_spans:
        if wanted.endswith("*"):
            hit = any(n.startswith(wanted[:-1]) for n in names)
        else:
            hit = wanted in names
        if not hit:
            findings.append(f"{path}: required span {wanted!r} not found "
                            f"(spans: {sorted(names)})")
    return findings


def check_metrics(path: str, min_names: int) -> List[str]:
    findings: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"{path}: unreadable exposition: {exc}"]
    if not text.endswith("\n"):
        findings.append(f"{path}: exposition must end with a newline")

    seen_help = set()
    typed = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        where = f"{path}:{number}"
        if line.startswith("#"):
            match = COMMENT_RE.match(line)
            if match is None:
                findings.append(f"{where}: malformed comment line: {line!r}")
                continue
            kind, name = match.group(1), line.split()[2]
            family = seen_help if kind == "HELP" else typed
            if name in family:
                findings.append(f"{where}: duplicate # {kind} for {name}")
            if kind == "HELP":
                seen_help.add(name)
            else:
                metric_type = line.split()[3]
                if metric_type not in KNOWN_TYPES:
                    findings.append(
                        f"{where}: unknown metric type {metric_type!r}")
                typed[name] = metric_type
        elif SAMPLE_RE.match(line) is None:
            findings.append(f"{where}: malformed sample line: {line!r}")

    if len(typed) < min_names:
        findings.append(
            f"{path}: only {len(typed)} typed metric families "
            f"(expected >= {min_names}): {sorted(typed)}"
        )
    return findings


def check_propagation(trace_paths: List[str],
                      ndjson_paths: List[str]) -> List[str]:
    """One-trace-id-everywhere invariants across all given files."""
    findings: List[str] = []
    ids = {}  # trace_id -> first place it was seen

    for path in trace_paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            findings.append(f"{path}: unreadable trace: {exc}")
            continue
        events = doc.get("traceEvents") if isinstance(doc, dict) else None
        if not isinstance(events, list):
            findings.append(f"{path}: not a Chrome trace")
            continue
        stamped = 0
        for index, event in enumerate(events):
            if not isinstance(event, dict) or event.get("ph") == "M":
                continue
            trace_id = (event.get("args") or {}).get("trace_id")
            if not trace_id:
                continue
            stamped += 1
            ids.setdefault(trace_id, f"{path}: traceEvents[{index}]")
        if not stamped:
            findings.append(
                f"{path}: no span carries a trace_id (distributed "
                f"trace context was never propagated)")

    for path in ndjson_paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            findings.append(f"{path}: unreadable ndjson: {exc}")
            continue
        stamped = 0
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                findings.append(f"{path}:{number}: not valid JSON")
                continue
            trace_id = record.get("trace_id") \
                if isinstance(record, dict) else None
            if not trace_id:
                continue
            stamped += 1
            ids.setdefault(trace_id, f"{path}:{number}")
        if not stamped:
            findings.append(
                f"{path}: no record carries a trace_id")

    if len(ids) > 1:
        where = "; ".join(f"{tid} first at {place}"
                          for tid, place in sorted(ids.items()))
        findings.append(
            f"propagation: {len(ids)} distinct trace ids across the "
            f"given files, expected exactly one ({where})")
    return findings


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE",
                        help="Chrome trace JSON file(s) to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear in every --trace "
                             "file (trailing * matches a prefix)")
    parser.add_argument("--metrics", action="append", default=[],
                        metavar="FILE",
                        help="Prometheus exposition file(s) to validate")
    parser.add_argument("--min-names", type=int, default=12,
                        help="minimum typed metric families per exposition")
    parser.add_argument("--propagation", action="store_true",
                        help="additionally assert one shared trace_id "
                             "across every --trace and --ndjson file, "
                             "with parent ids resolving")
    parser.add_argument("--ndjson", action="append", default=[],
                        metavar="FILE",
                        help="JSON-lines file (job event stream or run "
                             "log) included in the --propagation check")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics and not args.ndjson:
        parser.error("nothing to check: pass --trace, --metrics and/or "
                     "--ndjson")
    if args.ndjson and not args.propagation:
        parser.error("--ndjson only participates in --propagation")

    findings: List[str] = []
    for path in args.trace:
        findings.extend(check_trace(path, args.require_span))
    for path in args.metrics:
        findings.extend(check_metrics(path, args.min_names))
    if args.propagation:
        findings.extend(check_propagation(args.trace, args.ndjson))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    checked = len(args.trace) + len(args.metrics) + len(args.ndjson)
    print(f"observability artifacts ok ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
