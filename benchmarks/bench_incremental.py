"""Micro-benchmarks of the incremental time-solver path and batch engine.

Two claims are asserted here (they are the acceptance criteria of the
incremental rework):

* on the schedule-enumeration workload -- an mII -> II sweep that asks for
  several schedules per II, exactly what the mapper does when the space
  phase rejects schedules -- the incremental path (one persistent
  encoding, scoped per-II constraints, warm activities/phases) is
  *strictly faster* than re-encoding a fresh :class:`TimeSolver` per II;
* the parallel batch engine produces results identical to the serial run.
"""

import time

from repro.arch.cgra import CGRA
from repro.core.time_solver import IncrementalTimeSolver, TimeSolver
from repro.experiments.batch import BatchRunner, build_cases
from repro.graphs.analysis import rec_ii, res_ii
from repro.workloads.suite import benchmark_names, load_benchmark

#: (benchmark, CGRA side, IIs beyond mII, schedules per II)
ENUMERATION_WORKLOAD = [
    ("gsm", 4, 4, 8),
    ("particlefilter", 5, 3, 6),
    ("crc32", 4, 4, 8),
    ("aes", 4, 3, 8),
    ("cfd", 5, 3, 6),
]


def _sweep_reencoding(dfg, cgra, iis, per_ii) -> int:
    produced = 0
    for ii in iis:
        solver = TimeSolver(dfg, cgra, ii)
        produced += sum(
            1 for _ in solver.iter_schedules(limit=per_ii, timeout_seconds=60)
        )
    return produced


def _sweep_incremental(dfg, cgra, iis, per_ii) -> int:
    produced = 0
    solver = IncrementalTimeSolver(dfg, cgra)
    for ii in iis:
        produced += sum(
            1 for _ in solver.iter_schedules(ii, limit=per_ii, timeout_seconds=60)
        )
    return produced


def _time_best_of(runs, fn, *args) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.monotonic()
        fn(*args)
        best = min(best, time.monotonic() - start)
    return best


def test_incremental_time_solver_beats_reencoding_on_enumeration():
    """The tentpole perf claim, measured on the enumeration workload."""
    total_reencode = 0.0
    total_incremental = 0.0
    for name, side, n_iis, per_ii in ENUMERATION_WORKLOAD:
        dfg = load_benchmark(name)
        cgra = CGRA(side, side)
        mii = max(res_ii(dfg, cgra.num_pes), rec_ii(dfg))
        iis = list(range(mii, mii + n_iis))
        # identical output first (the speed claim is meaningless otherwise)
        assert (_sweep_reencoding(dfg, cgra, iis, per_ii)
                == _sweep_incremental(dfg, cgra, iis, per_ii))
        total_reencode += _time_best_of(
            2, _sweep_reencoding, dfg, cgra, iis, per_ii)
        total_incremental += _time_best_of(
            2, _sweep_incremental, dfg, cgra, iis, per_ii)
    print(f"\nenumeration sweep: re-encoding {total_reencode:.3f}s, "
          f"incremental {total_incremental:.3f}s "
          f"({total_reencode / total_incremental:.2f}x)")
    assert total_incremental < total_reencode


def test_parallel_sweep_matches_serial_and_uses_the_pool():
    """BatchRunner: deterministic results, parallel speed on real cases."""
    cases = build_cases(benchmark_names(), ["4x4"], ["monomorphism"], 60.0)
    start = time.monotonic()
    serial = BatchRunner(jobs=1).run(cases)
    serial_seconds = time.monotonic() - start
    start = time.monotonic()
    parallel = BatchRunner(jobs=4).run(cases)
    parallel_seconds = time.monotonic() - start

    def signature(result):
        return (result.benchmark, result.cgra_size, result.approach,
                result.status, result.ii, result.mii)

    assert [signature(r) for r in serial.results] == [
        signature(r) for r in parallel.results
    ]
    assert serial.succeeded == len(cases)
    print(f"\n17-benchmark sweep: serial {serial_seconds:.2f}s, "
          f"jobs=4 {parallel_seconds:.2f}s")
