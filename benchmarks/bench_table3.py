"""Benchmarks regenerating paper Table III.

One benchmark case per (benchmark, CGRA size, approach). The measured value
is the compilation time of a single mapper run -- exactly what the paper's
Table III reports. The decoupled mapper is run on the two extreme sizes (2x2
and 20x20, the paper's smallest and largest arrays) for all 17 loops; the
coupled SAT-MapIt-style baseline is run on 2x2 and 5x5 for the loops it can
finish within the laptop-scale budget (on the larger arrays the coupled
formula explodes, which is the paper's point -- those cases are summarised by
``bench_fig5.py`` instead).

The II quality claim (decoupled == coupled where both finish) is asserted in
the baseline cases.
"""

import pytest

from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.baseline.satmapit import SatMapItMapper
from repro.experiments.runner import build_cgra
from repro.workloads.suite import benchmark_names, load_benchmark, spec

from conftest import BENCH_TIMEOUT_SECONDS

ALL_BENCHMARKS = benchmark_names()

#: Loops whose coupled (baseline) instance stays small enough for seconds-long
#: budgets; the remaining ones time out on every laptop-scale budget.
BASELINE_FRIENDLY = ["bitcount", "susan", "lud", "fft", "crc32", "sha1",
                     "gsm", "basicmath", "sha2", "stringsearch"]


def _decoupled_config() -> MapperConfig:
    return MapperConfig(
        time_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        space_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        total_timeout_seconds=BENCH_TIMEOUT_SECONDS,
    )


def _baseline_config() -> BaselineConfig:
    return BaselineConfig(
        timeout_seconds=BENCH_TIMEOUT_SECONDS,
        total_timeout_seconds=BENCH_TIMEOUT_SECONDS,
    )


@pytest.mark.parametrize("size", ["2x2", "20x20"])
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_monomorphism_mapper(benchmark, name, size):
    """Decoupled mapper compilation time (Table III 'Monomorphism' columns)."""
    dfg = load_benchmark(name)
    cgra = build_cgra(size)

    def compile_once():
        return MonomorphismMapper(cgra, _decoupled_config()).map(dfg)

    result = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["ii"] = result.ii
    benchmark.extra_info["mii"] = result.mii
    benchmark.extra_info["paper_ii"] = spec(name).paper_ii[size]
    if result.success:
        assert result.ii >= result.mii


@pytest.mark.parametrize("size", ["2x2", "5x5"])
@pytest.mark.parametrize("name", BASELINE_FRIENDLY)
def test_satmapit_baseline(benchmark, name, size):
    """Coupled baseline compilation time (Table III 'SAT-MapIt' column)."""
    dfg = load_benchmark(name)
    cgra = build_cgra(size)

    def compile_once():
        return SatMapItMapper(cgra, _baseline_config()).map(dfg)

    result = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["ii"] = result.ii
    if result.success:
        decoupled = MonomorphismMapper(cgra, _decoupled_config()).map(dfg)
        if decoupled.success:
            # the paper's quality-parity claim
            assert decoupled.ii <= result.ii
