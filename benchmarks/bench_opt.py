"""Benchmarks of the pre-mapping optimization pipeline (``repro.opt``).

Two claims are asserted here (the acceptance criteria of the opt rework):

* on the schedule-enumeration benchmark set of ``bench_incremental``,
  driven through the engine whose compilation time is search-dominated at
  laptop scale -- the coupled SAT-MapIt baseline, whose formula grows with
  ``nodes x II x PEs`` -- mapping at ``O2`` end to end (optimization and
  verification included) is no slower than at ``O0``: every node the
  passes erase is a node the encoding never contains (the decoupled
  mapper solves these cases in milliseconds either way, so a wall-clock
  comparison there measures noise, not solver work);
* for every built-in benchmark *and* every frontend kernel example, the
  ``O2`` mapping is validated and achieves an II no worse than ``O0``,
  with at least two benchmarks showing a measurable II or compile-time
  improvement.

The per-benchmark measurements are written to ``BENCH_opt.json`` at the
repository root as a machine-readable perf artifact.
"""

import pathlib
import time

from repro.arch.cgra import CGRA
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.frontend import EXAMPLE_KERNELS, extract_dfg
from repro.perf.history import update_artifact
from repro.workloads.suite import benchmark_names, load_benchmark

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_opt.json"

#: the schedule-enumeration benchmarks of bench_incremental, on the array
#: size where the coupled encoding's nodes x II x PEs growth bites
ENUMERATION_BENCHMARKS = ["gsm", "particlefilter", "crc32", "aes", "cfd"]
ENUMERATION_SIDE = 8

#: a compile-time ratio above this counts as a "measurable" improvement
SPEEDUP_THRESHOLD = 1.2


def _mono_config(opt_level, timeout):
    return MapperConfig(
        time_timeout_seconds=timeout,
        space_timeout_seconds=timeout,
        total_timeout_seconds=timeout,
        opt_level=opt_level,
    )


def _map_once(dfg, side, opt_level, timeout, baseline=False):
    cgra = CGRA(side, side)
    if baseline:
        mapper = SatMapItMapper(
            cgra, BaselineConfig(timeout_seconds=timeout, opt_level=opt_level)
        )
    else:
        mapper = MonomorphismMapper(cgra, _mono_config(opt_level, timeout))
    start = time.monotonic()
    result = mapper.map(dfg)
    elapsed = time.monotonic() - start
    assert result.success, f"{dfg.name} O{opt_level}: {result.summary()}"
    return result, elapsed


def _best_of(runs, dfg, side, opt_level, timeout, baseline=False):
    best = None
    result = None
    for _ in range(runs):
        result, elapsed = _map_once(dfg, side, opt_level, timeout,
                                    baseline=baseline)
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_o2_mapping_no_slower_than_o0_on_enumeration_benches(bench_timeout):
    """End-to-end O2 (opt time included) beats O0 where search dominates."""
    total_o0 = 0.0
    total_o2 = 0.0
    side = ENUMERATION_SIDE
    for name in ENUMERATION_BENCHMARKS:
        dfg = load_benchmark(name)
        base, base_seconds = _best_of(2, dfg, side, 0, bench_timeout,
                                      baseline=True)
        opt, opt_seconds = _best_of(2, dfg, side, 2, bench_timeout,
                                    baseline=True)
        assert opt.ii <= base.ii, name
        total_o0 += base_seconds
        total_o2 += opt_seconds
        print(f"\n{name}/{side}x{side}: O0 {base_seconds:.3f}s II={base.ii}, "
              f"O2 {opt_seconds:.3f}s II={opt.ii}")
    print(f"enumeration total: O0 {total_o0:.3f}s, O2 {total_o2:.3f}s "
          f"({total_o0 / total_o2:.2f}x)")
    assert total_o2 <= total_o0


def test_o2_never_worse_everywhere_and_emit_artifact(bench_timeout):
    """II(O2) <= II(O0) on every benchmark and kernel; artifact emitted."""
    records = []

    def measure(kind, name, dfg, side=4):
        base, base_seconds = _map_once(dfg, side, 0, bench_timeout)
        opt, opt_seconds = _map_once(dfg, side, 2, bench_timeout)
        assert opt.ii <= base.ii, name
        assert opt.mii <= base.mii, name
        records.append({
            "kind": kind,
            "name": name,
            "cgra": f"{side}x{side}",
            "nodes": base.mapping.dfg.num_nodes,
            "nodes_o2": opt.mapping.dfg.num_nodes,
            "ii_o0": base.ii,
            "ii_o2": opt.ii,
            "mii_o0": base.mii,
            "mii_o2": opt.mii,
            "seconds_o0": round(base_seconds, 6),
            "seconds_o2": round(opt_seconds, 6),
            "opt_seconds": round(opt.opt_seconds, 6),
        })

    for name in benchmark_names():
        measure("benchmark", name, load_benchmark(name))
    for name in sorted(EXAMPLE_KERNELS):
        measure("kernel", name, extract_dfg(EXAMPLE_KERNELS[name],
                                            name=name).dfg)

    improved = [
        r for r in records
        if r["kind"] == "benchmark" and (
            r["ii_o2"] < r["ii_o0"]
            or r["seconds_o0"] >= SPEEDUP_THRESHOLD * r["seconds_o2"]
        )
    ]
    artifact = {
        "workload": "all Table III benchmarks + frontend kernel examples",
        "threshold_speedup": SPEEDUP_THRESHOLD,
        "improved_benchmarks": [r["name"] for r in improved],
        "records": records,
    }
    update_artifact(ARTIFACT_PATH, artifact, {
        "label": "opt-o2-vs-o0",
        "backend_tier": "arena",
        "improved_benchmarks": [r["name"] for r in improved],
    })
    print(f"\n{len(improved)} benchmark(s) improved II or compile time at "
          f"O2: {', '.join(r['name'] for r in improved)}")
    print(f"perf artifact written to {ARTIFACT_PATH}")
    assert len(improved) >= 2
