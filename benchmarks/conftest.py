"""Configuration shared by the benchmark harness.

Every paper exhibit (Table I, Table II, Table III, Fig. 5) has a bench module
here; run them with::

    pytest benchmarks/ --benchmark-only

Each case is executed once (``pedantic`` mode) because a single mapper run is
already the quantity the paper reports; the per-case timeout keeps the whole
harness at laptop scale (the paper used a 4000 s budget per case).
"""

from __future__ import annotations

import pytest

#: Per-case compilation budget used throughout the harness (seconds).
BENCH_TIMEOUT_SECONDS = 12.0


@pytest.fixture(scope="session")
def bench_timeout() -> float:
    return BENCH_TIMEOUT_SECONDS
