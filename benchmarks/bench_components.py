"""Micro-benchmarks of the mapper's building blocks.

Not a paper exhibit, but useful to see where the compilation time goes:
time-phase encoding + SAT solving, MRRG construction, the monomorphism
search itself, and the cycle-level simulator.
"""


from repro.arch.cgra import CGRA
from repro.arch.mrrg import MRRG
from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.space_solver import SpaceSolver
from repro.core.time_solver import TimeSolver
from repro.sim.executor import MappedLoopExecutor
from repro.sim.reference import ReferenceInterpreter
from repro.workloads.suite import load_benchmark
from repro.workloads.running_example import running_example_dfg


def test_time_phase_encoding_and_solve(benchmark):
    """Time phase (SAT) for hotspot3D (57 nodes) on a 5x5 CGRA at mII."""
    dfg = load_benchmark("hotspot3D")
    cgra = CGRA(5, 5)

    def solve():
        return TimeSolver(dfg, cgra, ii=3).solve(timeout_seconds=30)

    schedule = benchmark(solve)
    assert schedule is not None


def test_space_phase_monomorphism_20x20(benchmark):
    """Monomorphism search into a 20x20 MRRG (6400 vertices)."""
    dfg = load_benchmark("particlefilter")
    cgra = CGRA(20, 20)
    schedule = TimeSolver(dfg, cgra, ii=9).solve(timeout_seconds=30)
    assert schedule is not None
    solver = SpaceSolver(cgra)

    def place():
        return solver.solve(schedule, timeout_seconds=30)

    result = benchmark(place)
    assert result.found


def test_mrrg_construction_and_degree(benchmark):
    """Implicit MRRG adjacency queries on the largest paper configuration."""

    def build():
        mrrg = MRRG(CGRA(20, 20), ii=16)
        return sum(1 for _ in mrrg.neighbors(mrrg.vertex(0, 0)))

    degree = benchmark(build)
    assert degree == 5 * 16 - 1


def test_full_mapper_running_example(benchmark):
    """Complete decoupled flow on the paper's running example (2x2, II=4)."""
    dfg = running_example_dfg()
    cgra = CGRA(2, 2)
    config = MapperConfig(total_timeout_seconds=20)

    def compile_once():
        return MonomorphismMapper(cgra, config).map(dfg)

    result = benchmark(compile_once)
    assert result.success and result.ii == 4


def test_cycle_level_simulation(benchmark):
    """Cycle-level execution of a mapped kernel for 64 iterations."""
    dfg = load_benchmark("crc32")
    result = MonomorphismMapper(CGRA(4, 4),
                                MapperConfig(total_timeout_seconds=20)).map(dfg)
    assert result.success

    def simulate():
        return MappedLoopExecutor(result.mapping).run(64)

    trace = benchmark(simulate)
    assert trace.iterations == 64


def test_reference_interpreter(benchmark):
    """Sequential reference interpretation for 64 iterations."""
    dfg = load_benchmark("crc32")

    def interpret():
        return ReferenceInterpreter(dfg).run(64)

    trace = benchmark(interpret)
    assert trace.iterations == 64
