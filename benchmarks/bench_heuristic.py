"""Quality/time benchmark of the anytime engine (``BENCH_heuristic.json``).

The claim asserted here is the acceptance criterion of the heuristic
subsystem: on the **large-array subset** -- the widest Table III kernels
on a 10x10 torus, where the coupled exact encoding's ``nodes x II x PEs``
growth bites -- the stochastic anytime engine is at least
:data:`SPEEDUP_THRESHOLD` times faster end to end than the exact coupled
baseline, while staying within :data:`II_GAP_LIMIT` of the exact
*decoupled* engine's II (which is optimal-first: it returns the smallest
feasible II, so it is the quality oracle).

**Legs per benchmark** (best-of-:data:`RUNS` wall clock each):

1. exact decoupled ``MonomorphismMapper.map()`` -- the II oracle (also
   timed, for context: it is the fastest thing in the repo at 10x10);
2. exact coupled ``SatMapItMapper.map()`` -- the speed baseline this
   bench beats (CGRA practice pairs exact mappers with heuristic ones
   precisely because of this leg's growth);
3. heuristic ``HeuristicMapper.map()`` under a pinned seed
   (:func:`repro.heuristic.engine.resolve_seed` honours
   ``REPRO_PROPERTY_SEED``, so CI pins one variable for everything).

**Quality gates**: the heuristic must succeed on every benchmark, with
``II(exact) <= II(heuristic) <= II(exact) + II_GAP_LIMIT``.

The per-benchmark measurements are written to ``BENCH_heuristic.json`` at
the repository root. CI's heuristic-smoke job runs the small set
(``REPRO_BENCH_HEURISTIC_SMALL=1``) against the same thresholds and
uploads the artifact.
"""

import os
import pathlib
import time

from repro.arch.cgra import CGRA
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, HeuristicConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.core.validation import validate_mapping
from repro.heuristic.engine import HeuristicMapper, resolve_seed
from repro.perf.history import update_artifact
from repro.workloads.suite import load_benchmark

ARTIFACT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_heuristic.json"
)

#: the widest Table III kernels (33-57 nodes) on the array size where the
#: coupled exact encoding is largest
LARGE_SET = ["cfd", "hotspot3D", "nw", "heartwall", "backprop"]
#: subset used by the CI heuristic-smoke job
SMALL_SET = ["cfd", "nw"]
LARGE_SIDE = 10

#: asserted end-to-end speedup of the heuristic over the coupled exact leg
SPEEDUP_THRESHOLD = 2.0
#: asserted quality ceiling relative to the exact (optimal-first) II
II_GAP_LIMIT = 2
#: best-of runs per leg (absorbs scheduler noise without hiding regressions)
RUNS = 2


def _benchmark_set():
    if os.environ.get("REPRO_BENCH_HEURISTIC_SMALL"):
        return SMALL_SET
    return LARGE_SET


def _best_of(runs, build_mapper, dfg):
    best_seconds = None
    result = None
    for _ in range(runs):
        mapper = build_mapper()
        start = time.monotonic()
        result = mapper.map(dfg)
        elapsed = time.monotonic() - start
        best_seconds = (elapsed if best_seconds is None
                        else min(best_seconds, elapsed))
    return result, best_seconds


def test_heuristic_speedup_within_ii_gap(bench_timeout):
    """The tentpole quality/time claim of the heuristic subsystem."""
    benchmarks = _benchmark_set()
    timeout = max(bench_timeout, 60.0)  # equality matters more than budget
    seed = resolve_seed(None)
    cgra = CGRA(LARGE_SIDE, LARGE_SIDE)

    records = []
    heuristic_total = 0.0
    coupled_total = 0.0
    for name in benchmarks:
        dfg = load_benchmark(name)
        exact, exact_seconds = _best_of(
            RUNS,
            lambda: MonomorphismMapper(cgra, MapperConfig(
                time_timeout_seconds=timeout,
                space_timeout_seconds=timeout,
                total_timeout_seconds=timeout)),
            dfg,
        )
        coupled, coupled_seconds = _best_of(
            RUNS,
            lambda: SatMapItMapper(cgra, BaselineConfig(
                timeout_seconds=timeout, total_timeout_seconds=timeout)),
            dfg,
        )
        heuristic, heuristic_seconds = _best_of(
            RUNS,
            lambda: HeuristicMapper(cgra, HeuristicConfig(
                budget_seconds=timeout, seed=seed)),
            dfg,
        )
        # quality gates first: a fast wrong answer is worthless
        assert exact.success, name
        assert heuristic.success, (name, heuristic.summary())
        assert validate_mapping(heuristic.mapping) == [], name
        assert exact.ii <= heuristic.ii <= exact.ii + II_GAP_LIMIT, (
            f"{name}: heuristic II={heuristic.ii} vs exact II={exact.ii} "
            f"(gap limit {II_GAP_LIMIT}, seed {seed})"
        )
        heuristic_total += heuristic_seconds
        coupled_total += coupled_seconds
        records.append({
            "benchmark": name,
            "cgra": f"{LARGE_SIDE}x{LARGE_SIDE}",
            "nodes": dfg.num_nodes,
            "exact_ii": exact.ii,
            "heuristic_ii": heuristic.ii,
            "coupled_ii": coupled.ii if coupled.success else None,
            "exact_seconds": round(exact_seconds, 6),
            "coupled_seconds": round(coupled_seconds, 6),
            "heuristic_seconds": round(heuristic_seconds, 6),
            "speedup_vs_coupled": round(
                coupled_seconds / heuristic_seconds, 3),
        })
        print(f"\n{name}: heuristic {heuristic_seconds:.3f}s "
              f"(II={heuristic.ii}), coupled exact {coupled_seconds:.3f}s "
              f"(II={coupled.ii}), decoupled exact {exact_seconds:.3f}s "
              f"(II={exact.ii}), "
              f"{coupled_seconds / heuristic_seconds:.2f}x vs coupled")

    speedup = coupled_total / heuristic_total
    artifact = {
        "workload": (
            f"{LARGE_SIDE}x{LARGE_SIDE} large-array subset: one full "
            "map() per engine per benchmark, best-of-"
            f"{RUNS} wall clock"
        ),
        "benchmarks": benchmarks,
        "baseline": "SatMapItMapper (exact coupled SAT baseline)",
        "quality_oracle": "MonomorphismMapper (exact decoupled, optimal-first II)",
        "seed": seed,
        "threshold_speedup": SPEEDUP_THRESHOLD,
        "ii_gap_limit": II_GAP_LIMIT,
        "runs_per_leg": RUNS,
        "heuristic_seconds": round(heuristic_total, 6),
        "coupled_seconds": round(coupled_total, 6),
        "speedup": round(speedup, 3),
        "max_ii_gap": max(
            r["heuristic_ii"] - r["exact_ii"] for r in records),
        "results": records,
    }
    update_artifact(ARTIFACT_PATH, artifact, {
        "label": "heuristic-vs-coupled",
        "backend_tier": "arena",
        "benchmarks": benchmarks,
        "speedup": round(speedup, 3),
        "max_ii_gap": artifact["max_ii_gap"],
    })
    print(f"\ntotal: heuristic {heuristic_total:.3f}s, coupled exact "
          f"{coupled_total:.3f}s -> {speedup:.2f}x "
          f"(threshold {SPEEDUP_THRESHOLD}x); artifact at {ARTIFACT_PATH}")
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"heuristic speedup {speedup:.2f}x below the "
        f"{SPEEDUP_THRESHOLD}x threshold"
    )
