"""Benchmarks regenerating paper Table I and Table II.

The quantities themselves (ASAP/ALAP/MobS and the KMS of the running
example) are checked against the paper inside the benchmark body, so this
doubles as a regression check while measuring the analysis cost.
"""

from repro.experiments.table1_table2 import (
    PAPER_TABLE1,
    build_table1,
    build_table2,
)
from repro.graphs.analysis import mobility_schedule
from repro.graphs.kms import KernelMobilitySchedule
from repro.workloads.running_example import running_example_dfg


def test_table1_mobility_schedule(benchmark):
    """Table I: ASAP / ALAP / Mobility Schedule of the running example."""

    def build():
        dfg = running_example_dfg()
        mobs = mobility_schedule(dfg)
        return mobs.asap_rows(), mobs.alap_rows(), mobs.rows()

    asap, alap, mobs = benchmark(build)
    assert asap == PAPER_TABLE1["asap"]
    assert alap == PAPER_TABLE1["alap"]
    assert mobs == PAPER_TABLE1["mobs"]


def test_table1_rendering(benchmark):
    """Rendering of the full Table I comparison (paper vs measured)."""
    table = benchmark(build_table1)
    assert all(match == "yes" for match in table.column("match"))


def test_table2_kernel_mobility_schedule(benchmark):
    """Table II: KMS obtained by folding the MobS with II = 4."""

    def build():
        dfg = running_example_dfg()
        return KernelMobilitySchedule(mobility_schedule(dfg), ii=4)

    kms = benchmark(build)
    assert kms.num_foldings == 2
    assert len(kms.rows()) == 4


def test_table2_rendering(benchmark):
    table = benchmark(build_table2, 4)
    assert len(table) == 4
