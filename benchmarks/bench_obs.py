"""Overhead benchmark for the observability layer (``BENCH_solver.json``).

The claim asserted here is the acceptance criterion of the instrumentation
PR: the hooks that are *compiled into* every engine (``engine.map`` /
``ii_attempt`` spans, the II-latency histogram, the terminal counters)
cost at most :data:`OVERHEAD_THRESHOLD` of end-to-end mapping time while
tracing is **disabled** -- the shipped default, where
:func:`repro.obs.trace.span` returns a shared null context manager
without allocating.

**Why not a two-leg wall-clock diff.** On a shared runner the run-to-run
spread of one identical ``map()`` call is 15-30% -- two orders of
magnitude above the effect being bounded -- so "instrumented minus
stubbed" measures scheduler noise, not instrumentation. Instead the
overhead is measured as the product of two stable quantities:

1. **call counts** -- every obs entry point is wrapped by a counting
   shim for one ``map()`` per benchmark of the solver-bench small set
   (gsm, cfd on an 8x8 torus, the same map leg as ``bench_solver.py``),
   so the exact number of disabled-path calls a real run makes is known,
   not estimated; and
2. **per-call cost** -- each entry point timed in a tight loop
   (best-of-:data:`COST_BATCHES` batches of :data:`COST_REPS` calls),
   which resolves sub-microsecond costs reliably.

``overhead = sum(count_i * cost_i) / disabled_run_seconds`` is asserted
per the total over the set; the denominator is a best-of-:data:`RUNS`
wall-clock ``map()``. A tracing-*enabled* leg is also measured end to end
and recorded to the artifact for the record (not asserted -- live span
bookkeeping is allowed to cost more than the disabled floor).

All legs must produce identical mapping results -- an observability layer
that changes answers is a bug, not overhead.
"""

import gc
import pathlib
import signal
import time

import pytest

from repro.arch.cgra import CGRA
from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig
from repro.obs import hooks as obs_hooks
from repro.obs import profiler as obs_profiler
from repro.obs import trace as obs_trace
from repro.perf.history import update_artifact
from repro.workloads.suite import load_benchmark

ARTIFACT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver.json"
)

#: the solver-bench small set: search-bound, seconds not minutes
BENCHMARKS = ["gsm", "cfd"]
SIDE = 8

#: asserted ceiling on instrumentation_seconds / run_seconds
OVERHEAD_THRESHOLD = 0.03
#: asserted ceiling on the continuous sampling profiler's overhead
PROFILER_OVERHEAD_THRESHOLD = 0.01
#: best-of runs for the end-to-end legs
RUNS = 3
#: tight-loop sizing for the per-call cost measurements
COST_REPS = 20_000
COST_BATCHES = 5


def _run_map(dfg, timeout: float):
    cgra = CGRA(SIDE, SIDE)
    mapper = SatMapItMapper(
        cgra, BaselineConfig(timeout_seconds=timeout,
                             total_timeout_seconds=timeout))
    start = time.monotonic()
    result = mapper.map(dfg)
    return result, time.monotonic() - start


class _counting_shims:
    """Count every obs entry-point call made during one ``map()``.

    Engines resolve ``obs_hooks.engine_span`` / ``obs_trace.span`` as
    module attributes at call time, so wrapping the two modules reaches
    every call site without touching engine code.  ``trace.span`` is
    wrapped at the trace layer, so ``engine_span`` (which delegates to
    it) is counted once, as one span.
    """

    def __init__(self):
        self.counts = {"span": 0, "instant": 0, "ii_attempt": 0,
                       "finish": 0}

    def __enter__(self):
        counts = self.counts

        def wrap(key, original):
            def shim(*args, **kwargs):
                counts[key] += 1
                return original(*args, **kwargs)
            return shim

        self._saved = [
            (obs_trace, "span", obs_trace.span),
            (obs_trace, "instant", obs_trace.instant),
            (obs_hooks, "record_ii_attempt", obs_hooks.record_ii_attempt),
            (obs_hooks, "finish_engine_run", obs_hooks.finish_engine_run),
        ]
        keys = ("span", "instant", "ii_attempt", "finish")
        for key, (mod, name, original) in zip(keys, self._saved):
            setattr(mod, name, wrap(key, original))
        return self

    def __exit__(self, *exc):
        for mod, name, original in self._saved:
            setattr(mod, name, original)
        return False


def _per_call_seconds(fn) -> float:
    """Best-of-batches cost of one ``fn()`` call, in seconds."""
    best = None
    for _ in range(COST_BATCHES):
        gc.collect()
        start = time.perf_counter()
        for _ in range(COST_REPS):
            fn()
        elapsed = (time.perf_counter() - start) / COST_REPS
        best = elapsed if best is None else min(best, elapsed)
    return best


def _measure_costs(sample_result, started: float):
    """Per-call disabled-path cost of each obs entry point."""

    def span_call():
        with obs_trace.span("ii_attempt", ii=7):
            pass

    return {
        "span": _per_call_seconds(span_call),
        "instant": _per_call_seconds(
            lambda: obs_trace.instant("improvement", ii=7)),
        "ii_attempt": _per_call_seconds(
            lambda: obs_hooks.record_ii_attempt("satmapit", 0.001)),
        "finish": _per_call_seconds(
            lambda: obs_hooks.finish_engine_run(
                "satmapit", sample_result, started)),
    }


def test_instrumentation_overhead_disabled(bench_timeout):
    """Tracing-disabled instrumentation costs <= 3% end to end."""
    assert not obs_trace.enabled()
    timeout = max(bench_timeout, 60.0)
    records = []
    total_instr = 0.0
    total_run = 0.0
    total_traced = 0.0
    costs = None
    for name in BENCHMARKS:
        dfg = load_benchmark(name)

        # exact call counts of one real run, via counting shims
        with _counting_shims() as shims:
            reference, _ = _run_map(dfg, timeout)
        counts = dict(shims.counts)

        if costs is None:
            started = time.monotonic()
            costs = _measure_costs(reference, started)

        # end-to-end legs: the shipped default, then tracing enabled
        best_run = best_traced = None
        for _ in range(RUNS):
            gc.collect()
            result, seconds = _run_map(dfg, timeout)
            assert result.status == reference.status, name
            assert result.ii == reference.ii, name
            best_run = seconds if best_run is None else min(best_run, seconds)

            gc.collect()
            obs_trace.enable()
            try:
                result, seconds = _run_map(dfg, timeout)
            finally:
                obs_trace.disable()
                obs_trace.reset()
            assert result.status == reference.status, name
            assert result.ii == reference.ii, name
            best_traced = (seconds if best_traced is None
                           else min(best_traced, seconds))

        instr = sum(counts[key] * costs[key] for key in counts)
        overhead = instr / best_run
        total_instr += instr
        total_run += best_run
        total_traced += best_traced
        records.append({
            "benchmark": name,
            "cgra": f"{SIDE}x{SIDE}",
            "status": reference.status.value,
            "ii": reference.ii,
            "calls": counts,
            "instrumentation_seconds": round(instr, 9),
            "disabled_seconds": round(best_run, 6),
            "traced_seconds": round(best_traced, 6),
            "disabled_overhead": round(overhead, 6),
        })
        print(f"\n{name}: {sum(counts.values())} obs calls "
              f"({counts}) -> {instr * 1e6:.1f}us of "
              f"{best_run:.3f}s run ({overhead * 100:.4f}%); "
              f"traced {best_traced:.3f}s")
    overhead = total_instr / total_run
    update_artifact(ARTIFACT_PATH, {
        "obs_overhead": {
            "workload": ("solver-bench small set, full coupled map() per "
                         "benchmark on an 8x8 torus"),
            "benchmarks": BENCHMARKS,
            "threshold": OVERHEAD_THRESHOLD,
            "runs_per_leg": RUNS,
            "per_call_seconds": {k: round(v, 9) for k, v in costs.items()},
            "instrumentation_seconds": round(total_instr, 9),
            "disabled_seconds": round(total_run, 6),
            "traced_seconds": round(total_traced, 6),
            "disabled_overhead": round(overhead, 6),
            "records": records,
        },
    }, {
        "label": "obs-overhead",
        "benchmarks": BENCHMARKS,
        "disabled_overhead": round(overhead, 6),
        "threshold": OVERHEAD_THRESHOLD,
    })
    print(f"\ntotal: {total_instr * 1e6:.1f}us instrumentation over "
          f"{total_run:.3f}s of mapping ({overhead * 100:.4f}%); traced "
          f"end-to-end {total_traced:.3f}s; artifact written to "
          f"{ARTIFACT_PATH}")
    assert overhead <= OVERHEAD_THRESHOLD, (
        f"tracing-disabled instrumentation costs {overhead * 100:.2f}% "
        f"(threshold {OVERHEAD_THRESHOLD * 100:.0f}%)"
    )


def test_sampling_profiler_overhead(bench_timeout):
    """The continuous sampling profiler costs <= 1% of mapping time.

    Same exact-count methodology as the instrumentation leg: a
    wall-clock diff of profiler-on vs profiler-off runs would measure
    scheduler noise, so the overhead is computed as ``samples taken
    during a real profiled run x measured per-sample handler cost /
    run seconds``. SIGPROF fires on *CPU* time, so the sample count of
    a run is itself stable.
    """
    if not hasattr(signal, "setitimer"):  # pragma: no cover - non-POSIX
        pytest.skip("sampling profiler needs setitimer/SIGPROF")
    timeout = max(bench_timeout, 60.0)

    # per-sample cost of one handler invocation (walks every thread's
    # stack and folds it), resolved in a tight loop; the folded key is
    # identical each call so the aggregate dict stays tiny
    obs_profiler.reset()
    handler_cost = _per_call_seconds(
        lambda: obs_profiler._handler(signal.SIGPROF, None))
    obs_profiler.reset()

    records = []
    total_samples = 0
    total_run = 0.0
    for name in BENCHMARKS:
        dfg = load_benchmark(name)
        reference, _ = _run_map(dfg, timeout)

        best = None
        samples = 0
        for _ in range(RUNS):
            gc.collect()
            obs_profiler.reset()
            assert obs_profiler.start()
            try:
                result, seconds = _run_map(dfg, timeout)
            finally:
                obs_profiler.stop()
            run_samples = sum(obs_profiler.local_counts().values())
            assert result.status == reference.status, name
            assert result.ii == reference.ii, name
            if best is None or seconds < best:
                best, samples = seconds, run_samples
        # the profile must attribute real work, not just exist
        assert samples > 0, f"{name}: no samples in a {best:.3f}s run"
        overhead = samples * handler_cost / best
        total_samples += samples
        total_run += best
        records.append({
            "benchmark": name,
            "cgra": f"{SIDE}x{SIDE}",
            "samples": samples,
            "run_seconds": round(best, 6),
            "profiler_overhead": round(overhead, 6),
        })
        print(f"\n{name}: {samples} samples in {best:.3f}s "
              f"({overhead * 100:.4f}% overhead at "
              f"{handler_cost * 1e6:.1f}us/sample)")
    overhead = total_samples * handler_cost / total_run
    obs_profiler.reset()
    update_artifact(ARTIFACT_PATH, {
        "profiler_overhead": {
            "workload": ("solver-bench small set, full coupled map() per "
                         "benchmark on an 8x8 torus, sampling profiler "
                         "running"),
            "benchmarks": BENCHMARKS,
            "threshold": PROFILER_OVERHEAD_THRESHOLD,
            "interval_seconds": obs_profiler.DEFAULT_INTERVAL_SECONDS,
            "per_sample_seconds": round(handler_cost, 9),
            "samples": total_samples,
            "run_seconds": round(total_run, 6),
            "profiler_overhead": round(overhead, 6),
            "records": records,
        },
    }, {
        "label": "profiler-overhead",
        "benchmarks": BENCHMARKS,
        "profiler_overhead": round(overhead, 6),
        "threshold": PROFILER_OVERHEAD_THRESHOLD,
    })
    print(f"\ntotal: {total_samples} samples x "
          f"{handler_cost * 1e6:.1f}us over {total_run:.3f}s of mapping "
          f"({overhead * 100:.4f}%); artifact written to {ARTIFACT_PATH}")
    assert overhead <= PROFILER_OVERHEAD_THRESHOLD, (
        f"sampling profiler costs {overhead * 100:.2f}% "
        f"(threshold {PROFILER_OVERHEAD_THRESHOLD * 100:.0f}%)"
    )
