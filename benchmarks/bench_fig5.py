"""Benchmarks regenerating paper Fig. 5 (compile time vs CGRA size, aes).

One benchmark case per (approach, CGRA size) for the ``aes`` loop. The
decoupled mapper is measured on all four paper sizes; the coupled baseline is
measured on the sizes it can still finish (its formula grows with the MRRG,
which is exactly the scaling effect the figure shows -- on 10x10/20x20 it
exhausts any laptop-scale budget, mirroring the paper's TO entries at 20x20).
"""

import pytest

from repro.baseline.satmapit import SatMapItMapper
from repro.core.config import BaselineConfig, MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.experiments.runner import build_cgra
from repro.workloads.suite import load_benchmark

from conftest import BENCH_TIMEOUT_SECONDS

BENCHMARK_NAME = "aes"


@pytest.mark.parametrize("size", ["2x2", "5x5", "10x10", "20x20"])
def test_fig5_monomorphism(benchmark, size):
    dfg = load_benchmark(BENCHMARK_NAME)
    cgra = build_cgra(size)
    config = MapperConfig(
        time_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        space_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        total_timeout_seconds=BENCH_TIMEOUT_SECONDS,
    )

    def compile_once():
        return MonomorphismMapper(cgra, config).map(dfg)

    result = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["ii"] = result.ii
    assert result.success
    # the paper finds II = 16 with mII = 14 for aes on every size; our
    # synthetic aes stand-in reaches its mII of 14 on every size as well
    assert result.ii >= 14


@pytest.mark.parametrize("size", ["2x2", "5x5"])
def test_fig5_satmapit_baseline(benchmark, size):
    dfg = load_benchmark(BENCHMARK_NAME)
    cgra = build_cgra(size)
    config = BaselineConfig(
        timeout_seconds=BENCH_TIMEOUT_SECONDS,
        total_timeout_seconds=BENCH_TIMEOUT_SECONDS,
    )

    def compile_once():
        return SatMapItMapper(cgra, config).map(dfg)

    result = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["ii"] = result.ii
