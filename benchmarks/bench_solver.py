"""End-to-end benchmark of the flat-arena CDCL kernel (``BENCH_solver.json``).

The claim asserted here is the acceptance criterion of the solver rewrite:
on the coupled-baseline 8x8 schedule-enumeration set, the flat-arena kernel
(:mod:`repro.smt.sat`) is at least :data:`SPEEDUP_THRESHOLD` times faster
end to end than the pre-rewrite solver stack, with identical results.

**Workload** (per benchmark of the bench_incremental enumeration set --
gsm, particlefilter, crc32, aes, cfd -- on an 8x8 torus):

1. a full coupled ``SatMapItMapper.map()`` call (the mII -> II sweep whose
   ``nodes x II x PEs`` formulas are the hottest thing the repo builds), and
2. coupled *schedule enumeration*: encode once, then enumerate up to
   :data:`SCHEDULES_PER_II` distinct schedules at the first feasible II
   through blocking clauses -- the solve/block/re-solve loop the mapper
   runs whenever the space phase rejects schedules.

**Baseline leg**: the pre-rewrite kernel, preserved verbatim in
:mod:`repro.smt.sat_reference`, driven with
``BaselineConfig(solver_backend="reference", legacy_solver_sync=True)`` --
i.e. including the per-sync phase/activity sweep the stack performed before
the rewrite. That is the faithful "before this PR" configuration; see
docs/performance.md for the exact definition.

**Equality checks**: map status and II must match per benchmark, and the
enumeration legs must produce the same number of distinct schedules. (The
kernels may visit models in different orders; the differential suite in
``tests/test_solver_differential.py`` covers status/core semantics.)

Timings are best-of-:data:`RUNS`. The per-benchmark measurements are
written to ``BENCH_solver.json`` at the repository root. CI's perf-smoke
job runs the small set (``REPRO_BENCH_SOLVER_SMALL=1``) against the same
threshold.
"""

import os
import pathlib
import time

from repro.arch.cgra import CGRA
from repro.baseline.satmapit import SatMapItMapper, _CoupledEncoding
from repro.core.config import BaselineConfig
from repro.core.mapper import begin_mapping
from repro.perf.history import update_artifact
from repro.workloads.suite import load_benchmark
from repro.smt.sat import SolveStatus

ARTIFACT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver.json"
)

#: the schedule-enumeration benchmarks of bench_incremental, on the array
#: size where the coupled encoding's nodes x II x PEs growth bites
ENUMERATION_BENCHMARKS = ["gsm", "particlefilter", "crc32", "aes", "cfd"]
#: subset used by the CI perf-smoke job (search-bound, seconds not minutes)
SMALL_SET = ["gsm", "cfd"]
ENUMERATION_SIDE = 8

#: distinct schedules requested from the enumeration leg per benchmark
SCHEDULES_PER_II = 16
#: asserted end-to-end speedup of the arena kernel over the pre-rewrite one
SPEEDUP_THRESHOLD = 1.5
#: target end-to-end speedup of the native C tier over the arena kernel
#: (the assertion floor is 1.0x with C, NATIVE_FALLBACK_FLOOR otherwise)
NATIVE_TARGET_SPEEDUP = 1.5
#: noise allowance when only a fallback tier (numpy/arena) is available:
#: the executed code is then nearly identical to the arena leg
NATIVE_FALLBACK_FLOOR = 0.8
#: best-of runs per leg (absorbs scheduler noise without hiding regressions)
RUNS = 2


def _benchmark_set():
    if os.environ.get("REPRO_BENCH_SOLVER_SMALL"):
        return SMALL_SET
    return ENUMERATION_BENCHMARKS


def _config(backend: str, timeout: float) -> BaselineConfig:
    if backend == "reference":
        return BaselineConfig(timeout_seconds=timeout,
                              total_timeout_seconds=timeout,
                              solver_backend="reference",
                              legacy_solver_sync=True)
    return BaselineConfig(timeout_seconds=timeout,
                          total_timeout_seconds=timeout,
                          solver_backend=backend)


def _run_map(dfg, backend: str, timeout: float):
    cgra = CGRA(ENUMERATION_SIDE, ENUMERATION_SIDE)
    mapper = SatMapItMapper(cgra, _config(backend, timeout))
    start = time.monotonic()
    result = mapper.map(dfg)
    return result, time.monotonic() - start


def _run_enumeration(dfg, backend: str, timeout: float):
    """Encode once, enumerate schedules at the first feasible II."""
    cgra = CGRA(ENUMERATION_SIDE, ENUMERATION_SIDE)
    config = _config(backend, timeout)
    _, _, mii, infeasible = begin_mapping(dfg, cgra)
    assert infeasible is None
    start = time.monotonic()
    encoding = _CoupledEncoding(
        dfg, cgra, max(config.slack_candidates()),
        solver_backend=config.solver_backend,
        legacy_sync=config.legacy_solver_sync,
    )
    produced = 0
    ii = mii
    while produced == 0 and ii < mii + 8:
        eff_slack = encoding.effective_slack(0)
        encoding.problem.push()
        try:
            encoding._add_horizon(eff_slack)
            encoding._add_loop_carried(ii)
            encoding._add_capacity(ii)
            encoding._add_exclusivity(ii, eff_slack)
            for _ in range(SCHEDULES_PER_II):
                result = encoding.problem.solve_detailed(
                    timeout_seconds=timeout)
                if result.status is not SolveStatus.SAT:
                    break
                produced += 1
                solution = encoding.problem._extract(result)
                encoding.problem.forbid_assignment({
                    var: solution.value(var)
                    for var in encoding.time_vars.values()
                })
        finally:
            encoding.problem.pop()
        ii += 1
    return produced, time.monotonic() - start


def _measure(dfg, backend: str, timeout: float):
    """Best-of-RUNS end-to-end seconds for both workload components."""
    best_map = best_enum = None
    map_result = None
    produced = None
    for _ in range(RUNS):
        map_result, map_seconds = _run_map(dfg, backend, timeout)
        count, enum_seconds = _run_enumeration(dfg, backend, timeout)
        if produced is None:
            produced = count
        else:
            assert produced == count, "enumeration count not reproducible"
        best_map = map_seconds if best_map is None else min(best_map,
                                                           map_seconds)
        best_enum = enum_seconds if best_enum is None else min(best_enum,
                                                               enum_seconds)
    return map_result, produced, best_map, best_enum


def test_arena_kernel_end_to_end_speedup(bench_timeout):
    """The tentpole perf claim, measured against the pre-rewrite stack."""
    benchmarks = _benchmark_set()
    timeout = max(bench_timeout, 60.0)  # equality matters more than budget
    records = []
    arena_total = 0.0
    reference_total = 0.0
    for name in benchmarks:
        dfg = load_benchmark(name)
        arena_result, arena_count, arena_map, arena_enum = _measure(
            dfg, "arena", timeout)
        ref_result, ref_count, ref_map, ref_enum = _measure(
            dfg, "reference", timeout)
        # identical results first: the speed claim is meaningless otherwise
        assert arena_result.status == ref_result.status, name
        assert arena_result.ii == ref_result.ii, name
        assert arena_count == ref_count, name
        assert arena_count >= 1, name
        arena_seconds = arena_map + arena_enum
        reference_seconds = ref_map + ref_enum
        arena_total += arena_seconds
        reference_total += reference_seconds
        records.append({
            "benchmark": name,
            "cgra": f"{ENUMERATION_SIDE}x{ENUMERATION_SIDE}",
            "status": arena_result.status.value,
            "ii": arena_result.ii,
            "schedules_enumerated": arena_count,
            "arena_map_seconds": round(arena_map, 6),
            "arena_enum_seconds": round(arena_enum, 6),
            "reference_map_seconds": round(ref_map, 6),
            "reference_enum_seconds": round(ref_enum, 6),
            "speedup": round(reference_seconds / arena_seconds, 3),
        })
        print(f"\n{name}: arena {arena_seconds:.3f}s "
              f"(map {arena_map:.3f} + enum {arena_enum:.3f}), "
              f"reference {reference_seconds:.3f}s, "
              f"{reference_seconds / arena_seconds:.2f}x")
    speedup = reference_total / arena_total
    artifact = {
        "workload": (
            "coupled-baseline 8x8 schedule-enumeration set: full map() "
            f"plus {SCHEDULES_PER_II}-schedule enumeration per benchmark"
        ),
        "benchmarks": benchmarks,
        "baseline": (
            "repro.smt.sat_reference.ReferenceSATSolver with "
            "legacy_solver_sync=True (the pre-rewrite solver stack)"
        ),
        "threshold_speedup": SPEEDUP_THRESHOLD,
        "runs_per_leg": RUNS,
        "arena_seconds": round(arena_total, 6),
        "reference_seconds": round(reference_total, 6),
        "speedup": round(speedup, 3),
        "records": records,
    }
    update_artifact(ARTIFACT_PATH, artifact, {
        "label": "arena-vs-reference",
        "backend_tier": "arena",
        "benchmarks": benchmarks,
        "speedup": round(speedup, 3),
    })
    print(f"\ntotal: arena {arena_total:.3f}s, reference "
          f"{reference_total:.3f}s ({speedup:.2f}x); artifact written to "
          f"{ARTIFACT_PATH}")
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"flat-arena kernel only {speedup:.2f}x faster than the pre-rewrite "
        f"stack (threshold {SPEEDUP_THRESHOLD}x)"
    )


def test_native_backend_end_to_end_speedup(bench_timeout):
    """The native tier is no slower than arena end to end (target: faster).

    Measured on the same 8x8 schedule-enumeration workload as the arena
    leg. With the C tier built this asserts parity and targets
    :data:`NATIVE_TARGET_SPEEDUP`; when only a fallback tier is available
    (no C toolchain -- the code is then nearly identical to arena) the
    assertion allows scheduler noise down to
    :data:`NATIVE_FALLBACK_FLOOR`.
    """
    from repro.smt.native import selected_tier

    benchmarks = _benchmark_set()
    timeout = max(bench_timeout, 60.0)
    tier = selected_tier()
    records = []
    arena_total = 0.0
    native_total = 0.0
    for name in benchmarks:
        dfg = load_benchmark(name)
        arena_result, arena_count, arena_map, arena_enum = _measure(
            dfg, "arena", timeout)
        nat_result, nat_count, nat_map, nat_enum = _measure(
            dfg, "native", timeout)
        # bit-identical results are the native backend's contract
        assert nat_result.status == arena_result.status, name
        assert nat_result.ii == arena_result.ii, name
        assert nat_count == arena_count, name
        arena_seconds = arena_map + arena_enum
        native_seconds = nat_map + nat_enum
        arena_total += arena_seconds
        native_total += native_seconds
        records.append({
            "benchmark": name,
            "cgra": f"{ENUMERATION_SIDE}x{ENUMERATION_SIDE}",
            "status": nat_result.status.value,
            "ii": nat_result.ii,
            "schedules_enumerated": nat_count,
            "arena_map_seconds": round(arena_map, 6),
            "arena_enum_seconds": round(arena_enum, 6),
            "native_map_seconds": round(nat_map, 6),
            "native_enum_seconds": round(nat_enum, 6),
            "speedup": round(arena_seconds / native_seconds, 3),
        })
        print(f"\n{name}: native[{tier}] {native_seconds:.3f}s "
              f"(map {nat_map:.3f} + enum {nat_enum:.3f}), "
              f"arena {arena_seconds:.3f}s, "
              f"{arena_seconds / native_seconds:.2f}x")
    speedup = arena_total / native_total
    update_artifact(ARTIFACT_PATH, {
        "native_tier": tier,
        "native_seconds": round(native_total, 6),
        "native_arena_seconds": round(arena_total, 6),
        "native_speedup": round(speedup, 3),
        "native_records": records,
    }, {
        "label": "native-vs-arena",
        "backend_tier": tier,
        "benchmarks": benchmarks,
        "speedup": round(speedup, 3),
        "target_speedup": NATIVE_TARGET_SPEEDUP,
    })
    print(f"\ntotal: native[{tier}] {native_total:.3f}s, arena "
          f"{arena_total:.3f}s ({speedup:.2f}x); artifact written to "
          f"{ARTIFACT_PATH}")
    floor = 1.0 if tier == "native-c" else NATIVE_FALLBACK_FLOOR
    assert speedup >= floor, (
        f"native backend ({tier} tier) ran {speedup:.2f}x vs arena "
        f"(floor {floor}x, target {NATIVE_TARGET_SPEEDUP}x)"
    )
