"""Benchmarks for the design-choice ablations called out in DESIGN.md.

Each case measures the full mapper with one ingredient toggled on a mid-size
configuration (backprop on 5x5), so the cost/benefit of the paper's
capacity/connectivity constraints, the all-pairs MRRG time adjacency and the
torus symmetry seeding can be compared from the benchmark report.
"""

import pytest

from repro.core.config import MapperConfig
from repro.core.mapper import MonomorphismMapper
from repro.experiments.ablation import VARIANTS
from repro.experiments.runner import build_cgra
from repro.workloads.suite import load_benchmark

from conftest import BENCH_TIMEOUT_SECONDS

BENCHMARK_NAME = "backprop"
SIZE = "5x5"


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation_variant(benchmark, variant):
    dfg = load_benchmark(BENCHMARK_NAME)
    cgra = build_cgra(SIZE)
    config = MapperConfig(
        time_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        space_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        total_timeout_seconds=BENCH_TIMEOUT_SECONDS,
        **VARIANTS[variant],
    )

    def compile_once():
        return MonomorphismMapper(cgra, config).map(dfg)

    result = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["ii"] = result.ii
    benchmark.extra_info["schedules_tried"] = result.schedules_tried
