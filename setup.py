"""Setuptools entry point.

The pinned offline environment ships setuptools but not the ``wheel``
package, so PEP 517/660 builds (which need ``bdist_wheel``) cannot run.
Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` code path, which works fully offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Monomorphism-based CGRA mapping via space and time decoupling "
        "(DATE 2025 reproduction)"
    ),
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["networkx>=3.0", "numpy>=1.24"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": [
        "repro-map=repro.cli:main",
        "repro-serve=repro.service.cli:main",
    ]},
)
