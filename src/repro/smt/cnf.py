"""CNF formula container and named variable pool.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negation of the corresponding variable. Two
pseudo-literals, :data:`TRUE_LIT` and :data:`FALSE_LIT`, are provided so that
encoders can return constants without special-casing call sites; they are
resolved when clauses are added.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, List, Optional

TRUE_LIT = "TRUE"
FALSE_LIT = "FALSE"


class VariablePool:
    """Allocates SAT variables, optionally associated with hashable keys."""

    def __init__(self) -> None:
        self._next = 1
        self._by_key: Dict[Hashable, int] = {}
        self._key_of: Dict[int, Hashable] = {}

    @property
    def num_vars(self) -> int:
        return self._next - 1

    def new_var(self, key: Optional[Hashable] = None) -> int:
        """Allocate a fresh variable, optionally registering it under ``key``."""
        var = self._next
        self._next += 1
        if key is not None:
            if key in self._by_key:
                raise ValueError(f"variable key {key!r} already allocated")
            self._by_key[key] = var
            self._key_of[var] = key
        return var

    def var(self, key: Hashable) -> int:
        """Return the variable registered under ``key`` (allocating if new)."""
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        return self.new_var(key)

    def reserve(self, count: int) -> int:
        """Allocate ``count`` anonymous variables; returns the first one.

        The bulk path for encoders that need blocks of auxiliary variables
        (sequential counters, occupancy indicators): one call instead of
        ``count`` :meth:`new_var` round trips.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        first = self._next
        self._next += count
        return first

    def rollback(self, num_vars: int) -> None:
        """Forget every variable above ``num_vars`` (scope retraction)."""
        if num_vars < 0 or num_vars > self.num_vars:
            raise ValueError(f"cannot roll back to {num_vars} variables")
        for var in range(num_vars + 1, self._next):
            key = self._key_of.pop(var, None)
            if key is not None:
                del self._by_key[key]
        self._next = num_vars + 1

    def lookup(self, key: Hashable) -> Optional[int]:
        return self._by_key.get(key)

    def key_of(self, var: int) -> Optional[Hashable]:
        return self._key_of.get(var)


class CNF:
    """A growable CNF formula with constant-literal simplification."""

    def __init__(self, pool: Optional[VariablePool] = None) -> None:
        self.pool = pool if pool is not None else VariablePool()
        self.clauses: List[List[int]] = []
        self.contradiction = False
        self._guards: List[int] = []

    @property
    def num_vars(self) -> int:
        return self.pool.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def new_var(self, key: Optional[Hashable] = None) -> int:
        return self.pool.new_var(key)

    @contextmanager
    def guard(self, selector: int):
        """Add ``not selector`` to every clause added inside the context.

        Guarded clauses are *activating*: they only bite when ``selector``
        is assumed true, which is how scoped constraint groups (one group
        per II / slack attempt) are switched on and off without touching the
        clause database. Guards nest (a clause gets every active guard).
        """
        if not isinstance(selector, int) or selector == 0:
            raise ValueError(f"invalid guard literal {selector!r}")
        self._guards.append(selector)
        try:
            yield
        finally:
            self._guards.pop()

    @contextmanager
    def unguarded(self):
        """Temporarily suspend active guards (for globally true clauses)."""
        saved, self._guards = self._guards, []
        try:
            yield
        finally:
            self._guards = saved

    def add_clause(self, literals: Iterable) -> None:
        """Add a clause, simplifying TRUE/FALSE pseudo-literals.

        A clause containing :data:`TRUE_LIT` is dropped; :data:`FALSE_LIT`
        literals are removed. An empty resulting clause marks the formula as
        contradictory. Active :meth:`guard` selectors are appended negated.
        """
        clause: List[int] = []
        seen = set()
        seen_add = seen.add
        append = clause.append
        if self._guards:
            literals = list(literals) + [negate(g) for g in self._guards]
        for lit in literals:
            # int literals first: they are the overwhelmingly common case,
            # and comparing an int against the TRUE/FALSE string sentinels
            # costs a slow cross-type dispatch per literal
            if type(lit) is int:
                if lit == 0:
                    raise ValueError(f"invalid literal {lit!r}")
                if lit not in seen:
                    if -lit in seen:
                        return  # tautology
                    seen_add(lit)
                    append(lit)
            elif lit == TRUE_LIT:
                return
            elif lit == FALSE_LIT:
                continue
            elif isinstance(lit, int):  # bool is an int subclass
                raise ValueError(f"invalid literal {lit!r}")
            else:
                raise ValueError(f"invalid literal {lit!r}")
        if not clause:
            self.contradiction = True
            return
        self.clauses.append(clause)

    def add_clause_clean(self, clause: List[int]) -> None:
        """Append a pre-validated clause, skipping the simplification pass.

        The caller guarantees what :meth:`add_clause` normally establishes:
        only int literals (no TRUE/FALSE sentinels), non-empty, no
        duplicate or complementary literals, and ownership of ``clause``
        (it is stored, not copied). Encoders whose construction rules make
        those properties structural (fresh auxiliary variables, distinct
        source literals) ship their high-volume clause streams through
        here. With guards active the safe path is taken instead, since a
        guard literal may interact with the clause body.
        """
        if self._guards:
            self.add_clause(clause)
            return
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend_implication(self, antecedent: int, consequent: int) -> None:
        """Add ``antecedent -> consequent``."""
        self.add_clause([negate(antecedent), consequent])

    def to_dimacs(self) -> str:
        """Serialise to DIMACS text (useful for debugging and tests)."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"


def negate(literal):
    """Negate a literal, handling the TRUE/FALSE pseudo-literals."""
    if literal == TRUE_LIT:
        return FALSE_LIT
    if literal == FALSE_LIT:
        return TRUE_LIT
    return -literal
