"""SAT / SMT solving substrate.

The paper formulates the time phase as an SMT problem and solves it with Z3.
Z3 is not available in this offline reproduction, so this subpackage provides
the solver stack the rest of the library is built on:

* :mod:`repro.smt.cnf` -- CNF formula container and named variable pool.
* :mod:`repro.smt.sat` -- the flat-arena CDCL SAT solver (two-watched
  literals with a binary fast path, 1UIP clause learning, VSIDS branching,
  phase saving, Luby restarts with Glucose-style blocking, LBD-driven
  learnt-clause reduction, incremental push/pop and assumptions).
* :mod:`repro.smt.sat_reference` -- the pre-rewrite kernel, kept as the
  differential-testing oracle and the ``BENCH_solver.json`` baseline.
* :mod:`repro.smt.cardinality` -- at-most-k / at-least-k / exactly-k clause
  encodings (pairwise and sequential-counter).
* :mod:`repro.smt.csp` -- a finite-domain integer layer ("mini SMT"): integer
  variables with direct + order encoding, difference constraints and
  cardinality constraints, with model enumeration. This is the interface the
  time solver and the SAT-MapIt-style baseline are written against.
"""

from repro.smt.cnf import CNF, VariablePool, TRUE_LIT, FALSE_LIT
from repro.smt.sat import SATSolver, SolveStatus, SolveResult, solve_brute_force
from repro.smt.cardinality import (
    at_most_one,
    at_least_one,
    exactly_one,
    at_most_k,
    at_least_k,
    exactly_k,
)
from repro.smt.csp import FiniteDomainProblem, IntVar, FDSolution

__all__ = [
    "CNF",
    "VariablePool",
    "TRUE_LIT",
    "FALSE_LIT",
    "SATSolver",
    "SolveStatus",
    "SolveResult",
    "solve_brute_force",
    "at_most_one",
    "at_least_one",
    "exactly_one",
    "at_most_k",
    "at_least_k",
    "exactly_k",
    "FiniteDomainProblem",
    "IntVar",
    "FDSolution",
]
