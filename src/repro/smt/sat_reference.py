"""The pre-rewrite CDCL solver, kept as a differential-testing oracle.

This is the object/dict-shaped CDCL kernel that powered the SMT layer before
the flat-arena rewrite (:mod:`repro.smt.sat`). It is retained verbatim --
same constraint semantics, same public contract (incremental solving,
assumptions with failed cores, clause-footprint push/pop with variable
rollback) -- so that

* the differential property suite (``tests/test_solver_differential.py``)
  can prove the rewritten kernel returns identical statuses on random CNF
  and on real time-phase instances, and
* ``benchmarks/bench_solver.py`` can measure the end-to-end speedup of the
  flat-arena kernel against this exact code (the recorded
  ``BENCH_solver.json`` baseline).

Select it at the engine level with ``solver_backend="reference"`` on
:class:`~repro.core.config.MapperConfig` /
:class:`~repro.core.config.BaselineConfig`, or directly with
``FiniteDomainProblem(solver_cls=ReferenceSATSolver)``.

Do not grow this module: performance work happens in :mod:`repro.smt.sat`;
this file only shrinks (and eventually disappears once enough released
versions have validated the arena kernel).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cnf import CNF
from repro.smt.sat import SolveResult, SolveStatus, _luby


class ReferenceSATSolver:
    """CDCL solver over clauses added incrementally (pre-arena kernel).

    Typical usage::

        solver = ReferenceSATSolver()
        solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        result = solver.solve(timeout_seconds=10.0)

    Blocking clauses may be added between ``solve`` calls to enumerate models.
    """

    def __init__(self, perf=None) -> None:
        # ``perf`` mirrors the arena kernel's constructor so either class
        # can back a FiniteDomainProblem; counters are folded in once per
        # solve call (cold path), the hot loop is untouched pre-rewrite code.
        self.perf = perf
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.assign: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[int]] = [None]
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._unit_clauses: List[int] = []
        self._push_stack: List[Tuple[int, int, int, bool, int]] = []
        # VSIDS order heap with lazy (possibly stale) entries; rebuilt on
        # activity rescale. Keeps branching O(log n) instead of a linear
        # scan, which matters once one incremental solver carries the
        # formula of a whole II sweep.
        self._order_heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        var = self.num_vars
        self.watches.setdefault(var, [])
        self.watches.setdefault(-var, [])
        heapq.heappush(self._order_heap, (0.0, var))
        return var

    def boost_activity(self, var: int, activity: float) -> None:
        """Raise a variable's activity to at least ``activity``."""
        if activity > self.activity[var]:
            self.activity[var] = activity
            heapq.heappush(self._order_heap, (-activity, var))

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist."""
        while self.num_vars < count:
            self.new_var()

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicates removed, tautologies dropped."""
        clause: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
            self.ensure_vars(abs(lit))
        if not clause:
            self.ok = False
            return
        index = len(self.clauses)
        self.clauses.append(clause)
        if len(clause) == 1:
            self._unit_clauses.append(clause[0])
        else:
            self.watches[clause[0]].append(index)
            self.watches[clause[1]].append(index)

    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        """Bulk entry point (API parity with the arena kernel).

        The pre-rewrite kernel has no fast path; each clause takes the
        ordinary re-validating :meth:`add_clause` route, exactly as every
        sync did before the rewrite.
        """
        for clause in clauses:
            self.add_clause(clause)

    @classmethod
    def from_cnf(cls, cnf: CNF) -> "ReferenceSATSolver":
        solver = cls()
        solver.ensure_vars(cnf.num_vars)
        if cnf.contradiction:
            solver.ok = False
        for clause in cnf.clauses:
            solver.add_clause(clause)
        return solver

    # ------------------------------------------------------------------ #
    # Clause-footprint push/pop
    # ------------------------------------------------------------------ #
    @property
    def scope_depth(self) -> int:
        return len(self._push_stack)

    def push(self) -> None:
        """Mark the clause database and root trail for a later :meth:`pop`.

        Scopes nest. Everything added after the mark -- problem clauses,
        blocking clauses, learnt clauses, *variables*, and root-level
        assignments derived from them -- is retracted by ``pop``; the
        activities and saved phases of surviving variables persist, which
        is what makes scoped re-solving cheap.
        """
        self._cancel_until(0)
        self._push_stack.append(
            (len(self.clauses), len(self._unit_clauses), len(self.trail),
             self.ok, self.num_vars)
        )

    def pop(self) -> None:
        """Retract every clause, variable, and root assignment since push."""
        if not self._push_stack:
            raise RuntimeError("pop() without matching push()")
        num_clauses, num_units, trail_len, ok, num_vars = self._push_stack.pop()
        self._cancel_until(0)
        for lit in self.trail[trail_len:]:
            var = abs(lit)
            self.phase[var] = self.assign[var]
            self.assign[var] = None
            self.reason[var] = None
            self.level[var] = 0
        del self.trail[trail_len:]
        del self.clauses[num_clauses:]
        del self._unit_clauses[num_units:]
        if self.num_vars > num_vars:
            # scope-local variables die with the scope; without this the
            # solver would keep deciding thousands of unconstrained
            # leftovers on every later solve
            del self.assign[num_vars + 1:]
            del self.level[num_vars + 1:]
            del self.reason[num_vars + 1:]
            del self.activity[num_vars + 1:]
            del self.phase[num_vars + 1:]
            self.num_vars = num_vars
        self.ok = ok
        self.qhead = 0
        self._rebuild_watches()
        self._rebuild_order_heap()

    def _rebuild_watches(self) -> None:
        self.watches = {}
        for var in range(1, self.num_vars + 1):
            self.watches[var] = []
            self.watches[-var] = []
        for index, clause in enumerate(self.clauses):
            if len(clause) >= 2:
                self.watches[clause[0]].append(index)
                self.watches[clause[1]].append(index)

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> Optional[bool]:
        val = self.assign[abs(lit)]
        if val is None:
            return None
        return val if lit > 0 else not val

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.trail.append(lit)

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.phase[var] = self.assign[var]  # phase saving
            self.assign[var] = None
            self.reason[var] = None
            heapq.heappush(self._order_heap, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            neg = -lit
            watchlist = self.watches[neg]
            kept: List[int] = []
            i = 0
            n = len(watchlist)
            while i < n:
                ci = watchlist[i]
                i += 1
                clause = self.clauses[ci]
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_val = self._value(first)
                if first_val is True:
                    kept.append(ci)
                    continue
                found = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches[clause[1]].append(ci)
                        found = True
                        break
                if found:
                    continue
                kept.append(ci)
                if first_val is False:
                    kept.extend(watchlist[i:])
                    self.watches[neg] = kept
                    return ci
                self._enqueue(first, ci)
            self.watches[neg] = kept
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._rebuild_order_heap()
        else:
            heapq.heappush(self._order_heap, (-self.activity[var], var))

    def _rebuild_order_heap(self) -> None:
        self._order_heap = [
            (-self.activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self.assign[v] is None
        ]
        heapq.heapify(self._order_heap)

    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        current_level = self._decision_level()
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self.trail) - 1
        clause_index = conflict_index
        while True:
            clause = self.clauses[clause_index]
            start = 0 if p is None else 1
            for j in range(start, len(clause)):
                q = clause[j]
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            var = abs(p)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause_index = self.reason[var]
        learnt_clause = [-p] + learnt
        if len(learnt_clause) == 1:
            backtrack = 0
        else:
            backtrack = max(self.level[abs(q)] for q in learnt_clause[1:])
        return learnt_clause, backtrack

    def _attach_learnt(self, learnt: List[int]) -> None:
        """Record a learnt clause and enqueue its asserting literal."""
        if len(learnt) == 1:
            self._cancel_until(0)
            if self._value(learnt[0]) is False:
                self.ok = False
                return
            if self._value(learnt[0]) is None:
                self._enqueue(learnt[0], None)
            self.clauses.append(learnt)
            return
        # position 1 must hold a literal of the backtrack level for watching
        max_index = 1
        for j in range(2, len(learnt)):
            if self.level[abs(learnt[j])] > self.level[abs(learnt[max_index])]:
                max_index = j
        learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
        index = len(self.clauses)
        self.clauses.append(learnt)
        self.watches[learnt[0]].append(index)
        self.watches[learnt[1]].append(index)
        self._enqueue(learnt[0], index)

    def _analyze_final(self, failed: int) -> List[int]:
        """Failed-assumption core: assumptions implying ``not failed``.

        ``failed`` is an assumption literal found false while placing the
        assumption prefix. Walking the trail top-down through the reasons
        collects the (subset of) assumption decisions responsible, exactly
        like MiniSat's ``analyzeFinal``.
        """
        core = [failed]
        if self._decision_level() == 0 or not self.trail_lim:
            return core
        seen = [False] * (self.num_vars + 1)
        seen[abs(failed)] = True
        for lit in reversed(self.trail[self.trail_lim[0]:]):
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self.reason[var]
            if reason is None:
                core.append(lit)  # an assumption decision
            else:
                for q in self.clauses[reason][1:]:
                    if self.level[abs(q)] > 0:
                        seen[abs(q)] = True
            seen[var] = False
        return core

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        heap = self._order_heap
        while heap:
            neg_activity, var = heapq.heappop(heap)
            if self.assign[var] is not None:
                continue  # stale entry of an assigned variable
            if -neg_activity < self.activity[var]:
                # stale priority (bumped since push): requeue correctly
                heapq.heappush(heap, (-self.activity[var], var))
                continue
            return var
        # Safety net -- the lazy heap should never run dry while unassigned
        # variables remain, but a linear scan keeps the solver complete.
        for var in range(1, self.num_vars + 1):
            if self.assign[var] is None:
                return var
        return None

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(
        self,
        timeout_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        assumptions: Optional[Sequence[int]] = None,
    ) -> SolveResult:
        """Run the CDCL search (see :meth:`_solve_inner` for the loop)."""
        start = time.monotonic()
        result = self._solve_inner(timeout_seconds, max_conflicts, assumptions)
        perf = self.perf
        if perf is not None:
            perf.solve_calls += 1
            perf.conflicts += result.conflicts
            perf.decisions += result.decisions
            perf.propagations += result.propagations
            perf.solve_seconds += time.monotonic() - start
        return result

    def _solve_inner(
        self,
        timeout_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        assumptions: Optional[Sequence[int]] = None,
    ) -> SolveResult:
        """Run the CDCL search, optionally under assumption literals.

        Assumptions are placed as the first decisions (one decision level
        each) and hold for this call only; clauses learnt while they are in
        force mention their negations where needed, so the clause database
        stays valid for later calls with different assumptions. If the
        assumptions are inconsistent with the formula the result is UNSAT
        with :attr:`SolveResult.core` set, and the solver remains usable.

        Returns a :class:`SolveResult` whose status is ``UNKNOWN`` if the
        timeout or conflict budget was exhausted before a decision was made.
        """
        start = time.monotonic()
        assumption_list = list(assumptions) if assumptions else []
        for lit in assumption_list:
            if lit == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        if not self.ok:
            return SolveResult(SolveStatus.UNSAT, elapsed_seconds=0.0)
        self._cancel_until(0)
        # assert root-level units
        for lit in self._unit_clauses:
            val = self._value(lit)
            if val is False:
                return SolveResult(SolveStatus.UNSAT,
                                   elapsed_seconds=time.monotonic() - start)
            if val is None:
                self._enqueue(lit, None)
        # Re-propagate the whole root-level trail so that clauses added since
        # the previous solve call (e.g. blocking clauses) are taken into
        # account even when their literals were already assigned at level 0.
        self.qhead = 0
        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count)
        conflicts_in_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_in_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return SolveResult(
                        SolveStatus.UNSAT,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                        elapsed_seconds=time.monotonic() - start,
                    )
                learnt, backtrack_level = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self._attach_learnt(learnt)
                if not self.ok:
                    return SolveResult(
                        SolveStatus.UNSAT,
                        conflicts=self.conflicts,
                        elapsed_seconds=time.monotonic() - start,
                    )
                self.var_inc *= self.var_decay
                continue
            # no conflict
            if timeout_seconds is not None and self.conflicts % 64 == 0:
                if time.monotonic() - start > timeout_seconds:
                    return SolveResult(
                        SolveStatus.UNKNOWN,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                        elapsed_seconds=time.monotonic() - start,
                    )
            if max_conflicts is not None and self.conflicts >= max_conflicts:
                return SolveResult(
                    SolveStatus.UNKNOWN,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=time.monotonic() - start,
                )
            if conflicts_in_restart >= conflicts_until_restart:
                restart_count += 1
                conflicts_in_restart = 0
                conflicts_until_restart = 100 * _luby(restart_count)
                self._cancel_until(0)
                continue
            # Place the next assumption (restarts and backjumps may have
            # removed earlier ones; they are simply re-placed here).
            next_assumption = None
            assumption_failed = None
            while (
                self._decision_level() < len(assumption_list)
                and next_assumption is None
            ):
                candidate = assumption_list[self._decision_level()]
                value = self._value(candidate)
                if value is True:
                    self.trail_lim.append(len(self.trail))  # dummy level
                elif value is False:
                    assumption_failed = candidate
                    break
                else:
                    next_assumption = candidate
            if assumption_failed is not None:
                core = self._analyze_final(assumption_failed)
                self._cancel_until(0)
                return SolveResult(
                    SolveStatus.UNSAT,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=time.monotonic() - start,
                    core=core,
                )
            if next_assumption is not None:
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(next_assumption, None)
                continue
            var = self._pick_branch_variable()
            if var is None:
                model = {
                    v: bool(self.assign[v])
                    for v in range(1, self.num_vars + 1)
                    if self.assign[v] is not None
                }
                # unassigned variables (none should remain) default to False
                for v in range(1, self.num_vars + 1):
                    model.setdefault(v, False)
                return SolveResult(
                    SolveStatus.SAT,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=time.monotonic() - start,
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)
