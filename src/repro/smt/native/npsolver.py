"""The numpy solver tier: vectorised cold paths over the arena sidecars.

:class:`NumpySATSolver` inherits the full pure-Python CDCL hot loop (so
bit-identity with the arena tier is structural, not re-proven), and
vectorises the two cold-path scans whose cost grows with the clause
database and variable count rather than with the trail:

* reduce-DB candidate selection -- the learnt/live/long/non-glue filter
  and the (high LBD, low activity, low index) total order become one
  boolean mask plus one ``np.lexsort`` over the clause sidecar arrays;
* the VSIDS order-heap rebuild after a ``pop`` -- the unassigned-variable
  scan becomes a vectorised mask.

Both produce exactly the sequences the parent's Python loops produce (the
lexsort keys mirror the stable-sort key tuple), so every backend
observable is unchanged; ``tests/test_solver_differential.py`` holds the
tiers to that.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..sat import GLUE_LBD, SATSolver


class NumpySATSolver(SATSolver):
    """Flat-arena CDCL solver with numpy-vectorised cold-path scans."""

    def _reduce_doomed(self) -> List[int]:
        n = len(self.c_off)
        if not n:
            return []
        learnt = np.frombuffer(self.c_learnt, dtype=np.uint8, count=n)
        dead = np.frombuffer(self.c_dead, dtype=np.uint8, count=n)
        size = np.frombuffer(self.c_size, dtype=np.intc, count=n)
        lbd = np.frombuffer(self.c_lbd, dtype=np.intc, count=n)
        mask = (learnt != 0) & (dead == 0) & (size > 2) & (lbd > GLUE_LBD)
        candidates = np.flatnonzero(mask)
        if not candidates.size:
            return []
        arena = self.arena
        c_off = self.c_off
        vals = self.vals
        reason = self.reason
        unlocked = []
        for ci in candidates.tolist():
            lit0 = arena[c_off[ci]]
            var = lit0 if lit0 > 0 else -lit0
            if vals[lit0] > 0 and reason[var] == ci:
                continue
            unlocked.append(ci)
        if not unlocked:
            return []
        idx = np.asarray(unlocked, dtype=np.intp)
        act = np.asarray([self.c_act[ci] for ci in unlocked], dtype=np.float64)
        # primary: high LBD first; tie: low activity; tie: low index --
        # identical to the parent's stable sort by (-lbd, act) over
        # ascending clause indices
        order = np.lexsort((idx, act, -lbd[idx]))
        doomed = idx[order[: idx.size // 2]]
        return doomed.tolist()

    def _rebuild_order_heap(self) -> None:
        num_vars = self.num_vars
        vals = np.asarray(self.vals[1:num_vars + 1], dtype=np.intc)
        unassigned = np.flatnonzero(vals == 0) + 1
        activity = self.activity
        heap = [(-activity[v], v) for v in unassigned.tolist()]
        heapq.heapify(heap)
        member = bytearray(b"\x01" * (num_vars + 1))
        for lit in self.trail:
            member[lit if lit > 0 else -lit] = 0
        self._order_heap = heap
        self._heap_member = member
