"""Tier selection for the ``native`` solver backend.

``solver_backend="native"`` is a *request for the fastest available
implementation* of the arena CDCL solver, not a single implementation:

1. ``native-c`` -- the cffi-compiled C kernel (:mod:`.ckernel` /
   :mod:`.csolver`), built lazily on first use and cached on disk;
2. ``numpy`` -- the vectorised cold-path tier (:mod:`.npsolver`);
3. ``arena`` -- the pure-Python flat-arena solver itself.

Each tier is described by a :class:`NativeKernel` and produces results
bit-identical to the arena solver (statuses, failed cores, enumeration
model sets, statistics), so degrading is silent and safe. Selection
happens at solve time, never at import or listing time -- probing the C
tier compiles the extension, which ``repro-map list`` must not trigger.

``REPRO_NATIVE_TIER`` overrides the selection order: ``c``, ``numpy`` or
``arena`` force a tier (raising if it is unavailable, for CI and
differential tests), ``auto`` (or unset) keeps the default order.
"""

from __future__ import annotations

import importlib.util
import os
from typing import List, Optional, Type

from repro.obs import metrics

from ..sat import SATSolver
from . import ckernel

__all__ = [
    "NativeKernel",
    "KERNEL_TIERS",
    "selected_tier",
    "native_solver_class",
    "tier_solver_class",
    "tier_names",
    "resolved_tier",
]


class NativeKernel:
    """One implementation tier of the native solver backend."""

    #: tier name as reported in stats and accepted by REPRO_NATIVE_TIER
    name: str = ""

    def available(self) -> bool:
        raise NotImplementedError

    def unavailable_reason(self) -> Optional[str]:
        """Why :meth:`available` is False (None when available)."""
        return None if self.available() else "unavailable"

    def solver_class(self) -> Type[SATSolver]:
        raise NotImplementedError


class _CKernel(NativeKernel):
    name = "native-c"

    def available(self) -> bool:
        return ckernel.load_kernel() is not None

    def unavailable_reason(self) -> Optional[str]:
        if self.available():
            return None
        return ckernel.kernel_error() or "C kernel unavailable"

    def solver_class(self) -> Type[SATSolver]:
        from .csolver import CSATSolver

        return CSATSolver


class _NumpyKernel(NativeKernel):
    name = "numpy"

    def available(self) -> bool:
        return importlib.util.find_spec("numpy") is not None

    def unavailable_reason(self) -> Optional[str]:
        return None if self.available() else "numpy is not installed"

    def solver_class(self) -> Type[SATSolver]:
        from .npsolver import NumpySATSolver

        return NumpySATSolver


class _ArenaKernel(NativeKernel):
    name = "arena"

    def available(self) -> bool:
        return True

    def solver_class(self) -> Type[SATSolver]:
        return SATSolver


#: selection order, best first; "arena" is the always-available floor
KERNEL_TIERS: List[NativeKernel] = [
    _CKernel(),
    _NumpyKernel(),
    _ArenaKernel(),
]

_ENV_VAR = "REPRO_NATIVE_TIER"
_ENV_ALIASES = {
    "c": "native-c",
    "native-c": "native-c",
    "numpy": "numpy",
    "arena": "arena",
}


def tier_names() -> List[str]:
    """Tier names in selection order (no availability probing)."""
    return [tier.name for tier in KERNEL_TIERS]


def _tier_by_name(name: str) -> NativeKernel:
    for tier in KERNEL_TIERS:
        if tier.name == name:
            return tier
    raise ValueError(
        f"unknown native solver tier {name!r}; "
        f"expected one of {', '.join(tier_names())}"
    )


def _forced_tier() -> Optional[NativeKernel]:
    raw = os.environ.get(_ENV_VAR, "").strip().lower()
    if not raw or raw == "auto":
        return None
    if raw not in _ENV_ALIASES:
        raise ValueError(
            f"{_ENV_VAR}={raw!r} is not a valid tier; expected "
            "'c', 'numpy', 'arena' or 'auto'"
        )
    tier = _tier_by_name(_ENV_ALIASES[raw])
    if not tier.available():
        raise RuntimeError(
            f"{_ENV_VAR}={raw!r} forces the {tier.name!r} tier, "
            f"which is unavailable: {tier.unavailable_reason()}"
        )
    return tier


def _select() -> NativeKernel:
    forced = _forced_tier()
    if forced is not None:
        metrics.inc("repro_solver_tier_selected_total", tier=forced.name)
        return forced
    for index, tier in enumerate(KERNEL_TIERS):
        if tier.available():
            metrics.inc("repro_solver_tier_selected_total", tier=tier.name)
            if index > 0:
                # a better tier exists but could not be used (C kernel
                # unbuildable, numpy missing): a silent-but-safe downgrade
                # worth counting
                metrics.inc("repro_solver_tier_degradations_total")
            return tier
    return KERNEL_TIERS[-1]  # pragma: no cover - arena is always available


def selected_tier() -> str:
    """Name of the tier ``solver_backend="native"`` resolves to.

    May compile the C extension on first call; call only when actually
    solving (or explicitly probing), never from listing code paths.
    """
    return _select().name


def resolved_tier(backend) -> Optional[str]:
    """Tier name a ``solver_backend`` value resolves to, or ``None``.

    ``"native"`` resolves to the selected tier (this may compile the C
    extension, so only call from solving code paths); the explicit tier
    spellings resolve to themselves; every other backend -- including the
    plain arena and reference kernels -- returns ``None`` because no tier
    selection takes place.
    """
    if backend == "native":
        return selected_tier()
    if backend in ("native-c", "numpy"):
        return str(backend)
    return None


def native_solver_class() -> Type[SATSolver]:
    """Solver class for the best available tier (may compile)."""
    return _select().solver_class()


def tier_solver_class(name: str) -> Type[SATSolver]:
    """Solver class for an explicitly named tier.

    Raises :class:`RuntimeError` when the tier exists but is unavailable
    (used by the differential backend matrix to fail loudly rather than
    silently testing a fallback).
    """
    tier = _tier_by_name(name)
    if not tier.available():
        raise RuntimeError(
            f"native solver tier {name!r} is unavailable: "
            f"{tier.unavailable_reason()}"
        )
    return tier.solver_class()
