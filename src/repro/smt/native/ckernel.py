"""cffi build/load machinery for the compiled CDCL search kernel.

The C source below is a literal transcription of
:meth:`repro.smt.sat.SATSolver._search` -- the propagate / analyze /
backjump / reduce hot loop -- over the *same* flat-arena state layout.
Bit-identity with the Python loop is a hard requirement (failed
assumption cores and enumeration orders are search-order dependent), so
the kernel replicates everything observable: watch-list order, the
first-UIP literal discovery order, VSIDS float arithmetic (IEEE-754
doubles on both sides), the Glucose reduce-DB sort order, Luby restarts
with trail-depth blocking, and chronological backtracking.

The extension module is compiled lazily on first use with ``cffi`` in
API mode, keyed by a hash of the source so stale caches are never
loaded, and cached under (in order) ``$REPRO_NATIVE_BUILD_DIR``,
``~/.cache/repro/native``, or a per-user temp directory. Every failure
mode -- no cffi, no C compiler, unwritable cache -- degrades by
returning ``None`` from :func:`load_kernel`; the caller falls back to
the numpy or pure-Python tier.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import tempfile
import threading
from typing import Any, Optional, Tuple

CDEF = """
typedef struct {
    int num_vars;
    int nclauses;
    const int *c_off;
    const int *c_size;
    const unsigned char *c_learnt;
    const unsigned char *c_dead;
    const int *c_lbd;
    const double *c_act;
    int arena_len;
    const int *arena;
    int vals_len;
    int *vals;
    const int *w_counts;
    const int *w_flat;
    const int *b_counts;
    const int *b_flat;
    const int *w_starts;
    const int *b_starts;
    int *level;
    int *reason;
    double *activity;
    unsigned char *phase;
    int trail_len;
    const int *trail;
    int ntrail_lim;
    const int *trail_lim;
    int qhead;
    double var_inc;
    double cla_inc;
    int num_learnts;
    long long conflicts_since_reduce;
    long long reduce_interval;
    int chrono_threshold;
    int nassumps;
    const int *assumps;
    int nscopes;
    const int *scope_marks;
    int log_enabled;
    double time_budget;
    long long max_conflicts;
    int detailed;
    int propagated_clauses;
    int propagated_trail;
} repro_in_t;

typedef struct {
    int status;
    int failed_lit;
    long long conflicts;
    long long decisions;
    long long propagations;
    long long chrono_backtracks;
    long long learnts;
    long long glue_learnts;
    long long learnts_deleted;
    long long reductions;
    long long restarts;
    double propagate_seconds;
    double analyze_seconds;
    double reduce_seconds;
    double var_inc;
    double cla_inc;
    int num_learnts;
    long long conflicts_since_reduce;
    long long reduce_interval;
    int qhead;
    int trail_len;
    int ntrail_lim;
    int propagated_clauses;
    int propagated_trail;
    int new_clauses;
    int new_arena_len;
    const int *new_c_off;
    const int *new_c_size;
    const int *new_c_lbd;
    const unsigned char *new_c_learnt;
    const unsigned char *new_c_dead;
    const double *new_c_act;
    const int *new_arena;
    const int *trail;
    const int *trail_lim;
    int n_dirty;
    const int *dirty_lits;
    const int *w_start;
    const int *w_flat;
    const int *b_start;
    const int *b_flat;
    int log_len;
    const int *log;
    const long long *scope_dead;
    void *own[24];
    int nown;
} repro_out_t;

int repro_search(const repro_in_t *in, repro_out_t *out);
void repro_release(repro_out_t *out);
"""

SOURCE = r"""
#include <stdlib.h>
#include <string.h>
#include <setjmp.h>
#include <time.h>

""" + CDEF + r"""

#define ST_SAT 0
#define ST_UNSAT_ROOT 1
#define ST_UNSAT_ATTACH 2
#define ST_TIMEOUT 3
#define ST_CONFLICT_BUDGET 4
#define ST_ASSUMPTION_FAILED 5
#define ST_OOM (-1)

#define GLUE_LBD 2
#define REDUCE_INCREMENT 300
#define VAR_DECAY (1.0 / 0.95)
#define CLA_DECAY (1.0 / 0.999)

static double now_sec(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

static long long luby(long long index) {
    long long size = 1;
    int seq = 0;
    while (size < index + 1) { seq++; size = 2 * size + 1; }
    while (size - 1 != index) {
        size = (size - 1) / 2;
        seq--;
        index = index % size;
    }
    return 1LL << seq;
}

typedef struct { int *d; int n; int cap; } veci;

typedef struct {
    jmp_buf env;
    /* ---- python-owned buffers, mutated in place ---- */
    int *vals; int vals_len;
    int *level; int *reason;
    double *activity; unsigned char *phase;
    /* ---- clause store: copy of the base plus growth room ---- */
    int *c_off; int *c_size; int *c_lbd;
    unsigned char *c_learnt; unsigned char *c_dead;
    double *c_act;
    int nclauses; int c_cap;
    int *arena; int arena_len; int arena_cap;
    /* ---- watches: one vector per literal slot ---- */
    veci *watches; veci *bwatch;              /* bwatch holds (other, ci) */
    unsigned char *wdirty; unsigned char *bdirty;
    int nslots;
    /* ---- trail ---- */
    int *trail; int trail_len;
    int *trail_lim; int ntrail_lim;
    int qhead;
    /* ---- VSIDS heap (lazy, possibly stale entries) ---- */
    double *h_act; int *h_var; int h_n; int h_cap;
    unsigned char *member;
    /* ---- analysis scratch ---- */
    unsigned char *seen;
    int *learnt; int *to_clear;
    int *lbd_stamp; int lbd_counter;
    /* ---- watch log / scopes ---- */
    veci log; int log_enabled;
    int nscopes; const int *scope_marks; long long *scope_dead;
    /* ---- numeric search state ---- */
    double var_inc, cla_inc;
    int num_vars, num_learnts;
    long long conflicts_since_reduce, reduce_interval;
    int chrono_threshold;
    int okflag;
    int failed_lit;
    int propagated_clauses, propagated_trail;
    /* ---- counters ---- */
    long long conflicts, decisions, propagations, chrono_backtracks;
    long long learnts_c, glue_c, deleted_c, reductions_c, restarts_c;
    double propagate_seconds, analyze_seconds, reduce_seconds;
    int detailed;
} S;

#define VAL(s, l) ((s)->vals[(l) >= 0 ? (l) : (s)->vals_len + (l)])
#define SLOT(s, l) ((l) > 0 ? (l) : (s)->num_vars - (l))

static void *xmalloc(S *s, size_t n) {
    void *p = malloc(n ? n : 1);
    if (!p) longjmp(s->env, 1);
    return p;
}

static void *xcalloc(S *s, size_t n, size_t sz) {
    void *p = calloc(n ? n : 1, sz);
    if (!p) longjmp(s->env, 1);
    return p;
}

static void veci_push(S *s, veci *v, int x) {
    if (v->n == v->cap) {
        int nc = v->cap ? v->cap * 2 : 4;
        int *nd = (int *)realloc(v->d, (size_t)nc * sizeof(int));
        if (!nd) longjmp(s->env, 1);
        v->d = nd;
        v->cap = nc;
    }
    v->d[v->n++] = x;
}

/* ------------------------------------------------------------------ */
/* VSIDS heap: max-heap on (activity, smaller var wins ties), exactly  */
/* the order of python's min-heap of (-activity, var) tuples.          */
/* ------------------------------------------------------------------ */
static int heap_before(double aa, int av, double ba, int bv) {
    return aa > ba || (aa == ba && av < bv);
}

static void heap_push(S *s, double act, int var) {
    if (s->h_n == s->h_cap) {
        int nc = s->h_cap ? s->h_cap * 2 : 16;
        double *na = (double *)realloc(s->h_act, (size_t)nc * sizeof(double));
        int *nv = (int *)realloc(s->h_var, (size_t)nc * sizeof(int));
        if (!na || !nv) { free(na); longjmp(s->env, 1); }
        s->h_act = na;
        s->h_var = nv;
        s->h_cap = nc;
    }
    int i = s->h_n++;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (heap_before(act, var, s->h_act[parent], s->h_var[parent])) {
            s->h_act[i] = s->h_act[parent];
            s->h_var[i] = s->h_var[parent];
            i = parent;
        } else {
            break;
        }
    }
    s->h_act[i] = act;
    s->h_var[i] = var;
}

static int heap_pop(S *s, double *act_out) {
    /* caller guarantees h_n > 0 */
    double act = s->h_act[0];
    int var = s->h_var[0];
    s->h_n--;
    if (s->h_n) {
        double la = s->h_act[s->h_n];
        int lv = s->h_var[s->h_n];
        int i = 0;
        for (;;) {
            int l = 2 * i + 1, r = l + 1, best = i;
            double ba = la; int bv = lv;
            if (l < s->h_n && heap_before(s->h_act[l], s->h_var[l], ba, bv)) {
                best = l; ba = s->h_act[l]; bv = s->h_var[l];
            }
            if (r < s->h_n && heap_before(s->h_act[r], s->h_var[r], ba, bv)) {
                best = r; ba = s->h_act[r]; bv = s->h_var[r];
            }
            if (best == i) break;
            s->h_act[i] = s->h_act[best];
            s->h_var[i] = s->h_var[best];
            i = best;
        }
        s->h_act[i] = la;
        s->h_var[i] = lv;
    }
    *act_out = act;
    return var;
}

static void rebuild_heap(S *s) {
    s->h_n = 0;
    for (int v = 1; v <= s->num_vars; v++) {
        if (s->vals[v] == 0) heap_push(s, s->activity[v], v);
    }
    memset(s->member + 1, 1, (size_t)s->num_vars);
    for (int i = 0; i < s->trail_len; i++) {
        int lit = s->trail[i];
        s->member[lit > 0 ? lit : -lit] = 0;
    }
}

/* ------------------------------------------------------------------ */
/* Assignment management                                               */
/* ------------------------------------------------------------------ */
static void enqueue_cold(S *s, int lit, int reason_ci) {
    int var = lit > 0 ? lit : -lit;
    VAL(s, lit) = 1;
    VAL(s, -lit) = -1;
    s->level[var] = s->ntrail_lim;
    s->reason[var] = reason_ci;
    s->trail[s->trail_len++] = lit;
}

static void cancel_until(S *s, int target) {
    if (s->ntrail_lim <= target) return;
    int limit = s->trail_lim[target];
    for (int i = s->trail_len - 1; i >= limit; i--) {
        int lit = s->trail[i];
        int var = lit > 0 ? lit : -lit;
        s->phase[var] = lit > 0;
        VAL(s, lit) = 0;
        VAL(s, -lit) = 0;
        s->reason[var] = -1;
        if (!s->member[var]) {
            s->member[var] = 1;
            heap_push(s, s->activity[var], var);
        }
    }
    s->trail_len = limit;
    s->ntrail_lim = target;
    s->qhead = limit;
}

/* ------------------------------------------------------------------ */
/* Activities                                                          */
/* ------------------------------------------------------------------ */
static void bump(S *s, int var) {
    double act = s->activity[var] + s->var_inc;
    s->activity[var] = act;
    if (act > 1e100) {
        for (int v = 1; v <= s->num_vars; v++) s->activity[v] *= 1e-100;
        s->var_inc *= 1e-100;
        rebuild_heap(s);
    } else {
        s->member[var] = 1;
        heap_push(s, act, var);
    }
}

static void bump_clause(S *s, int ci) {
    double act = s->c_act[ci] + s->cla_inc;
    s->c_act[ci] = act;
    if (act > 1e20) {
        for (int k = 0; k < s->nclauses; k++) s->c_act[k] *= 1e-20;
        s->cla_inc *= 1e-20;
    }
}

/* ------------------------------------------------------------------ */
/* Clause attachment                                                   */
/* ------------------------------------------------------------------ */
static void w_push(S *s, int lit, int ci) {
    int slot = SLOT(s, lit);
    veci_push(s, &s->watches[slot], ci);
    s->wdirty[slot] = 1;
}

static int attach_clause(S *s, const int *lits, int n, int lbd) {
    /* learnt clauses only: the search never creates problem clauses */
    if (s->nclauses == s->c_cap) {
        int nc = s->c_cap + s->c_cap / 2 + 1024;
        s->c_off = (int *)realloc(s->c_off, (size_t)nc * sizeof(int));
        s->c_size = (int *)realloc(s->c_size, (size_t)nc * sizeof(int));
        s->c_lbd = (int *)realloc(s->c_lbd, (size_t)nc * sizeof(int));
        s->c_learnt = (unsigned char *)realloc(s->c_learnt, (size_t)nc);
        s->c_dead = (unsigned char *)realloc(s->c_dead, (size_t)nc);
        s->c_act = (double *)realloc(s->c_act, (size_t)nc * sizeof(double));
        if (!s->c_off || !s->c_size || !s->c_lbd || !s->c_learnt
                || !s->c_dead || !s->c_act)
            longjmp(s->env, 1);
        s->c_cap = nc;
    }
    if (s->arena_len + n > s->arena_cap) {
        int nc = s->arena_cap + s->arena_cap / 2 + 65536;
        int *na = (int *)realloc(s->arena, (size_t)nc * sizeof(int));
        if (!na) longjmp(s->env, 1);
        s->arena = na;
        s->arena_cap = nc;
    }
    int idx = s->nclauses++;
    s->c_off[idx] = s->arena_len;
    s->c_size[idx] = n;
    s->c_learnt[idx] = 1;
    s->c_dead[idx] = 0;
    s->c_lbd[idx] = lbd;
    s->c_act[idx] = 0.0;
    memcpy(s->arena + s->arena_len, lits, (size_t)n * sizeof(int));
    s->arena_len += n;
    if (n == 2) {
        int a = lits[0], b = lits[1];
        int sa = SLOT(s, a), sb = SLOT(s, b);
        veci_push(s, &s->bwatch[sa], b);
        veci_push(s, &s->bwatch[sa], idx);
        veci_push(s, &s->bwatch[sb], a);
        veci_push(s, &s->bwatch[sb], idx);
        s->bdirty[sa] = 1;
        s->bdirty[sb] = 1;
        if (s->log_enabled) {
            veci_push(s, &s->log, a);
            veci_push(s, &s->log, b);
        }
    } else if (n >= 3) {
        w_push(s, lits[0], idx);
        w_push(s, lits[1], idx);
        if (s->log_enabled) {
            veci_push(s, &s->log, lits[0]);
            veci_push(s, &s->log, lits[1]);
        }
    }
    s->num_learnts++;
    s->learnts_c++;
    if (lbd <= GLUE_LBD) s->glue_c++;
    return idx;
}

static int learnt_lbd(S *s, const int *lits, int n) {
    s->lbd_counter++;
    int count = 0;
    for (int i = 0; i < n; i++) {
        int q = lits[i];
        int lv = s->level[q > 0 ? q : -q];
        if (s->lbd_stamp[lv] != s->lbd_counter) {
            s->lbd_stamp[lv] = s->lbd_counter;
            count++;
        }
    }
    return count;
}

static void attach_learnt(S *s, int *lits, int n) {
    if (n == 1) {
        cancel_until(s, 0);
        int val = VAL(s, lits[0]);
        if (val < 0) {
            s->okflag = 0;
            return;
        }
        if (val == 0) enqueue_cold(s, lits[0], -1);
        attach_clause(s, lits, 1, 1);
        return;
    }
    /* position 1 must hold a literal of the backtrack level */
    int max_index = 1;
    int q1 = lits[1];
    int max_level = s->level[q1 > 0 ? q1 : -q1];
    for (int j = 2; j < n; j++) {
        int q = lits[j];
        int lj = s->level[q > 0 ? q : -q];
        if (lj > max_level) {
            max_level = lj;
            max_index = j;
        }
    }
    int tmp = lits[1];
    lits[1] = lits[max_index];
    lits[max_index] = tmp;
    int idx = attach_clause(s, lits, n, learnt_lbd(s, lits, n));
    enqueue_cold(s, lits[0], idx);
}

/* ------------------------------------------------------------------ */
/* First-UIP conflict analysis                                         */
/* ------------------------------------------------------------------ */
static int analyze(S *s, int conflict, int *learnt_len_out) {
    int current_level = s->ntrail_lim;
    int nlearnt = 0;     /* slots 1.. of s->learnt; slot 0 is the UIP */
    int ntoclear = 0;
    int counter = 0;
    int p = 0;
    int index = s->trail_len - 1;
    int ci = conflict;
    int var = 0;
    for (;;) {
        if (s->c_learnt[ci]) bump_clause(s, ci);
        int off = s->c_off[ci];
        int end = off + s->c_size[ci];
        for (int j = off; j < end; j++) {
            int q = s->arena[j];
            if (q == p) continue;
            int v = q > 0 ? q : -q;
            if (!s->seen[v] && s->level[v] > 0) {
                s->seen[v] = 1;
                s->to_clear[ntoclear++] = v;
                bump(s, v);
                if (s->level[v] >= current_level) counter++;
                else s->learnt[++nlearnt] = q;
            }
        }
        for (;;) {
            p = s->trail[index];
            var = p > 0 ? p : -p;
            if (s->seen[var]) break;
            index--;
        }
        s->seen[var] = 0;
        counter--;
        index--;
        if (counter == 0) break;
        ci = s->reason[var];
    }
    for (int i = 0; i < ntoclear; i++) s->seen[s->to_clear[i]] = 0;
    s->learnt[0] = -p;
    int backtrack = 0;
    for (int j = 1; j <= nlearnt; j++) {
        int q = s->learnt[j];
        int lv = s->level[q > 0 ? q : -q];
        if (lv > backtrack) backtrack = lv;
    }
    *learnt_len_out = nlearnt + 1;
    return backtrack;
}

/* ------------------------------------------------------------------ */
/* Glucose-style reduce-DB: tombstone the worst half                   */
/* ------------------------------------------------------------------ */
typedef struct { int lbd; double act; int ci; } reduce_cand_t;

static int reduce_cmp(const void *pa, const void *pb) {
    const reduce_cand_t *a = (const reduce_cand_t *)pa;
    const reduce_cand_t *b = (const reduce_cand_t *)pb;
    /* python: stable sort over ascending ci with key (-lbd, act) */
    if (a->lbd != b->lbd) return a->lbd > b->lbd ? -1 : 1;
    if (a->act != b->act) return a->act < b->act ? -1 : 1;
    return a->ci < b->ci ? -1 : 1;
}

static void reduce_db(S *s) {
    reduce_cand_t *cand = (reduce_cand_t *)
        malloc((size_t)(s->nclauses ? s->nclauses : 1) * sizeof(reduce_cand_t));
    if (!cand) longjmp(s->env, 1);
    int ncand = 0;
    for (int ci = 0; ci < s->nclauses; ci++) {
        if (!s->c_learnt[ci] || s->c_dead[ci] || s->c_size[ci] <= 2
                || s->c_lbd[ci] <= GLUE_LBD)
            continue;
        int lit0 = s->arena[s->c_off[ci]];
        int var = lit0 > 0 ? lit0 : -lit0;
        if (VAL(s, lit0) > 0 && s->reason[var] == ci)
            continue;  /* locked: the reason of a current assignment */
        cand[ncand].lbd = s->c_lbd[ci];
        cand[ncand].act = s->c_act[ci];
        cand[ncand].ci = ci;
        ncand++;
    }
    if (!ncand) { free(cand); return; }
    qsort(cand, (size_t)ncand, sizeof(reduce_cand_t), reduce_cmp);
    int ndoomed = ncand / 2;
    if (!ndoomed) { free(cand); return; }
    for (int i = 0; i < ndoomed; i++) s->c_dead[cand[i].ci] = 1;
    s->num_learnts -= ndoomed;
    if (s->nscopes) {
        for (int i = 0; i < ndoomed; i++) {
            for (int depth = 0; depth < s->nscopes; depth++) {
                if (cand[i].ci < s->scope_marks[depth])
                    s->scope_dead[depth]++;
            }
        }
    }
    free(cand);
    /* purge the long-clause watch lists (binaries are never reduced) */
    for (int slot = 1; slot < s->nslots; slot++) {
        veci *wl = &s->watches[slot];
        int j = 0;
        for (int i = 0; i < wl->n; i++) {
            if (!s->c_dead[wl->d[i]]) wl->d[j++] = wl->d[i];
        }
        if (j != wl->n) {
            wl->n = j;
            s->wdirty[slot] = 1;
        }
    }
    s->deleted_c += ndoomed;
    s->reductions_c++;
}

/* ------------------------------------------------------------------ */
/* The search loop (mirrors SATSolver._search statement for statement) */
/* ------------------------------------------------------------------ */
static int run_search(S *s, const repro_in_t *in) {
    double t_start = now_sec();
    double time_budget = in->time_budget;
    long long max_conflicts = in->max_conflicts;
    int nassumps = in->nassumps;
    const int *assumps = in->assumps;
    long long restart_count = 0;
    long long conflicts_until_restart = 100 * luby(restart_count);
    long long conflicts_in_restart = 0;
    double trail_ema = 0.0;
    long long props = 0;
    double t0 = 0.0;
    for (;;) {
        /* ---------------- unit propagation (inlined) ---------------- */
        if (s->detailed) t0 = now_sec();
        int confl = -1;
        int dl = s->ntrail_lim;
        while (s->qhead < s->trail_len) {
            int lit = s->trail[s->qhead++];
            props++;
            int neg = -lit;
            veci *bw = &s->bwatch[SLOT(s, neg)];
            if (bw->n) {
                int bn = bw->n;
                int *bd = bw->d;
                for (int k = 0; k < bn; k += 2) {
                    int other = bd[k];
                    int bci = bd[k + 1];
                    int val = VAL(s, other);
                    if (val < 0) {
                        confl = bci;
                        break;
                    }
                    if (val == 0) {
                        VAL(s, other) = 1;
                        VAL(s, -other) = -1;
                        int var = other > 0 ? other : -other;
                        s->level[var] = dl;
                        s->reason[var] = bci;
                        s->trail[s->trail_len++] = other;
                    }
                }
                if (confl >= 0) break;
            }
            veci *wl = &s->watches[SLOT(s, neg)];
            int i = 0, j = 0;
            int n = wl->n;
            if (!n) continue;
            while (i < n) {
                int ci = wl->d[i++];
                if (s->c_dead[ci]) continue;
                int off = s->c_off[ci];
                int first = s->arena[off];
                if (first == neg) {
                    first = s->arena[off + 1];
                    s->arena[off] = first;
                    s->arena[off + 1] = neg;
                }
                if (VAL(s, first) > 0) {
                    wl->d[j++] = ci;
                    continue;
                }
                int end = off + s->c_size[ci];
                int found = 0;
                for (int k = off + 2; k < end; k++) {
                    int lk = s->arena[k];
                    if (VAL(s, lk) >= 0) {
                        s->arena[off + 1] = lk;
                        s->arena[k] = neg;
                        w_push(s, lk, ci);
                        if (s->log_enabled) veci_push(s, &s->log, lk);
                        found = 1;
                        break;
                    }
                }
                if (found) continue;
                wl->d[j++] = ci;
                if (VAL(s, first) < 0) {
                    while (i < n) wl->d[j++] = wl->d[i++];
                    confl = ci;
                    break;
                }
                VAL(s, first) = 1;
                VAL(s, -first) = -1;
                int var = first > 0 ? first : -first;
                s->level[var] = dl;
                s->reason[var] = ci;
                s->trail[s->trail_len++] = first;
            }
            if (j != n) {
                wl->n = j;
                s->wdirty[SLOT(s, neg)] = 1;
            }
            if (confl >= 0) break;
        }
        if (s->detailed) s->propagate_seconds += now_sec() - t0;
        /* ------------------------------------------------------------ */
        if (confl >= 0) {
            s->conflicts++;
            conflicts_in_restart++;
            s->conflicts_since_reduce++;
            trail_ema += ((double)s->trail_len - trail_ema) * 0.05;
            s->propagations += props;
            props = 0;
            if (s->ntrail_lim == 0) {
                s->okflag = 0;
                return ST_UNSAT_ROOT;
            }
            int learnt_len;
            int backtrack_level;
            if (s->detailed) {
                t0 = now_sec();
                backtrack_level = analyze(s, confl, &learnt_len);
                s->analyze_seconds += now_sec() - t0;
            } else {
                backtrack_level = analyze(s, confl, &learnt_len);
            }
            if (s->chrono_threshold > 0 && learnt_len > 1
                    && s->ntrail_lim - backtrack_level > s->chrono_threshold) {
                backtrack_level = s->ntrail_lim - 1;
                s->chrono_backtracks++;
            }
            cancel_until(s, backtrack_level);
            attach_learnt(s, s->learnt, learnt_len);
            if (!s->okflag) return ST_UNSAT_ATTACH;
            s->var_inc *= VAR_DECAY;
            s->cla_inc *= CLA_DECAY;
            if (s->conflicts_since_reduce >= s->reduce_interval) {
                s->conflicts_since_reduce = 0;
                s->reduce_interval += REDUCE_INCREMENT;
                if (s->detailed) {
                    t0 = now_sec();
                    reduce_db(s);
                    s->reduce_seconds += now_sec() - t0;
                } else {
                    reduce_db(s);
                }
            }
            continue;
        }
        if (s->ntrail_lim == 0) {
            s->propagated_clauses = s->nclauses;
            s->propagated_trail = s->trail_len;
        }
        if (time_budget >= 0.0 && s->conflicts % 64 == 0) {
            if (now_sec() - t_start > time_budget) {
                s->propagations += props;
                return ST_TIMEOUT;
            }
        }
        if (max_conflicts >= 0 && s->conflicts >= max_conflicts) {
            s->propagations += props;
            return ST_CONFLICT_BUDGET;
        }
        if (conflicts_in_restart >= conflicts_until_restart) {
            if ((double)s->trail_len > 1.4 * trail_ema) {
                conflicts_in_restart = 0;  /* blocked: close to a model */
            } else {
                restart_count++;
                conflicts_in_restart = 0;
                conflicts_until_restart = 100 * luby(restart_count);
                s->restarts_c++;
                cancel_until(s, 0);
                continue;
            }
        }
        if (s->ntrail_lim < nassumps) {
            int next_assumption = 0;
            int assumption_failed = 0;
            while (s->ntrail_lim < nassumps && !next_assumption) {
                int candidate = assumps[s->ntrail_lim];
                int value = VAL(s, candidate);
                if (value > 0) {
                    s->trail_lim[s->ntrail_lim++] = s->trail_len;  /* dummy */
                } else if (value < 0) {
                    assumption_failed = candidate;
                    break;
                } else {
                    next_assumption = candidate;
                }
            }
            if (assumption_failed) {
                s->propagations += props;
                s->failed_lit = assumption_failed;
                return ST_ASSUMPTION_FAILED;
            }
            if (next_assumption) {
                s->decisions++;
                s->trail_lim[s->ntrail_lim++] = s->trail_len;
                VAL(s, next_assumption) = 1;
                VAL(s, -next_assumption) = -1;
                int var = next_assumption > 0
                    ? next_assumption : -next_assumption;
                s->level[var] = s->ntrail_lim;
                s->reason[var] = -1;
                s->trail[s->trail_len++] = next_assumption;
                continue;
            }
        }
        /* ---------------- branching (lazy VSIDS pick) ---------------- */
        int var = 0;
        while (s->h_n) {
            double act;
            int cand = heap_pop(s, &act);
            s->member[cand] = 0;
            if (s->vals[cand] != 0) continue;       /* stale: assigned */
            if (act < s->activity[cand]) {          /* stale priority */
                s->member[cand] = 1;
                heap_push(s, s->activity[cand], cand);
                continue;
            }
            var = cand;
            break;
        }
        if (!var) {
            for (int cand = 1; cand <= s->num_vars; cand++) {
                if (s->vals[cand] == 0) { var = cand; break; }
            }
        }
        if (!var) {
            s->propagations += props;
            return ST_SAT;
        }
        s->decisions++;
        s->trail_lim[s->ntrail_lim++] = s->trail_len;
        int lit = s->phase[var] ? var : -var;
        VAL(s, lit) = 1;
        VAL(s, -lit) = -1;
        s->level[var] = s->ntrail_lim;
        s->reason[var] = -1;
        s->trail[s->trail_len++] = lit;
    }
}

/* ------------------------------------------------------------------ */
/* Marshal in / out                                                    */
/* ------------------------------------------------------------------ */
static void own(repro_out_t *out, void *p) {
    out->own[out->nown++] = p;
}

static void free_state(S *s) {
    free(s->c_off); free(s->c_size); free(s->c_lbd);
    free(s->c_learnt); free(s->c_dead); free(s->c_act);
    free(s->arena);
    if (s->watches) {
        for (int i = 0; i < s->nslots; i++) free(s->watches[i].d);
        free(s->watches);
    }
    if (s->bwatch) {
        for (int i = 0; i < s->nslots; i++) free(s->bwatch[i].d);
        free(s->bwatch);
    }
    free(s->wdirty); free(s->bdirty);
    free(s->trail); free(s->trail_lim);
    free(s->h_act); free(s->h_var); free(s->member);
    free(s->seen); free(s->learnt); free(s->to_clear); free(s->lbd_stamp);
    free(s->log.d);
    free(s->scope_dead);
}

void repro_release(repro_out_t *out) {
    for (int i = 0; i < out->nown; i++) free(out->own[i]);
    out->nown = 0;
}

int repro_search(const repro_in_t *in, repro_out_t *out) {
    S s;
    memset(&s, 0, sizeof(S));
    memset(out, 0, sizeof(repro_out_t));
    if (setjmp(s.env)) {
        free_state(&s);
        repro_release(out);
        return ST_OOM;
    }
    s.num_vars = in->num_vars;
    s.vals = in->vals;
    s.vals_len = in->vals_len;
    s.level = in->level;
    s.reason = in->reason;
    s.activity = in->activity;
    s.phase = in->phase;
    s.detailed = in->detailed;
    s.log_enabled = in->log_enabled;
    s.nscopes = in->nscopes;
    s.scope_marks = in->scope_marks;
    s.chrono_threshold = in->chrono_threshold;
    s.var_inc = in->var_inc;
    s.cla_inc = in->cla_inc;
    s.num_learnts = in->num_learnts;
    s.conflicts_since_reduce = in->conflicts_since_reduce;
    s.reduce_interval = in->reduce_interval;
    s.propagated_clauses = in->propagated_clauses;
    s.propagated_trail = in->propagated_trail;
    s.okflag = 1;
    int n0 = in->nclauses;
    int arena0 = in->arena_len;
    /* clause store: copy of the base plus growth room */
    s.c_cap = n0 + 4096;
    s.arena_cap = arena0 + 65536;
    s.c_off = (int *)xmalloc(&s, (size_t)s.c_cap * sizeof(int));
    s.c_size = (int *)xmalloc(&s, (size_t)s.c_cap * sizeof(int));
    s.c_lbd = (int *)xmalloc(&s, (size_t)s.c_cap * sizeof(int));
    s.c_learnt = (unsigned char *)xmalloc(&s, (size_t)s.c_cap);
    s.c_dead = (unsigned char *)xmalloc(&s, (size_t)s.c_cap);
    s.c_act = (double *)xmalloc(&s, (size_t)s.c_cap * sizeof(double));
    s.arena = (int *)xmalloc(&s, (size_t)s.arena_cap * sizeof(int));
    if (n0) {
        memcpy(s.c_off, in->c_off, (size_t)n0 * sizeof(int));
        memcpy(s.c_size, in->c_size, (size_t)n0 * sizeof(int));
        memcpy(s.c_lbd, in->c_lbd, (size_t)n0 * sizeof(int));
        memcpy(s.c_learnt, in->c_learnt, (size_t)n0);
        memcpy(s.c_dead, in->c_dead, (size_t)n0);
        memcpy(s.c_act, in->c_act, (size_t)n0 * sizeof(double));
    }
    if (arena0) memcpy(s.arena, in->arena, (size_t)arena0 * sizeof(int));
    s.nclauses = n0;
    s.arena_len = arena0;
    /* watch lists from the CSR import */
    s.nslots = 2 * s.num_vars + 1;
    s.watches = (veci *)xcalloc(&s, (size_t)s.nslots, sizeof(veci));
    s.bwatch = (veci *)xcalloc(&s, (size_t)s.nslots, sizeof(veci));
    s.wdirty = (unsigned char *)xcalloc(&s, (size_t)s.nslots, 1);
    s.bdirty = (unsigned char *)xcalloc(&s, (size_t)s.nslots, 1);
    {
        /* without explicit starts the CSR is contiguous in slot order;
           with them (the caller's incremental cache) each slot names its
           own segment and the flat arrays may carry slack between
           segments */
        int pos = 0;
        for (int slot = 1; slot < s.nslots; slot++) {
            int count = in->w_counts[slot];
            if (count) {
                int at = in->w_starts ? in->w_starts[slot] : pos;
                veci *v = &s.watches[slot];
                v->cap = count + 4;
                v->d = (int *)xmalloc(&s, (size_t)v->cap * sizeof(int));
                memcpy(v->d, in->w_flat + at, (size_t)count * sizeof(int));
                v->n = count;
                pos += count;
            }
        }
        pos = 0;
        for (int slot = 1; slot < s.nslots; slot++) {
            int pairs = in->b_counts[slot];
            if (pairs) {
                int at = in->b_starts ? in->b_starts[slot] : pos;
                veci *v = &s.bwatch[slot];
                v->cap = 2 * pairs + 4;
                v->d = (int *)xmalloc(&s, (size_t)v->cap * sizeof(int));
                memcpy(v->d, in->b_flat + at,
                       (size_t)(2 * pairs) * sizeof(int));
                v->n = 2 * pairs;
                pos += 2 * pairs;
            }
        }
    }
    /* trail */
    int trail_cap = s.num_vars + 1;
    int lim_cap = s.num_vars + in->nassumps + 2;
    s.trail = (int *)xmalloc(&s, (size_t)trail_cap * sizeof(int));
    s.trail_lim = (int *)xmalloc(&s, (size_t)lim_cap * sizeof(int));
    if (in->trail_len)
        memcpy(s.trail, in->trail, (size_t)in->trail_len * sizeof(int));
    if (in->ntrail_lim)
        memcpy(s.trail_lim, in->trail_lim,
               (size_t)in->ntrail_lim * sizeof(int));
    s.trail_len = in->trail_len;
    s.ntrail_lim = in->ntrail_lim;
    s.qhead = in->qhead;
    /* scratch */
    s.member = (unsigned char *)xcalloc(&s, (size_t)s.num_vars + 1, 1);
    s.seen = (unsigned char *)xcalloc(&s, (size_t)s.num_vars + 1, 1);
    s.learnt = (int *)xmalloc(&s, ((size_t)s.num_vars + 2) * sizeof(int));
    s.to_clear = (int *)xmalloc(&s, ((size_t)s.num_vars + 2) * sizeof(int));
    s.lbd_stamp = (int *)xcalloc(&s, (size_t)s.num_vars + 2, sizeof(int));
    s.scope_dead = (long long *)xcalloc(
        &s, (size_t)(in->nscopes ? in->nscopes : 1), sizeof(long long));
    rebuild_heap(&s);

    int status = run_search(&s, in);
    if (status == ST_ASSUMPTION_FAILED) out->failed_lit = s.failed_lit;

    /* ---- write the mutated base regions back in place ---- */
    if (arena0) memcpy((void *)in->arena, s.arena, (size_t)arena0 * sizeof(int));
    if (n0) {
        memcpy((void *)in->c_dead, s.c_dead, (size_t)n0);
        memcpy((void *)in->c_act, s.c_act, (size_t)n0 * sizeof(double));
    }

    /* ---- export scalars ---- */
    out->status = status;
    out->conflicts = s.conflicts;
    out->decisions = s.decisions;
    out->propagations = s.propagations;
    out->chrono_backtracks = s.chrono_backtracks;
    out->learnts = s.learnts_c;
    out->glue_learnts = s.glue_c;
    out->learnts_deleted = s.deleted_c;
    out->reductions = s.reductions_c;
    out->restarts = s.restarts_c;
    out->propagate_seconds = s.propagate_seconds;
    out->analyze_seconds = s.analyze_seconds;
    out->reduce_seconds = s.reduce_seconds;
    out->var_inc = s.var_inc;
    out->cla_inc = s.cla_inc;
    out->num_learnts = s.num_learnts;
    out->conflicts_since_reduce = s.conflicts_since_reduce;
    out->reduce_interval = s.reduce_interval;
    out->qhead = s.qhead;
    out->trail_len = s.trail_len;
    out->ntrail_lim = s.ntrail_lim;
    out->propagated_clauses = s.propagated_clauses;
    out->propagated_trail = s.propagated_trail;

    /* ---- export the new clause region ---- */
    int n_new = s.nclauses - n0;
    out->new_clauses = n_new;
    out->new_arena_len = s.arena_len - arena0;
    if (n_new) {
        out->new_c_off = s.c_off + n0;
        out->new_c_size = s.c_size + n0;
        out->new_c_lbd = s.c_lbd + n0;
        out->new_c_learnt = s.c_learnt + n0;
        out->new_c_dead = s.c_dead + n0;
        out->new_c_act = s.c_act + n0;
        out->new_arena = s.arena + arena0;
        own(out, s.c_off); s.c_off = 0;
        own(out, s.c_size); s.c_size = 0;
        own(out, s.c_lbd); s.c_lbd = 0;
        own(out, s.c_learnt); s.c_learnt = 0;
        own(out, s.c_dead); s.c_dead = 0;
        own(out, s.c_act); s.c_act = 0;
        own(out, s.arena); s.arena = 0;
    }

    /* ---- export the trail ---- */
    out->trail = s.trail;
    out->trail_lim = s.trail_lim;
    own(out, s.trail); s.trail = 0;
    own(out, s.trail_lim); s.trail_lim = 0;

    /* ---- export dirty watch lists as CSR ---- */
    {
        int n_dirty = 0;
        long long w_total = 0, b_total = 0;
        for (int slot = 1; slot < s.nslots; slot++) {
            if (s.wdirty[slot] || s.bdirty[slot]) {
                n_dirty++;
                w_total += s.watches[slot].n;
                b_total += s.bwatch[slot].n;
            }
        }
        out->n_dirty = n_dirty;
        if (n_dirty) {
            int *dirty_lits = (int *)xmalloc(&s, (size_t)n_dirty * sizeof(int));
            int *w_start = (int *)xmalloc(&s, ((size_t)n_dirty + 1) * sizeof(int));
            int *b_start = (int *)xmalloc(&s, ((size_t)n_dirty + 1) * sizeof(int));
            int *w_flat = (int *)xmalloc(&s, (size_t)(w_total ? w_total : 1) * sizeof(int));
            int *b_flat = (int *)xmalloc(&s, (size_t)(b_total ? b_total : 1) * sizeof(int));
            own(out, dirty_lits); own(out, w_start); own(out, b_start);
            own(out, w_flat); own(out, b_flat);
            int di = 0;
            int wpos = 0, bpos = 0;
            for (int slot = 1; slot < s.nslots; slot++) {
                if (!(s.wdirty[slot] || s.bdirty[slot])) continue;
                dirty_lits[di] = slot <= s.num_vars
                    ? slot : -(slot - s.num_vars);
                w_start[di] = wpos;
                b_start[di] = bpos;
                veci *wl = &s.watches[slot];
                memcpy(w_flat + wpos, wl->d, (size_t)wl->n * sizeof(int));
                wpos += wl->n;
                veci *bl = &s.bwatch[slot];
                memcpy(b_flat + bpos, bl->d, (size_t)bl->n * sizeof(int));
                bpos += bl->n;
                di++;
            }
            w_start[di] = wpos;
            b_start[di] = bpos;
            out->dirty_lits = dirty_lits;
            out->w_start = w_start;
            out->b_start = b_start;
            out->w_flat = w_flat;
            out->b_flat = b_flat;
        }
    }

    /* ---- export the watch log and per-scope dead counts ---- */
    out->log_len = s.log.n;
    if (s.log.n) {
        out->log = s.log.d;
        own(out, s.log.d);
        s.log.d = 0;
    }
    out->scope_dead = s.scope_dead;
    own(out, s.scope_dead);
    s.scope_dead = 0;

    free_state(&s);
    return out->status;
}
"""

_SOURCE_HASH = hashlib.sha256(
    (CDEF + SOURCE).encode("utf-8")
).hexdigest()[:16]
_MODULE_NAME = f"_repro_native_{_SOURCE_HASH}"

_lock = threading.Lock()
_kernel: Optional[Tuple[Any, Any]] = None
_kernel_error: Optional[str] = None


def build_dir_candidates() -> list:
    """Cache directories to try, best first."""
    candidates = []
    env = os.environ.get("REPRO_NATIVE_BUILD_DIR")
    if env:
        candidates.append(env)
    candidates.append(
        os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")
    )
    candidates.append(
        os.path.join(tempfile.gettempdir(), f"repro-native-{os.getuid()}")
    )
    return candidates


def _ext_suffix() -> str:
    import importlib.machinery

    return importlib.machinery.EXTENSION_SUFFIXES[0]


def _load_extension(path: str) -> Tuple[Any, Any]:
    spec = importlib.util.spec_from_file_location(_MODULE_NAME, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load native kernel from {path}")
    module = importlib.util.module_from_spec(spec)
    # keep the module importable by name (cffi's ffi object expects it)
    sys.modules.setdefault(_MODULE_NAME, module)
    spec.loader.exec_module(module)
    return module.ffi, module.lib


def _compile_into(cache_dir: str) -> str:
    """Compile the extension and install it under ``cache_dir``; returns
    the installed path. Builds in a private temp dir and moves the result
    into place atomically so concurrent processes never observe a partial
    artifact."""
    from cffi import FFI

    os.makedirs(cache_dir, exist_ok=True)
    target = os.path.join(cache_dir, _MODULE_NAME + _ext_suffix())
    if os.path.exists(target):
        return target
    builder = FFI()
    builder.cdef(CDEF)
    builder.set_source(
        _MODULE_NAME,
        SOURCE,
        extra_compile_args=["-O2", "-fno-strict-aliasing"],
    )
    tmpdir = tempfile.mkdtemp(prefix="build-", dir=cache_dir)
    try:
        built = builder.compile(tmpdir=tmpdir, verbose=False)
        os.replace(built, target)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return target


def load_kernel() -> Optional[Tuple[Any, Any]]:
    """Build (if needed) and load the compiled kernel.

    Returns ``(ffi, lib)`` or ``None`` when the C tier is unavailable for
    any reason; the failure reason is kept in :func:`kernel_error` for
    diagnostics but never raised.
    """
    global _kernel, _kernel_error
    if _kernel is not None:
        return _kernel
    if _kernel_error is not None:
        return None
    with _lock:
        if _kernel is not None:
            return _kernel
        if _kernel_error is not None:
            return None
        last_error = "no writable build directory"
        for cache_dir in build_dir_candidates():
            try:
                path = _compile_into(cache_dir)
                _kernel = _load_extension(path)
                return _kernel
            except Exception as exc:  # noqa: BLE001 - degrade, never raise
                last_error = f"{type(exc).__name__}: {exc}"
        _kernel_error = last_error
        return None


def kernel_error() -> Optional[str]:
    """Why the C tier is unavailable (``None`` when it loaded fine)."""
    return _kernel_error
