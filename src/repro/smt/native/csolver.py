"""The native-C solver tier: a :class:`SATSolver` whose hot loop runs in C.

:class:`CSATSolver` subclasses the arena solver and overrides exactly two
things:

* the container layout -- every flat vector the C kernel reads or writes
  (literal arena, clause sidecars, trit assignment vector, trail,
  activities, phases) becomes a typed ``array``/``bytearray`` so the
  marshal step is a zero-copy ``ffi.from_buffer`` instead of a
  per-element conversion;
* :meth:`SATSolver._search` -- the propagate/analyze/backjump/reduce hot
  loop is delegated to the compiled kernel, which operates on the same
  buffers in place, and only the state the search *extended* (new learnt
  clauses, the trail, touched watch lists) is marshalled back.

The watch lists are the one structure the kernel cannot share zero-copy
(they are per-literal Python lists), so they cross the boundary as flat
CSR arrays. Flattening ~100k watch entries per call would dominate the
cheap incremental solves model enumeration issues, so the second
consecutive search over an unchanged variable layout mirrors the lists
into a persistent CSR with explicit per-slot starts and, from then on,
only re-copies the slots that changed between calls. Changes are
observed, not inferred: the outer containers become
:class:`_TrackedSlots`, which conservatively marks a slot dirty on every
indexed access (each of the parent solver's mutation sites re-fetches
``self.watches[lit]`` right before mutating), so no watch list is ever
individually wrapped and no parent mutation site is hooked.

Everything else -- the solve prologue, push/pop, vivification, failed-core
extraction, model enumeration entry -- is inherited from the Python
implementation and operates on the same containers. Bit-identity of every
observable with the pure-Python tier is asserted by
``tests/test_solver_differential.py``.
"""

from __future__ import annotations

import time
from array import array
from itertools import accumulate, chain
from typing import List, Optional

from ..sat import SATSolver, SolveResult, SolveStatus, _SnapshotModel
from . import ckernel

_ST_SAT = 0
_ST_UNSAT_ROOT = 1
_ST_UNSAT_ATTACH = 2
_ST_TIMEOUT = 3
_ST_CONFLICT_BUDGET = 4
_ST_ASSUMPTION_FAILED = 5

# sentinel dirty-set entry: the container changed structurally (a slice
# was assigned or slots were added/removed) -- rebuild the whole cache
_REBUILD = -1


class _TrackedSlots(list):
    """The outer literal-indexed watch container, with read marking.

    Every mutation site in the parent solver re-fetches its watch list
    through ``self.watches[lit]`` immediately before mutating it (none
    holds an inner-list reference across a search call), so marking the
    slot dirty on *read* catches every possible in-place mutation without
    wrapping the ~2|V| inner lists individually. A false positive -- a
    read that never mutates -- merely re-copies one short list into its
    CSR segment at the next sync. Slot replacement is caught by
    ``__setitem__``; structural changes (slices, appends, deletes) force
    a full cache rebuild.
    """

    __slots__ = ("_dirty",)

    def __init__(self, iterable, dirty):
        list.__init__(self, iterable)
        self._dirty = dirty

    def __getitem__(self, index):
        if type(index) is int:
            self._dirty.add(
                index if index >= 0 else index + list.__len__(self))
        return list.__getitem__(self, index)

    def __setitem__(self, index, value):
        if type(index) is int:
            self._dirty.add(
                index if index >= 0 else index + list.__len__(self))
        else:
            self._dirty.add(_REBUILD)
        list.__setitem__(self, index, value)

    def __delitem__(self, index):
        self._dirty.add(_REBUILD)
        list.__delitem__(self, index)

    def append(self, item):
        self._dirty.add(_REBUILD)
        list.append(self, item)

    def extend(self, iterable):
        self._dirty.add(_REBUILD)
        list.extend(self, iterable)

    def insert(self, index, item):
        self._dirty.add(_REBUILD)
        list.insert(self, index, item)


class CSATSolver(SATSolver):
    """Flat-arena CDCL solver with the search loop compiled via cffi."""

    def __init__(self, perf=None) -> None:
        super().__init__(perf)
        # retype the flat state for zero-copy buffer sharing with C
        self.arena = array("i")
        self.c_act = array("d")
        self.vals = array("i", (0,))
        self.level = array("i", (0,))
        self.reason = array("i", (-1,))
        self.activity = array("d", (0.0,))
        self.phase = bytearray(1)
        self.trail = array("i")
        self.trail_lim = array("i")
        # incremental watch-CSR cache (see the module docstring): built
        # on the second consecutive search over one variable layout
        self._csr = None
        self._csr_shape = None          # (num_vars, layout gen) last searched
        self._layout_gen = 0            # bumped when _grow re-lays the slots
        self._w_dirty: set = set()
        self._b_dirty: set = set()
        # the compiled kernel derives its own VSIDS heap from activity[],
        # so the Python-side order heap is dead weight on this tier; the
        # flag flips only if the kernel vanishes and the Python search
        # (which does consume the heap) has to take over
        self._use_python_heap = False

    def _grow(self, min_cap: int) -> None:
        # identical to the parent except vals stays a typed array; the
        # re-lay moves every watch list, so the CSR cache dies with it
        self._layout_gen += 1
        self._csr = None
        cap = max(self._cap * 2, min_cap * 2, 16)
        vals = array("i", (0,)) * (2 * cap + 1)
        watches: List[List[int]] = [[] for _ in range(2 * cap + 1)]
        bwatch: List[List] = [[] for _ in range(2 * cap + 1)]
        for lit in range(1, self.num_vars + 1):
            vals[lit] = self.vals[lit]
            vals[-lit] = self.vals[-lit]
            watches[lit] = self.watches[lit]
            watches[-lit] = self.watches[-lit]
            bwatch[lit] = self.bwatch[lit]
            bwatch[-lit] = self.bwatch[-lit]
        self._cap = cap
        self.vals = vals
        self.watches = watches
        self.bwatch = bwatch

    def _rebuild_order_heap(self) -> None:
        # never consumed by the compiled search; building a ~|V| heap per
        # incremental solve would dominate cheap enumeration calls
        if self._use_python_heap:  # pragma: no cover - kernel-loss fallback
            super()._rebuild_order_heap()
            return
        self._order_heap = []
        self._heap_member = bytearray(self.num_vars + 1)

    def _cancel_until(self, target_level: int) -> None:
        # the parent's unwind minus the order-heap percolation (the heap
        # is rebuilt from scratch by whoever actually needs it; the
        # compiled kernel keeps its own)
        if self._use_python_heap:  # pragma: no cover - kernel-loss fallback
            super()._cancel_until(target_level)
            return
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        vals = self.vals
        phase = self.phase
        reason = self.reason
        for lit in reversed(self.trail[limit:]):
            var = lit if lit > 0 else -lit
            phase[var] = lit > 0  # phase saving
            vals[lit] = 0
            vals[-lit] = 0
            reason[var] = -1
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    def pop(self) -> None:
        # index 6 of the push footprint is num_vars at push() time: when
        # scope-local variables are about to die the slot layout changes
        # underneath the CSR cache, so unwire the tracked containers first
        # and let the teardown run at plain-list speed
        if (self._csr is not None and self._push_stack
                and self._push_stack[-1][6] != self.num_vars):
            self._csr = None
            self.watches = list(self.watches)
            self.bwatch = list(self.bwatch)
        super().pop()

    # ------------------------------------------------------------------ #
    # Incremental watch-CSR cache
    # ------------------------------------------------------------------ #
    def _build_watch_cache(self) -> dict:
        """Mirror the watch lists into slack-capable flat CSR arrays.

        Swaps both outer containers for :class:`_TrackedSlots`, then
        flattens in CSR slot order (+1..+V, -1..-V). Initial per-slot
        capacity equals the length: slots that later outgrow it relocate
        to the tail of the flat array.
        """
        num_vars = self.num_vars
        w_dirty: set = set()
        b_dirty: set = set()
        watches = list(self.watches)   # raw refs: flatten without marking
        bwatch = list(self.bwatch)
        self.watches = _TrackedSlots(watches, w_dirty)
        self.bwatch = _TrackedSlots(bwatch, b_dirty)
        self._w_dirty = w_dirty
        self._b_dirty = b_dirty
        w_lists = [()]
        w_lists.extend(watches[v] for v in range(1, num_vars + 1))
        w_lists.extend(watches[-v] for v in range(1, num_vars + 1))
        w_len = array("i", map(len, w_lists))
        w_start = array("i", accumulate(w_len[:-1], initial=0))
        w_flat = array("i", chain.from_iterable(w_lists))
        b_lists = [()]
        b_lists.extend(bwatch[v] for v in range(1, num_vars + 1))
        b_lists.extend(bwatch[-v] for v in range(1, num_vars + 1))
        b_len = array("i", map(len, b_lists))
        b_start = array("i",
                        accumulate((2 * n for n in b_len[:-1]), initial=0))
        b_flat = array("i", chain.from_iterable(chain.from_iterable(b_lists)))
        self._csr = {
            "shape": (num_vars, self._layout_gen),
            "w_len": w_len, "w_start": w_start,
            "w_cap": array("i", w_len), "w_flat": w_flat,
            "w_limit": 2 * len(w_flat) + 65536,
            "b_len": b_len, "b_start": b_start,
            "b_cap": array("i", (2 * n for n in b_len)), "b_flat": b_flat,
            "b_limit": 2 * len(b_flat) + 65536,
        }
        return self._csr

    def _sync_watch_cache(self, csr: dict) -> None:
        """Re-copy every dirty slot's list into its flat CSR segment."""
        num_vars = self.num_vars
        outer_len = len(self.watches)
        half = (outer_len - 1) // 2
        w_dirty = self._w_dirty
        if w_dirty:
            w_len = csr["w_len"]
            w_start = csr["w_start"]
            w_cap = csr["w_cap"]
            w_flat = csr["w_flat"]
            watches = self.watches
            raw = list.__getitem__   # read without re-marking the slot
            for idx in w_dirty:
                if 0 < idx <= half:
                    if idx > num_vars:
                        continue   # above the live range: no CSR slot
                    cslot = idx
                else:
                    var = outer_len - idx   # variable of a negative literal
                    if not 0 < var <= num_vars:
                        continue
                    cslot = num_vars + var
                lst = raw(watches, idx)
                count = len(lst)
                if count <= w_cap[cslot]:
                    at = w_start[cslot]
                    w_flat[at:at + count] = array("i", lst)
                else:
                    w_start[cslot] = len(w_flat)
                    w_cap[cslot] = count + (count >> 1) + 4
                    w_flat.extend(lst)
                    w_flat.frombytes(
                        bytes(w_flat.itemsize * (w_cap[cslot] - count)))
                w_len[cslot] = count
            w_dirty.clear()
        b_dirty = self._b_dirty
        if b_dirty:
            b_len = csr["b_len"]
            b_start = csr["b_start"]
            b_cap = csr["b_cap"]
            b_flat = csr["b_flat"]
            bwatch = self.bwatch
            raw = list.__getitem__
            for idx in b_dirty:
                if 0 < idx <= half:
                    if idx > num_vars:
                        continue
                    cslot = idx
                else:
                    var = outer_len - idx
                    if not 0 < var <= num_vars:
                        continue
                    cslot = num_vars + var
                lst = raw(bwatch, idx)
                pairs = len(lst)
                ints = 2 * pairs
                if ints <= b_cap[cslot]:
                    at = b_start[cslot]
                    b_flat[at:at + ints] = array(
                        "i", chain.from_iterable(lst))
                else:
                    b_start[cslot] = len(b_flat)
                    b_cap[cslot] = ints + (ints >> 1) + 8
                    b_flat.extend(chain.from_iterable(lst))
                    b_flat.frombytes(
                        bytes(b_flat.itemsize * (b_cap[cslot] - ints)))
                b_len[cslot] = pairs
            b_dirty.clear()

    def _search(
        self,
        start: float,
        timeout_seconds: Optional[float],
        max_conflicts: Optional[int],
        assumption_list: List[int],
    ) -> SolveResult:
        kernel = ckernel.load_kernel()
        if kernel is None:  # pragma: no cover - tier selection prevents this
            # hand the search to the Python loop for good: it consumes
            # the order heap this class otherwise leaves unmaintained
            self._use_python_heap = True
            SATSolver._rebuild_order_heap(self)
            self._heap_dirty = False
            return super()._search(
                start, timeout_seconds, max_conflicts, assumption_list
            )
        ffi, lib = kernel
        num_vars = self.num_vars

        # ---- watch CSR: the incremental cache, or a one-shot flatten ----
        shape = (num_vars, self._layout_gen)
        csr = self._csr
        if csr is not None and (
            csr["shape"] != shape
            or _REBUILD in self._w_dirty
            or _REBUILD in self._b_dirty
            or len(csr["w_flat"]) > csr["w_limit"]
            or len(csr["b_flat"]) > csr["b_limit"]
        ):
            csr = self._csr = None
        if csr is None and self._csr_shape == shape:
            # second consecutive search over an unchanged variable
            # layout: this solver is being re-solved incrementally
            # (model enumeration, assumption ladders) -- mirror the
            # watch lists once, patch only dirty slots from now on
            csr = self._build_watch_cache()
        else:
            self._csr_shape = shape
        if csr is not None:
            self._sync_watch_cache(csr)
            w_counts = csr["w_len"]
            w_flat = csr["w_flat"]
            b_counts = csr["b_len"]
            b_flat = csr["b_flat"]
        else:
            # slot order: +1..+V, -1..-V, contiguous (no explicit starts)
            watches = self.watches
            bwatch = self.bwatch
            w_lists = [()]
            w_lists.extend(watches[v] for v in range(1, num_vars + 1))
            w_lists.extend(watches[-v] for v in range(1, num_vars + 1))
            w_counts = array("i", map(len, w_lists))
            w_flat = array("i", chain.from_iterable(w_lists))
            b_lists = [()]
            b_lists.extend(bwatch[v] for v in range(1, num_vars + 1))
            b_lists.extend(bwatch[-v] for v in range(1, num_vars + 1))
            b_counts = array("i", map(len, b_lists))
            b_flat = array(
                "i", chain.from_iterable(chain.from_iterable(b_lists)))
        watches = self.watches
        bwatch = self.bwatch
        marks = array("i", (entry[0] for entry in self._push_stack))
        assumps = array("i", assumption_list)

        keepalive = []

        def buf(ctype, obj, writable=False):
            if not len(obj):
                return ffi.NULL
            view = ffi.from_buffer(ctype, obj, require_writable=writable)
            keepalive.append(view)
            return view

        inp = ffi.new("repro_in_t *")
        inp.num_vars = num_vars
        inp.nclauses = len(self.c_off)
        inp.c_off = buf("int[]", self.c_off)
        inp.c_size = buf("int[]", self.c_size)
        inp.c_learnt = buf("unsigned char[]", self.c_learnt)
        inp.c_dead = buf("unsigned char[]", self.c_dead, writable=True)
        inp.c_lbd = buf("int[]", self.c_lbd)
        inp.c_act = buf("double[]", self.c_act, writable=True)
        inp.arena_len = len(self.arena)
        inp.arena = buf("int[]", self.arena, writable=True)
        inp.vals_len = len(self.vals)
        inp.vals = buf("int[]", self.vals, writable=True)
        inp.w_counts = buf("int[]", w_counts)
        inp.w_flat = buf("int[]", w_flat)
        inp.b_counts = buf("int[]", b_counts)
        inp.b_flat = buf("int[]", b_flat)
        if csr is not None:
            # cached CSR segments are not contiguous: ship explicit starts
            inp.w_starts = buf("int[]", csr["w_start"])
            inp.b_starts = buf("int[]", csr["b_start"])
        inp.level = buf("int[]", self.level, writable=True)
        inp.reason = buf("int[]", self.reason, writable=True)
        inp.activity = buf("double[]", self.activity, writable=True)
        inp.phase = buf("unsigned char[]", self.phase, writable=True)
        inp.trail_len = len(self.trail)
        inp.trail = buf("int[]", self.trail)
        inp.ntrail_lim = len(self.trail_lim)
        inp.trail_lim = buf("int[]", self.trail_lim)
        inp.qhead = self.qhead
        inp.var_inc = self.var_inc
        inp.cla_inc = self.cla_inc
        inp.num_learnts = self.num_learnts
        inp.conflicts_since_reduce = self._conflicts_since_reduce
        inp.reduce_interval = self._reduce_interval
        inp.chrono_threshold = self.chrono_threshold
        inp.nassumps = len(assumps)
        inp.assumps = buf("int[]", assumps)
        inp.nscopes = len(marks)
        inp.scope_marks = buf("int[]", marks)
        inp.log_enabled = 1 if self._push_stack else 0
        if timeout_seconds is None:
            inp.time_budget = -1.0
        else:
            inp.time_budget = max(
                0.0, timeout_seconds - (time.monotonic() - start)
            )
        inp.max_conflicts = -1 if max_conflicts is None else max_conflicts
        perf = self.perf
        inp.detailed = 1 if (perf is not None and perf.detailed) else 0
        inp.propagated_clauses = self._propagated_clauses
        inp.propagated_trail = self._propagated_trail

        out = ffi.new("repro_out_t *")
        status = lib.repro_search(inp, out)
        # drop the zero-copy views before any Python-side array resizing
        # (CPython refuses to resize an array with exported buffers)
        del inp
        keepalive.clear()
        if status < 0:
            raise MemoryError(
                "native SAT kernel ran out of memory; solver state undefined"
            )
        try:
            # ---- scalars (the C loop mirrors the Python accounting) ----
            self.var_inc = out.var_inc
            self.cla_inc = out.cla_inc
            self.num_learnts = out.num_learnts
            self._conflicts_since_reduce = out.conflicts_since_reduce
            self._reduce_interval = out.reduce_interval
            self._propagated_clauses = out.propagated_clauses
            self._propagated_trail = out.propagated_trail
            self.qhead = out.qhead
            self.conflicts += out.conflicts
            self.decisions += out.decisions
            self.propagations += out.propagations
            self.chrono_backtracks += out.chrono_backtracks
            # ---- clauses learnt during the search ----
            n_new = out.new_clauses
            if n_new:
                isz = self.c_off.itemsize
                self.c_off.frombytes(ffi.buffer(out.new_c_off, isz * n_new))
                self.c_size.frombytes(ffi.buffer(out.new_c_size, isz * n_new))
                self.c_lbd.frombytes(ffi.buffer(out.new_c_lbd, isz * n_new))
                self.c_learnt += ffi.buffer(out.new_c_learnt, n_new)
                self.c_dead += ffi.buffer(out.new_c_dead, n_new)
                self.c_act.frombytes(ffi.buffer(out.new_c_act, 8 * n_new))
                self.arena.frombytes(
                    ffi.buffer(out.new_arena, isz * out.new_arena_len)
                )
            # ---- the trail ----
            isz = self.trail.itemsize
            trail = array("i")
            trail.frombytes(ffi.buffer(out.trail, isz * out.trail_len))
            self.trail = trail
            trail_lim = array("i")
            trail_lim.frombytes(
                ffi.buffer(out.trail_lim, isz * out.ntrail_lim)
            )
            self.trail_lim = trail_lim
            # ---- watch lists the search touched ----
            nd = out.n_dirty
            if nd:
                dirty = ffi.unpack(out.dirty_lits, nd)
                w_start = ffi.unpack(out.w_start, nd + 1)
                b_start = ffi.unpack(out.b_start, nd + 1)
                w_flat_out = out.w_flat
                b_flat_out = out.b_flat
                for i, lit in enumerate(dirty):
                    a = w_start[i]
                    watches[lit] = ffi.unpack(w_flat_out + a, w_start[i + 1] - a)
                    a = b_start[i]
                    pairs = ffi.unpack(b_flat_out + a, b_start[i + 1] - a)
                    bwatch[lit] = list(zip(pairs[0::2], pairs[1::2]))
            # ---- scoped bookkeeping ----
            if out.log_len:
                self._watch_log.extend(ffi.unpack(out.log, out.log_len))
            if self._scope_dead and out.scope_dead != ffi.NULL:
                deltas = ffi.unpack(out.scope_dead, len(self._scope_dead))
                for i, delta in enumerate(deltas):
                    if delta:
                        self._scope_dead[i] += delta
            # ---- perf counters ----
            if perf is not None:
                perf.learnts += out.learnts
                perf.glue_learnts += out.glue_learnts
                perf.learnts_deleted += out.learnts_deleted
                perf.reductions += out.reductions
                perf.restarts += out.restarts
                if perf.detailed:
                    perf.propagate_seconds += out.propagate_seconds
                    perf.analyze_seconds += out.analyze_seconds
                    perf.reduce_seconds += out.reduce_seconds
            failed_lit = out.failed_lit
        finally:
            lib.repro_release(out)
        # the C kernel kept its own lazy heap; rebuild ours on next entry
        self._heap_dirty = True

        monotonic = time.monotonic
        if status == _ST_SAT:
            model = _SnapshotModel(self.vals[:num_vars + 1], num_vars)
            return self._finish(
                SolveResult(
                    SolveStatus.SAT,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=monotonic() - start,
                ),
                start, timed=True,
            )
        if status == _ST_UNSAT_ROOT:
            self.ok = False
            return self._finish(
                SolveResult(
                    SolveStatus.UNSAT,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=monotonic() - start,
                ),
                start, timed=True,
            )
        if status == _ST_UNSAT_ATTACH:
            self.ok = False
            return self._finish(
                SolveResult(
                    SolveStatus.UNSAT,
                    conflicts=self.conflicts,
                    elapsed_seconds=monotonic() - start,
                ),
                start, timed=True,
            )
        if status == _ST_ASSUMPTION_FAILED:
            core = self._analyze_final(failed_lit)
            self._cancel_until(0)
            return self._finish(
                SolveResult(
                    SolveStatus.UNSAT,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=monotonic() - start,
                    core=core,
                ),
                start, timed=True,
            )
        # _ST_TIMEOUT / _ST_CONFLICT_BUDGET
        return self._finish(
            SolveResult(
                SolveStatus.UNKNOWN,
                conflicts=self.conflicts,
                decisions=self.decisions,
                propagations=self.propagations,
                elapsed_seconds=monotonic() - start,
            ),
            start, timed=True,
        )
