"""Cardinality constraint encodings.

The time-phase formulation needs two cardinality families (paper Sec. IV-B):

* **capacity** -- at most ``|V_Mi|`` nodes per kernel slot, and
* **connectivity** -- at most ``D_M`` neighbours of a node per kernel slot.

Both are encoded here as CNF clauses over indicator literals. Small bounds
use the pairwise encoding; larger ones use the sequential-counter (Sinz)
encoding, which is linear in ``n * k`` and propagates well with unit
propagation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.smt.cnf import CNF, FALSE_LIT, TRUE_LIT, negate


def at_least_one(cnf: CNF, literals: Sequence[int]) -> None:
    """At least one of ``literals`` is true."""
    cnf.add_clause(list(literals))


def at_most_one(cnf: CNF, literals: Sequence[int]) -> None:
    """At most one of ``literals`` is true (pairwise/sequential hybrid)."""
    lits = [l for l in literals if l != FALSE_LIT]
    if any(l == TRUE_LIT for l in lits):
        concrete = [l for l in lits if l != TRUE_LIT]
        for lit in concrete:
            cnf.add_clause([negate(lit)])
        return
    if len(lits) <= 6:
        add_clean = cnf.add_clause_clean
        negated = [negate(l) for l in lits]
        for i in range(len(negated)):
            for j in range(i + 1, len(negated)):
                add_clean([negated[i], negated[j]])
        return
    at_most_k(cnf, lits, 1)


def exactly_one(cnf: CNF, literals: Sequence[int]) -> None:
    """Exactly one of ``literals`` is true."""
    at_least_one(cnf, literals)
    at_most_one(cnf, literals)


def at_most_k(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """Sequential-counter encoding of ``sum(literals) <= k``."""
    lits = [l for l in literals if l != FALSE_LIT]
    forced_true = sum(1 for l in lits if l == TRUE_LIT)
    lits = [l for l in lits if l != TRUE_LIT]
    k = k - forced_true
    n = len(lits)
    if k < 0:
        cnf.add_clause([])  # contradiction
        return
    if k >= n:
        return
    if k == 0:
        for lit in lits:
            cnf.add_clause([negate(lit)])
        return
    # registers[i][j] is true if at least j+1 of the first i+1 literals are
    # true; after the sentinel filtering above every literal is a plain int
    # and every register is fresh, so the counter clauses are clean by
    # construction and take the CNF fast path
    base = cnf.pool.reserve(n * k)
    registers: List[List[int]] = [
        list(range(base + i * k, base + (i + 1) * k)) for i in range(n)
    ]
    add_clean = cnf.add_clause_clean
    negated = [negate(l) for l in lits]
    add_clean([negated[0], registers[0][0]])
    for j in range(1, k):
        add_clean([-registers[0][j]])
    for i in range(1, n):
        neg_lit = negated[i]
        row = registers[i]
        prev = registers[i - 1]
        add_clean([neg_lit, row[0]])
        add_clean([-prev[0], row[0]])
        for j in range(1, k):
            add_clean([neg_lit, -prev[j - 1], row[j]])
            add_clean([-prev[j], row[j]])
        add_clean([neg_lit, -prev[k - 1]])
    return


def at_least_k(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """``sum(literals) >= k`` via at-most on the negated literals."""
    if k <= 0:
        return
    lits = list(literals)
    if k > len(lits):
        cnf.add_clause([])
        return
    negated = [negate(l) for l in lits]
    at_most_k(cnf, negated, len(lits) - k)


def exactly_k(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """``sum(literals) == k``."""
    at_most_k(cnf, literals, k)
    at_least_k(cnf, literals, k)
