"""A CDCL SAT solver.

This is the solving engine behind the "SMT" layer used by the time phase
(:mod:`repro.core.time_solver`) and by the SAT-MapIt-style coupled baseline
(:mod:`repro.baseline`). It implements the standard conflict-driven clause
learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* Luby restarts,
* wall-clock timeout support (the experiments impose per-case timeouts
  exactly like the paper's 4000 s limit),
* **incremental solving**: the clause database, learnt clauses, variable
  activities and saved phases all persist across ``solve`` calls,
* **assumptions**: ``solve(assumptions=[...])`` solves under a set of
  literals fixed for this call only (MiniSat-style assumption decision
  levels); an UNSAT answer under assumptions does not poison the solver and
  reports the subset of assumptions responsible (``SolveResult.core``),
* **clause-footprint push/pop**: ``push()`` marks the clause database and
  root trail; ``pop()`` retracts every clause (including learnt ones) and
  root-level assignment added since, so blocking clauses and scoped
  constraints can be undone while activities and phases survive.

The solver is deliberately self-contained (lists indexed by variable, no
recursion) so its performance is predictable for the instance sizes produced
by the mapper: a few thousand variables for the decoupled time phase, up to a
few hundred thousand for the coupled baseline on large CGRAs -- where it is
*expected* to hit the timeout, which is the scalability effect the paper
measures.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.cnf import CNF


class SolveStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # timeout or conflict budget exhausted

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class SolveResult:
    """Outcome of a SAT call.

    ``core`` is only set for UNSAT answers obtained *under assumptions*: it
    holds a subset of the assumption literals that is already inconsistent
    with the clause database (a "failed core" in MiniSat terminology). A
    plain UNSAT (no assumptions involved) leaves it ``None``.
    """

    status: SolveStatus
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    elapsed_seconds: float = 0.0
    core: Optional[List[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status is SolveStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolveStatus.UNSAT

    def value(self, literal: int) -> bool:
        """Truth value of a literal under the model (SAT results only)."""
        if self.model is None:
            raise ValueError("no model available")
        var = abs(literal)
        val = self.model.get(var, False)
        return val if literal > 0 else not val


def _luby(index: int) -> int:
    """The ``index``-th element (0-based) of the Luby sequence 1,1,2,1,1,2,4,..."""
    size = 1
    sequence = 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        sequence -= 1
        index = index % size
    return 1 << sequence


class SATSolver:
    """CDCL solver over clauses added incrementally.

    Typical usage::

        solver = SATSolver()
        solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        result = solver.solve(timeout_seconds=10.0)

    Blocking clauses may be added between ``solve`` calls to enumerate models.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.assign: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[int]] = [None]
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._unit_clauses: List[int] = []
        self._push_stack: List[Tuple[int, int, int, bool, int]] = []
        # VSIDS order heap with lazy (possibly stale) entries; rebuilt on
        # activity rescale. Keeps branching O(log n) instead of a linear
        # scan, which matters once one incremental solver carries the
        # formula of a whole II sweep.
        self._order_heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        var = self.num_vars
        self.watches.setdefault(var, [])
        self.watches.setdefault(-var, [])
        heapq.heappush(self._order_heap, (0.0, var))
        return var

    def boost_activity(self, var: int, activity: float) -> None:
        """Raise a variable's activity to at least ``activity``."""
        if activity > self.activity[var]:
            self.activity[var] = activity
            heapq.heappush(self._order_heap, (-activity, var))

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist."""
        while self.num_vars < count:
            self.new_var()

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicates removed, tautologies dropped."""
        clause: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
            self.ensure_vars(abs(lit))
        if not clause:
            self.ok = False
            return
        index = len(self.clauses)
        self.clauses.append(clause)
        if len(clause) == 1:
            self._unit_clauses.append(clause[0])
        else:
            self.watches[clause[0]].append(index)
            self.watches[clause[1]].append(index)

    @classmethod
    def from_cnf(cls, cnf: CNF) -> "SATSolver":
        solver = cls()
        solver.ensure_vars(cnf.num_vars)
        if cnf.contradiction:
            solver.ok = False
        for clause in cnf.clauses:
            solver.add_clause(clause)
        return solver

    # ------------------------------------------------------------------ #
    # Clause-footprint push/pop
    # ------------------------------------------------------------------ #
    @property
    def scope_depth(self) -> int:
        return len(self._push_stack)

    def push(self) -> None:
        """Mark the clause database and root trail for a later :meth:`pop`.

        Scopes nest. Everything added after the mark -- problem clauses,
        blocking clauses, learnt clauses, *variables*, and root-level
        assignments derived from them -- is retracted by ``pop``; the
        activities and saved phases of surviving variables persist, which
        is what makes scoped re-solving cheap.
        """
        self._cancel_until(0)
        self._push_stack.append(
            (len(self.clauses), len(self._unit_clauses), len(self.trail),
             self.ok, self.num_vars)
        )

    def pop(self) -> None:
        """Retract every clause, variable, and root assignment since push."""
        if not self._push_stack:
            raise RuntimeError("pop() without matching push()")
        num_clauses, num_units, trail_len, ok, num_vars = self._push_stack.pop()
        self._cancel_until(0)
        for lit in self.trail[trail_len:]:
            var = abs(lit)
            self.phase[var] = self.assign[var]
            self.assign[var] = None
            self.reason[var] = None
            self.level[var] = 0
        del self.trail[trail_len:]
        del self.clauses[num_clauses:]
        del self._unit_clauses[num_units:]
        if self.num_vars > num_vars:
            # scope-local variables die with the scope; without this the
            # solver would keep deciding thousands of unconstrained
            # leftovers on every later solve
            del self.assign[num_vars + 1:]
            del self.level[num_vars + 1:]
            del self.reason[num_vars + 1:]
            del self.activity[num_vars + 1:]
            del self.phase[num_vars + 1:]
            self.num_vars = num_vars
        self.ok = ok
        self.qhead = 0
        self._rebuild_watches()
        self._rebuild_order_heap()

    def _rebuild_watches(self) -> None:
        self.watches = {}
        for var in range(1, self.num_vars + 1):
            self.watches[var] = []
            self.watches[-var] = []
        for index, clause in enumerate(self.clauses):
            if len(clause) >= 2:
                self.watches[clause[0]].append(index)
                self.watches[clause[1]].append(index)

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> Optional[bool]:
        val = self.assign[abs(lit)]
        if val is None:
            return None
        return val if lit > 0 else not val

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.trail.append(lit)

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.phase[var] = self.assign[var]  # phase saving
            self.assign[var] = None
            self.reason[var] = None
            heapq.heappush(self._order_heap, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            neg = -lit
            watchlist = self.watches[neg]
            kept: List[int] = []
            i = 0
            n = len(watchlist)
            while i < n:
                ci = watchlist[i]
                i += 1
                clause = self.clauses[ci]
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_val = self._value(first)
                if first_val is True:
                    kept.append(ci)
                    continue
                found = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches[clause[1]].append(ci)
                        found = True
                        break
                if found:
                    continue
                kept.append(ci)
                if first_val is False:
                    kept.extend(watchlist[i:])
                    self.watches[neg] = kept
                    return ci
                self._enqueue(first, ci)
            self.watches[neg] = kept
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._rebuild_order_heap()
        else:
            heapq.heappush(self._order_heap, (-self.activity[var], var))

    def _rebuild_order_heap(self) -> None:
        self._order_heap = [
            (-self.activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self.assign[v] is None
        ]
        heapq.heapify(self._order_heap)

    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        current_level = self._decision_level()
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self.trail) - 1
        clause_index = conflict_index
        while True:
            clause = self.clauses[clause_index]
            start = 0 if p is None else 1
            for j in range(start, len(clause)):
                q = clause[j]
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            var = abs(p)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause_index = self.reason[var]
        learnt_clause = [-p] + learnt
        if len(learnt_clause) == 1:
            backtrack = 0
        else:
            backtrack = max(self.level[abs(q)] for q in learnt_clause[1:])
        return learnt_clause, backtrack

    def _attach_learnt(self, learnt: List[int]) -> None:
        """Record a learnt clause and enqueue its asserting literal."""
        if len(learnt) == 1:
            self._cancel_until(0)
            if self._value(learnt[0]) is False:
                self.ok = False
                return
            if self._value(learnt[0]) is None:
                self._enqueue(learnt[0], None)
            self.clauses.append(learnt)
            return
        # position 1 must hold a literal of the backtrack level for watching
        max_index = 1
        for j in range(2, len(learnt)):
            if self.level[abs(learnt[j])] > self.level[abs(learnt[max_index])]:
                max_index = j
        learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
        index = len(self.clauses)
        self.clauses.append(learnt)
        self.watches[learnt[0]].append(index)
        self.watches[learnt[1]].append(index)
        self._enqueue(learnt[0], index)

    def _analyze_final(self, failed: int) -> List[int]:
        """Failed-assumption core: assumptions implying ``not failed``.

        ``failed`` is an assumption literal found false while placing the
        assumption prefix. Walking the trail top-down through the reasons
        collects the (subset of) assumption decisions responsible, exactly
        like MiniSat's ``analyzeFinal``.
        """
        core = [failed]
        if self._decision_level() == 0 or not self.trail_lim:
            return core
        seen = [False] * (self.num_vars + 1)
        seen[abs(failed)] = True
        for lit in reversed(self.trail[self.trail_lim[0]:]):
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self.reason[var]
            if reason is None:
                core.append(lit)  # an assumption decision
            else:
                for q in self.clauses[reason][1:]:
                    if self.level[abs(q)] > 0:
                        seen[abs(q)] = True
            seen[var] = False
        return core

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #
    def _pick_branch_variable(self) -> Optional[int]:
        heap = self._order_heap
        while heap:
            neg_activity, var = heapq.heappop(heap)
            if self.assign[var] is not None:
                continue  # stale entry of an assigned variable
            if -neg_activity < self.activity[var]:
                # stale priority (bumped since push): requeue correctly
                heapq.heappush(heap, (-self.activity[var], var))
                continue
            return var
        # Safety net -- the lazy heap should never run dry while unassigned
        # variables remain, but a linear scan keeps the solver complete.
        for var in range(1, self.num_vars + 1):
            if self.assign[var] is None:
                return var
        return None

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(
        self,
        timeout_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        assumptions: Optional[Sequence[int]] = None,
    ) -> SolveResult:
        """Run the CDCL search, optionally under assumption literals.

        Assumptions are placed as the first decisions (one decision level
        each) and hold for this call only; clauses learnt while they are in
        force mention their negations where needed, so the clause database
        stays valid for later calls with different assumptions. If the
        assumptions are inconsistent with the formula the result is UNSAT
        with :attr:`SolveResult.core` set, and the solver remains usable.

        Returns a :class:`SolveResult` whose status is ``UNKNOWN`` if the
        timeout or conflict budget was exhausted before a decision was made.
        """
        start = time.monotonic()
        assumption_list = list(assumptions) if assumptions else []
        for lit in assumption_list:
            if lit == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        if not self.ok:
            return SolveResult(SolveStatus.UNSAT, elapsed_seconds=0.0)
        self._cancel_until(0)
        # assert root-level units
        for lit in self._unit_clauses:
            val = self._value(lit)
            if val is False:
                return SolveResult(SolveStatus.UNSAT,
                                   elapsed_seconds=time.monotonic() - start)
            if val is None:
                self._enqueue(lit, None)
        # Re-propagate the whole root-level trail so that clauses added since
        # the previous solve call (e.g. blocking clauses) are taken into
        # account even when their literals were already assigned at level 0.
        self.qhead = 0
        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count)
        conflicts_in_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_in_restart += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return SolveResult(
                        SolveStatus.UNSAT,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                        elapsed_seconds=time.monotonic() - start,
                    )
                learnt, backtrack_level = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self._attach_learnt(learnt)
                if not self.ok:
                    return SolveResult(
                        SolveStatus.UNSAT,
                        conflicts=self.conflicts,
                        elapsed_seconds=time.monotonic() - start,
                    )
                self.var_inc *= self.var_decay
                continue
            # no conflict
            if timeout_seconds is not None and self.conflicts % 64 == 0:
                if time.monotonic() - start > timeout_seconds:
                    return SolveResult(
                        SolveStatus.UNKNOWN,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                        elapsed_seconds=time.monotonic() - start,
                    )
            if max_conflicts is not None and self.conflicts >= max_conflicts:
                return SolveResult(
                    SolveStatus.UNKNOWN,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=time.monotonic() - start,
                )
            if conflicts_in_restart >= conflicts_until_restart:
                restart_count += 1
                conflicts_in_restart = 0
                conflicts_until_restart = 100 * _luby(restart_count)
                self._cancel_until(0)
                continue
            # Place the next assumption (restarts and backjumps may have
            # removed earlier ones; they are simply re-placed here).
            next_assumption = None
            assumption_failed = None
            while (
                self._decision_level() < len(assumption_list)
                and next_assumption is None
            ):
                candidate = assumption_list[self._decision_level()]
                value = self._value(candidate)
                if value is True:
                    self.trail_lim.append(len(self.trail))  # dummy level
                elif value is False:
                    assumption_failed = candidate
                    break
                else:
                    next_assumption = candidate
            if assumption_failed is not None:
                core = self._analyze_final(assumption_failed)
                self._cancel_until(0)
                return SolveResult(
                    SolveStatus.UNSAT,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=time.monotonic() - start,
                    core=core,
                )
            if next_assumption is not None:
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(next_assumption, None)
                continue
            var = self._pick_branch_variable()
            if var is None:
                model = {
                    v: bool(self.assign[v])
                    for v in range(1, self.num_vars + 1)
                    if self.assign[v] is not None
                }
                # unassigned variables (none should remain) default to False
                for v in range(1, self.num_vars + 1):
                    model.setdefault(v, False)
                return SolveResult(
                    SolveStatus.SAT,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                    elapsed_seconds=time.monotonic() - start,
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(var if self.phase[var] else -var, None)


def solve_brute_force(cnf: CNF, max_vars: int = 22) -> SolveResult:
    """Exhaustive model search for tiny formulas (test oracle only)."""
    if cnf.contradiction:
        return SolveResult(SolveStatus.UNSAT)
    n = cnf.num_vars
    if n > max_vars:
        raise ValueError(f"brute force limited to {max_vars} variables, got {n}")
    for bits in itertools.product([False, True], repeat=n):
        assignment = {v: bits[v - 1] for v in range(1, n + 1)}
        ok = True
        for clause in cnf.clauses:
            if not any(
                assignment[abs(l)] if l > 0 else not assignment[abs(l)]
                for l in clause
            ):
                ok = False
                break
        if ok:
            return SolveResult(SolveStatus.SAT, model=assignment)
    return SolveResult(SolveStatus.UNSAT)
