"""A CDCL SAT solver with a flat-arena kernel.

This is the solving engine behind the "SMT" layer used by the time phase
(:mod:`repro.core.time_solver`) and by the SAT-MapIt-style coupled baseline
(:mod:`repro.baseline`). It implements the standard conflict-driven clause
learning loop:

* two-watched-literal unit propagation with a binary-clause fast path,
* first-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* learnt-clause database reduction driven by LBD (glue) scores with clause
  activity decay,
* Luby restarts,
* wall-clock timeout support (the experiments impose per-case timeouts
  exactly like the paper's 4000 s limit),
* **incremental solving**: the clause database, learnt clauses, variable
  activities and saved phases all persist across ``solve`` calls,
* **assumptions**: ``solve(assumptions=[...])`` solves under a set of
  literals fixed for this call only (MiniSat-style assumption decision
  levels); an UNSAT answer under assumptions does not poison the solver and
  reports the subset of assumptions responsible (``SolveResult.core``),
* **clause-footprint push/pop**: ``push()`` marks the clause database and
  root trail; ``pop()`` retracts every clause (including learnt ones) and
  root-level assignment added since, so blocking clauses and scoped
  constraints can be undone while activities and phases survive.

The hot path is array-shaped rather than object-shaped (this is what the
``BENCH_solver.json`` speedup over the pre-rewrite kernel preserved in
:mod:`repro.smt.sat_reference` comes from):

* all clause literals live in one flat **arena** with typed-array
  ``(offset, size)`` headers and per-clause flag/score sidecars, so there
  is no per-clause list object to chase in propagation (the literal arena
  itself is a plain list: CPython list reads hand back the cached int
  object where ``array('i')`` would box a fresh one per access);
* watch lists are indexed *by literal* using Python's negative indexing
  (``watches[lit]`` works for ``lit < 0`` without any key hashing);
  binary clauses live in separate ``(other_lit, clause)`` pair lists
  and propagate without touching the arena at all;
* the assignment is a literal-indexed trit vector (``vals[lit]`` is ``1``
  true / ``-1`` false / ``0`` unassigned, with ``vals[-lit] == -vals[lit]``),
  so evaluating a literal is one list index instead of a sign branch;
* propagation and branching are inlined into the solve loop (locals bound
  once per call, not once per propagation), and conflict analysis reuses
  one persistent ``seen`` scratch bytearray (cleared via an undo list)
  instead of allocating an O(vars) list per conflict;
* ``solve`` resumes from a root-propagation watermark: clauses added since
  the last call are normalised against the root assignment instead of
  re-propagating the whole formula, and -- when neither call involves
  assumptions -- a new clause is integrated into the still-standing deep
  trail with a *minimal* backtrack, which turns blocking-clause model
  enumeration from relabel-everything into resume-next-door;
* learnt clauses carry an LBD score and an activity; every few thousand
  conflicts the worst half of the non-glue learnt database is tombstoned
  (indices stay stable, so clause-footprint push/pop and reason pointers
  survive) and the watch lists are purged; Glucose-style restart blocking
  keeps deep, nearly-complete labellings from being thrown away.

The instance sizes produced by the mapper are a few thousand variables for
the decoupled time phase, up to a few hundred thousand for the coupled
baseline on large CGRAs -- where it is *expected* to hit the timeout, which
is the scalability effect the paper measures.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf import PerfCounters
from repro.smt.cnf import CNF


class SolveStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # timeout or conflict budget exhausted

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class _SnapshotModel:
    """A SAT model backed by the solver's literal-value snapshot.

    Quacks like the ``Dict[int, bool]`` mapping the solver historically
    returned (lookup, ``get``, iteration, length) but is created with one
    C-level list copy instead of building a dict entry per variable --
    models of coupled instances have tens of thousands of variables and
    enumeration asks for many of them. ``vals`` holds the positive-literal
    half of the solver's trit vector (index = variable, value > 0 = true).
    """

    __slots__ = ("vals", "num_vars")

    def __init__(self, vals: List[int], num_vars: int) -> None:
        self.vals = vals
        self.num_vars = num_vars

    def __getitem__(self, var: int) -> bool:
        if 1 <= var <= self.num_vars:
            return self.vals[var] > 0
        raise KeyError(var)

    def get(self, var: int, default: bool = False) -> bool:
        if 1 <= var <= self.num_vars:
            return self.vals[var] > 0
        return default

    def __contains__(self, var: object) -> bool:
        return isinstance(var, int) and 1 <= var <= self.num_vars

    def __len__(self) -> int:
        return self.num_vars

    def __iter__(self):
        return iter(range(1, self.num_vars + 1))

    def keys(self):
        return range(1, self.num_vars + 1)

    def items(self):
        vals = self.vals
        return ((var, vals[var] > 0) for var in range(1, self.num_vars + 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_SnapshotModel({self.num_vars} vars)"


@dataclass
class SolveResult:
    """Outcome of a SAT call.

    ``core`` is only set for UNSAT answers obtained *under assumptions*: it
    holds a subset of the assumption literals that is already inconsistent
    with the clause database (a "failed core" in MiniSat terminology). A
    plain UNSAT (no assumptions involved) leaves it ``None``.
    """

    status: SolveStatus
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    elapsed_seconds: float = 0.0
    core: Optional[List[int]] = None

    @property
    def is_sat(self) -> bool:
        return self.status is SolveStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolveStatus.UNSAT

    def value(self, literal: int) -> bool:
        """Truth value of a literal under the model (SAT results only)."""
        if self.model is None:
            raise ValueError("no model available")
        var = abs(literal)
        val = self.model.get(var, False)
        return val if literal > 0 else not val


def _luby(index: int) -> int:
    """The ``index``-th element (0-based) of the Luby sequence 1,1,2,1,1,2,4,..."""
    size = 1
    sequence = 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        sequence -= 1
        index = index % size
    return 1 << sequence


#: first clause-DB reduction after this many conflicts ...
REDUCE_BASE_CONFLICTS = 2000
#: ... and each later one after this many more than the previous interval
REDUCE_INCREMENT_CONFLICTS = 300
#: learnt clauses with an LBD at or below this are "glue" and never deleted
GLUE_LBD = 2
#: chronological backtracking kicks in when first-UIP analysis would jump
#: back further than this many decision levels (0 disables)
CHRONO_THRESHOLD = 100
#: run a learnt-clause vivification round after this many conflicts (0 = off)
VIVIFY_INTERVAL_CONFLICTS = 4000
#: at most this many learnt clauses are vivified per round
VIVIFY_LIMIT_CLAUSES = 64


class SATSolver:
    """CDCL solver over clauses added incrementally (flat-arena kernel).

    Typical usage::

        solver = SATSolver()
        solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        result = solver.solve(timeout_seconds=10.0)

    Blocking clauses may be added between ``solve`` calls to enumerate
    models. Pass a :class:`~repro.perf.PerfCounters` to accumulate
    cross-call statistics (and, with ``detailed=True``, per-phase wall
    clock) for the profiling layer.
    """

    def __init__(self, perf: Optional[PerfCounters] = None) -> None:
        self.num_vars = 0
        self.perf = perf
        # Clause arena: clause ``i`` is arena[c_off[i] : c_off[i]+c_size[i]].
        # The literal arena itself is a plain list -- in CPython a list
        # read hands back the cached int object, while ``array('i')`` boxes
        # a fresh one on every access of the hot loop. The per-clause
        # header/sidecar vectors stay as compact typed arrays.
        self.arena: List[int] = []
        self.c_off = array("i")
        self.c_size = array("i")
        self.c_learnt = bytearray()
        self.c_dead = bytearray()
        self.c_lbd = array("i")
        self.c_act: List[float] = []
        # literal-indexed structures (index -lit via Python negative
        # indexing); slot 0 is unused, capacity doubles on growth
        self._cap = 0
        self.vals: List[int] = [0]
        self.watches: List[List[int]] = [[]]   # clauses of size >= 3
        self.bwatch: List[List[Tuple[int, int]]] = [[]]  # (other_lit, clause)
        # variable-indexed state
        self.level: List[int] = [0]
        self.reason: List[int] = [-1]          # clause index, -1 = decision
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self._seen = bytearray(1)              # analysis scratch
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.cla_inc = 1.0
        self.cla_decay = 1.0 / 0.999
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.num_learnts = 0                   # live (non-dead) learnt clauses
        self._conflicts_since_reduce = 0
        self._reduce_interval = REDUCE_BASE_CONFLICTS
        self._unit_clauses: List[int] = []
        # Literals whose watch (or binary-watch) lists received an append
        # while a scope was open. pop() only has to filter these lists --
        # every other list still holds pre-scope clauses exclusively -- so
        # retracting a scope costs O(touched lists), not O(all literals).
        self._watch_log: List[int] = []
        self._push_stack: List[
            Tuple[int, int, int, int, int, bool, int, int, int, int]
        ] = []
        # per open scope: learnt clauses below that scope's clause mark that
        # reduce-DB tombstoned while the scope was open (pop subtracts them
        # when restoring the push-time learnt count)
        self._scope_dead: List[int] = []
        # VSIDS order heap with lazy (possibly stale) entries. A pop() only
        # marks it dirty; the rebuild happens on the next solve(), so tight
        # push/pop loops (one per blocked schedule in the incremental time
        # solver) do not pay O(V log V) per scope. The membership bitmap
        # keeps backtracking from flooding the heap with duplicates.
        self._order_heap: List[Tuple[float, int]] = []
        self._heap_member = bytearray(1)
        self._heap_dirty = False
        # Root-propagation watermark: clauses below _propagated_clauses have
        # been propagated against the root trail prefix of length
        # _propagated_trail, so a later solve only needs to normalise the
        # clauses added since instead of re-propagating the whole formula.
        self._propagated_clauses = 0
        self._propagated_trail = 0
        # Minimal-backtrack solve entry (model enumeration): set when the
        # previous solve ran without assumptions and every unit clause is
        # already integrated, so a follow-up solve may keep the deep trail
        # and only backtrack as far as the newly added clauses demand.
        self._had_assumptions = False
        self._units_integrated = 0
        # Chronological backtracking: when first-UIP analysis asks for a
        # backjump further than this many levels, backtrack one level
        # instead and assert the learnt literal there, keeping the deep
        # labelling prefix alive (Nadel & Ryvchin style). 0 disables.
        self.chrono_threshold = CHRONO_THRESHOLD
        self.chrono_backtracks = 0
        # Learnt-clause vivification: every ``vivify_interval`` conflicts
        # (accumulated across solve calls) the next root-entry solve
        # re-derives up to ``vivify_limit`` of the most active long learnt
        # clauses under their own negated literals and strengthens those
        # that propagation proves redundant. 0 disables.
        self.vivify_interval = VIVIFY_INTERVAL_CONFLICTS
        self.vivify_limit = VIVIFY_LIMIT_CLAUSES
        self.vivifications = 0
        self.vivified_literals = 0
        self._conflicts_since_vivify = 0

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def _grow(self, min_cap: int) -> None:
        """Re-lay the literal-indexed vectors for at least ``min_cap`` vars.

        Growth overshoots by half the requested size: the expensive part is
        allocating the per-literal watch lists, and the typical caller (a
        scoped re-encode) follows its base allocation with a second, smaller
        wave of auxiliary variables that should land inside the same lay-out.
        """
        cap = max(self._cap * 2, min_cap * 2, 16)
        vals = [0] * (2 * cap + 1)
        watches: List[List[int]] = [[] for _ in range(2 * cap + 1)]
        bwatch: List[List[int]] = [[] for _ in range(2 * cap + 1)]
        for lit in range(1, self.num_vars + 1):
            vals[lit] = self.vals[lit]
            vals[-lit] = self.vals[-lit]
            watches[lit] = self.watches[lit]
            watches[-lit] = self.watches[-lit]
            bwatch[lit] = self.bwatch[lit]
            bwatch[-lit] = self.bwatch[-lit]
        self._cap = cap
        self.vals = vals
        self.watches = watches
        self.bwatch = bwatch

    def new_var(self) -> int:
        var = self.num_vars + 1
        if var > self._cap:
            self._grow(var)
        self.num_vars = var
        self.level.append(0)
        self.reason.append(-1)
        self.activity.append(0.0)
        self.phase.append(False)
        self._seen.append(0)
        self._heap_member.append(1)
        heapq.heappush(self._order_heap, (0.0, var))
        return var

    def boost_activity(self, var: int, activity: float) -> None:
        """Raise a variable's activity to at least ``activity``."""
        if activity > self.activity[var]:
            self.activity[var] = activity
            self._heap_member[var] = 1
            heapq.heappush(self._order_heap, (-activity, var))

    def ensure_vars(self, count: int) -> None:
        """Make sure variables ``1..count`` exist (bulk allocation)."""
        fresh = count - self.num_vars
        if fresh <= 0:
            return
        if count > self._cap:
            self._grow(count)
        self.level.extend([0] * fresh)
        self.reason.extend([-1] * fresh)
        self.activity.extend([0.0] * fresh)
        self.phase.extend([False] * fresh)
        self._seen.extend(bytes(fresh))
        if fresh > 8:
            # bulk allocation: defer the heap to the lazy rebuild at the
            # start of the next solve instead of re-heapifying now
            self._heap_member.extend(bytes(fresh))
            self._heap_dirty = True
        else:
            self._heap_member.extend(b"\x01" * fresh)
            heap = self._order_heap
            for var in range(self.num_vars + 1, count + 1):
                heapq.heappush(heap, (0.0, var))
        self.num_vars = count

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicates removed, tautologies dropped."""
        clause: List[int] = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
            self.ensure_vars(abs(lit))
        if not clause:
            self.ok = False
            return
        self._attach(clause, learnt=False)

    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        """Bulk-load *clean* clauses (the CNF-layer fast path).

        The caller guarantees what :meth:`add_clause` normally establishes:
        no duplicate or complementary literals inside a clause, no zero
        literals, no empty clauses, and every variable already allocated
        (:meth:`ensure_vars`). :class:`repro.smt.cnf.CNF` enforces exactly
        these invariants, so :meth:`FiniteDomainProblem._sync_solver
        <repro.smt.csp.FiniteDomainProblem._sync_solver>` ships its clause
        backlog through here without paying the per-literal re-validation
        the pre-rewrite kernel performed on every sync.
        """
        watches = self.watches
        bwatch = self.bwatch
        units = self._unit_clauses
        log = self._watch_log if self._push_stack else None
        index = len(self.c_off)
        offset = len(self.arena)
        sizes = list(map(len, clauses))
        offsets = list(itertools.accumulate(sizes, initial=offset))
        self.c_off.extend(offsets[:-1])
        self.c_size.extend(sizes)
        self.arena.extend(itertools.chain.from_iterable(clauses))
        for clause, size in zip(clauses, sizes):
            if size == 2:
                a, b = clause
                bwatch[a].append((b, index))
                bwatch[b].append((a, index))
                if log is not None:
                    log.append(a)
                    log.append(b)
            elif size == 1:
                units.append(clause[0])
            else:
                a = clause[0]
                b = clause[1]
                watches[a].append(index)
                watches[b].append(index)
                if log is not None:
                    log.append(a)
                    log.append(b)
            index += 1
        count = len(sizes)
        self.c_learnt.extend(bytes(count))
        self.c_dead.extend(bytes(count))
        self.c_lbd.frombytes(bytes(count * self.c_lbd.itemsize))
        self.c_act.extend([0.0] * count)

    def _attach(self, clause: List[int], learnt: bool, lbd: int = 0) -> int:
        """Append a clause to the arena and hook up its watches."""
        index = len(self.c_off)
        self.c_off.append(len(self.arena))
        self.c_size.append(len(clause))
        self.c_learnt.append(1 if learnt else 0)
        self.c_dead.append(0)
        self.c_lbd.append(lbd)
        self.c_act.append(0.0)
        self.arena.extend(clause)
        size = len(clause)
        if size == 1:
            if not learnt:
                self._unit_clauses.append(clause[0])
        elif size == 2:
            a, b = clause
            self.bwatch[a].append((b, index))
            self.bwatch[b].append((a, index))
            if self._push_stack:
                self._watch_log.extend((a, b))
        else:
            a = clause[0]
            b = clause[1]
            self.watches[a].append(index)
            self.watches[b].append(index)
            if self._push_stack:
                self._watch_log.extend((a, b))
        if learnt:
            self.num_learnts += 1
            if self.perf is not None:
                self.perf.learnts += 1
                if lbd <= GLUE_LBD:
                    self.perf.glue_learnts += 1
        return index

    def _clause_literals(self, index: int) -> List[int]:
        off = self.c_off[index]
        return list(self.arena[off:off + self.c_size[index]])

    @property
    def clauses(self) -> List[List[int]]:
        """Live clauses (problem + learnt) as literal lists.

        A *view* materialised from the arena -- inspection and tests only;
        the solver itself never touches it.
        """
        return [
            self._clause_literals(index)
            for index in range(len(self.c_off))
            if not self.c_dead[index]
        ]

    @classmethod
    def from_cnf(cls, cnf: CNF) -> "SATSolver":
        solver = cls()
        solver.ensure_vars(cnf.num_vars)
        if cnf.contradiction:
            solver.ok = False
        for clause in cnf.clauses:
            solver.add_clause(clause)
        return solver

    # ------------------------------------------------------------------ #
    # Clause-footprint push/pop
    # ------------------------------------------------------------------ #
    @property
    def scope_depth(self) -> int:
        return len(self._push_stack)

    def push(self) -> None:
        """Mark the clause database and root trail for a later :meth:`pop`.

        Scopes nest. Everything added after the mark -- problem clauses,
        blocking clauses, learnt clauses, *variables*, and root-level
        assignments derived from them -- is retracted by ``pop``; the
        activities and saved phases of surviving variables persist, which
        is what makes scoped re-solving cheap.
        """
        self._cancel_until(0)
        self._push_stack.append(
            (len(self.c_off), len(self.arena), len(self._unit_clauses),
             len(self.trail), len(self._watch_log), self.ok, self.num_vars,
             self._propagated_clauses, self._propagated_trail,
             self.num_learnts)
        )
        self._scope_dead.append(0)

    def pop(self) -> None:
        """Retract every clause, variable, and root assignment since push."""
        if not self._push_stack:
            raise RuntimeError("pop() without matching push()")
        (num_clauses, arena_len, num_units, trail_len, log_len, ok,
         num_vars, propagated_clauses, propagated_trail,
         num_learnts) = self._push_stack.pop()
        # The watermark stored at push() described a clause set and root
        # trail prefix that this pop restores *exactly* (footprint
        # truncation), so the root-propagation completeness it certified
        # still holds and the next solve only normalises genuinely new
        # clauses (docs/performance.md sketches the argument).
        self._propagated_clauses = propagated_clauses
        self._propagated_trail = propagated_trail
        self._cancel_until(0)
        vals = self.vals
        for lit in self.trail[trail_len:]:
            var = lit if lit > 0 else -lit
            self.phase[var] = lit > 0
            vals[lit] = 0
            vals[-lit] = 0
            self.reason[var] = -1
            self.level[var] = 0
        del self.trail[trail_len:]
        # push-time learnt count, minus any pre-mark learnt clauses that a
        # reduce-DB pass tombstoned while this scope was open
        self.num_learnts = num_learnts - self._scope_dead.pop()
        del self.arena[arena_len:]
        del self.c_off[num_clauses:]
        del self.c_size[num_clauses:]
        del self.c_learnt[num_clauses:]
        del self.c_dead[num_clauses:]
        del self.c_lbd[num_clauses:]
        del self.c_act[num_clauses:]
        del self._unit_clauses[num_units:]
        if self.num_vars > num_vars:
            # scope-local variables die with the scope; without this the
            # solver would keep deciding thousands of unconstrained
            # leftovers on every later solve
            for var in range(num_vars + 1, self.num_vars + 1):
                vals[var] = 0
                vals[-var] = 0
                self.watches[var] = []
                self.watches[-var] = []
                self.bwatch[var] = []
                self.bwatch[-var] = []
            del self.level[num_vars + 1:]
            del self.reason[num_vars + 1:]
            del self.activity[num_vars + 1:]
            del self.phase[num_vars + 1:]
            del self._seen[num_vars + 1:]
            del self._heap_member[num_vars + 1:]
            self.num_vars = num_vars
        self.ok = ok
        self.qhead = 0
        self._repair_watches(num_clauses, log_len, num_vars)
        self._heap_dirty = True  # rebuilt lazily on the next solve

    def _repair_watches(self, num_clauses: int, log_len: int,
                        num_vars: int) -> None:
        """Drop watchers of clauses retracted by :meth:`pop`.

        Surviving watch entries stay as they are: the two-watched-literal
        invariant is maintained in place by propagation (an entry for a
        live clause always sits under one of its two arena-front literals),
        so a pop only filters lists instead of re-deriving them from the
        arena -- and only the lists the scope actually appended to, which
        the watch log recorded. Tombstones are swept out on the way.
        """
        c_dead = self.c_dead
        touched = set(self._watch_log[log_len:])
        del self._watch_log[log_len:]
        for lit in touched:
            var = lit if lit > 0 else -lit
            if var > num_vars:
                continue  # the scope-local variable died with the scope
            watchlist = self.watches[lit]
            if watchlist:
                watchlist[:] = [
                    ci for ci in watchlist
                    if ci < num_clauses and not c_dead[ci]
                ]
            bw = self.bwatch[lit]  # binary clauses are never tombstoned
            if bw:
                bw[:] = [entry for entry in bw if entry[1] < num_clauses]

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> Optional[bool]:
        val = self.vals[lit]
        if val == 0:
            return None
        return val > 0

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason: int) -> None:
        """Cold-path enqueue (units, assumptions, decisions)."""
        var = lit if lit > 0 else -lit
        self.vals[lit] = 1
        self.vals[-lit] = -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)

    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        vals = self.vals
        heap = self._order_heap
        heappush = heapq.heappush
        activity = self.activity
        phase = self.phase
        reason = self.reason
        member = self._heap_member
        for lit in reversed(self.trail[limit:]):
            var = lit if lit > 0 else -lit
            phase[var] = lit > 0  # phase saving
            vals[lit] = 0
            vals[-lit] = 0
            reason[var] = -1
            if not member[var]:
                member[var] = 1
                heappush(heap, (-activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    def _normalize_new_clauses(self, start: int) -> bool:
        """Bring clauses added since the root watermark up to date.

        Called at the start of :meth:`solve` with the trail cancelled to the
        root. For each clause added since the last propagation-complete
        root state this either detects a root conflict (returns ``False``),
        enqueues the clause's unit implication, or repairs the watches so
        both sit on non-false literals. Clauses already satisfied by a root
        literal are skipped: the satisfying assignment can only disappear
        through a ``pop``, which rolls the watermark back past this clause
        (or kills the clause outright), so the skipped watches can never be
        missed. This clause-local sweep is what lets ``solve`` resume
        propagation from the watermark instead of re-propagating the whole
        formula on every call.
        """
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        c_dead = self.c_dead
        vals = self.vals
        watches = self.watches
        log = self._watch_log if self._push_stack else None
        for ci in range(start, len(c_off)):
            if c_dead[ci]:
                continue
            off = c_off[ci]
            size = c_size[ci]
            if size == 2:
                a = arena[off]
                b = arena[off + 1]
                va = vals[a]
                vb = vals[b]
                if va > 0 or vb > 0:
                    continue
                if va < 0:
                    if vb < 0:
                        return False
                    if vb == 0:
                        self._enqueue(b, ci)
                elif vb < 0:
                    self._enqueue(a, ci)
                continue
            if size == 1:
                lit = arena[off]
                val = vals[lit]
                if val < 0:
                    return False
                if val == 0:
                    self._enqueue(lit, -1)
                continue
            w0 = arena[off]
            w1 = arena[off + 1]
            if vals[w0] >= 0 and vals[w1] >= 0:
                continue  # both watches non-false: nothing pending
            satisfied = False
            k0 = -1
            k1 = -1
            for k in range(off, off + size):
                val = vals[arena[k]]
                if val > 0:
                    satisfied = True
                    break
                if val == 0:
                    if k0 < 0:
                        k0 = k
                    else:
                        k1 = k
                        break
            if satisfied:
                continue
            if k0 < 0:
                return False  # every literal false at the root
            if k1 < 0:
                self._enqueue(arena[k0], ci)
                continue
            # two unassigned literals: rotate them into the watch slots
            la = arena[k0]
            lb = arena[k1]
            if k0 != off:
                arena[k0] = w0
                arena[off] = la
                if k1 == off:
                    k1 = k0
            if k1 != off + 1:
                arena[k1] = arena[off + 1]
                arena[off + 1] = lb
            for old in (w0, w1):
                if old != la and old != lb:
                    watches[old].remove(ci)
            for new in (la, lb):
                if new != w0 and new != w1:
                    watches[new].append(ci)
                    if log is not None:
                        log.append(new)
        return True

    # ------------------------------------------------------------------ #
    # Minimal-backtrack solve entry (model enumeration)
    # ------------------------------------------------------------------ #
    def _entry_backtrack_level(self, start: int) -> int:
        """Deepest level at which the clauses in ``[start:]`` can be
        integrated into the *current* (possibly deep) trail.

        Only a clause falsified by the current assignment forces a
        backtrack: to one level above its deepest literals when several
        share the maximum level (freeing at least two literals to watch),
        or to the second-deepest level (where the clause is unit)
        otherwise. A currently-unit clause needs no backtrack -- its
        implication is enqueued at the present decision level, which is
        sound (the reason's false literals all sit at lower levels).
        Returns ``0`` to request the ordinary root-level entry (also for
        the odd cases this path does not handle, e.g. a new unit clause
        hiding among learnt clauses).
        """
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        c_dead = self.c_dead
        vals = self.vals
        level = self.level
        bt = len(self.trail_lim)
        for ci in range(start, len(c_off)):
            if c_dead[ci]:
                continue
            off = c_off[ci]
            size = c_size[ci]
            if size == 1:
                if vals[arena[off]] <= 0:
                    return 0  # un-satisfied unit: take the root path
                continue
            cands = 0
            lmax = 0
            l2 = 0
            nmax = 0
            for k in range(off, off + size):
                q = arena[k]
                if vals[q] >= 0:
                    cands += 1
                    if cands >= 2:
                        break
                else:
                    lev = level[q if q > 0 else -q]
                    if lev > lmax:
                        l2 = lmax
                        lmax = lev
                        nmax = 1
                    elif lev == lmax:
                        nmax += 1
                    elif lev > l2:
                        l2 = lev
            if cands:
                continue
            need = lmax - 1 if nmax >= 2 else l2
            if need < bt:
                bt = need
            if bt <= 0:
                return 0
        return bt

    def _integrate_new_clauses(self, start: int) -> None:
        """Hook the clauses in ``[start:]`` into the current deep trail.

        Called after :meth:`_entry_backtrack_level` backtracked far enough
        that every clause has at least one non-false literal. Watches are
        moved onto the best literals (non-false ones preferred, the
        deepest false one as the second choice) and currently-unit clauses
        enqueue their implication at the present decision level. Anything
        this pass leaves merely *unit-unenqueued* (e.g. a satisfied clause
        whose support is deeper than its false literals) is discovered
        through the ordinary watch/conflict machinery later -- soundness
        and completeness do not depend on eager enqueueing here.
        """
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        c_dead = self.c_dead
        vals = self.vals
        level = self.level
        watches = self.watches
        log = self._watch_log if self._push_stack else None
        for ci in range(start, len(c_off)):
            if c_dead[ci]:
                continue
            off = c_off[ci]
            size = c_size[ci]
            if size < 2:
                continue
            if size == 2:
                a = arena[off]
                b = arena[off + 1]
                va = vals[a]
                vb = vals[b]
                if va == 0 and vb < 0:
                    self._enqueue(a, ci)
                elif vb == 0 and va < 0:
                    self._enqueue(b, ci)
                continue
            w0 = arena[off]
            w1 = arena[off + 1]
            if vals[w0] >= 0 and vals[w1] >= 0:
                continue
            # pick the two best watch positions: non-false first, then the
            # deepest false literal
            k0 = -1
            k1 = -1
            deep_k = off
            deep_level = -1
            for k in range(off, off + size):
                q = arena[k]
                val = vals[q]
                if val >= 0:
                    if k0 < 0:
                        k0 = k
                    elif k1 < 0:
                        k1 = k
                        break
                else:
                    lev = level[q if q > 0 else -q]
                    if lev > deep_level:
                        deep_level = lev
                        deep_k = k
            if k0 < 0:
                continue  # cannot happen after _entry_backtrack_level
            unit = k1 < 0
            if unit:
                k1 = deep_k if deep_k != k0 else off
            la = arena[k0]
            lb = arena[k1]
            if k0 != off:
                arena[k0] = w0
                arena[off] = la
                if k1 == off:
                    k1 = k0
            if k1 != off + 1:
                arena[k1] = arena[off + 1]
                arena[off + 1] = lb
            for old in (w0, w1):
                if old != la and old != lb:
                    watches[old].remove(ci)
            for new in (la, lb):
                if new != w0 and new != w1:
                    watches[new].append(ci)
                    if log is not None:
                        log.append(new)
            if unit and vals[la] == 0:
                self._enqueue(la, ci)

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        activity = self.activity[var] + self.var_inc
        self.activity[var] = activity
        if activity > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._rebuild_order_heap()
        else:
            # always push the refreshed priority (VSIDS must percolate
            # immediately); the membership bitmap only spares the far more
            # numerous _cancel_until re-insertions
            self._heap_member[var] = 1
            heapq.heappush(self._order_heap, (-activity, var))

    def _bump_clause(self, index: int) -> None:
        act = self.c_act[index] + self.cla_inc
        self.c_act[index] = act
        if act > 1e20:
            scale = 1e-20
            c_act = self.c_act
            for ci in range(len(c_act)):
                c_act[ci] *= scale
            self.cla_inc *= scale

    def _rebuild_order_heap(self) -> None:
        vals = self.vals
        activity = self.activity
        heap = [
            (-activity[v], v)
            for v in range(1, self.num_vars + 1)
            if vals[v] == 0
        ]
        heapq.heapify(heap)
        # assigned variables are exactly the trail, so build the bitmap as
        # all-members and knock those out instead of re-walking the heap
        member = bytearray(b"\x01" * (self.num_vars + 1))
        for lit in self.trail:
            member[lit if lit > 0 else -lit] = 0
        self._order_heap = heap
        self._heap_member = member

    def _analyze(self, conflict_index: int) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        level = self.level
        reason = self.reason
        trail = self.trail
        seen = self._seen
        current_level = len(self.trail_lim)
        learnt: List[int] = []
        to_clear: List[int] = []
        counter = 0
        p = 0
        index = len(trail) - 1
        clause_index = conflict_index
        while True:
            if self.c_learnt[clause_index]:
                self._bump_clause(clause_index)
            off = c_off[clause_index]
            for j in range(off, off + c_size[clause_index]):
                q = arena[j]
                if q == p:
                    # skip the asserted literal of a reason clause (p is 0
                    # for the conflict clause, matching no literal); binary
                    # reasons enqueue without normalising arena positions,
                    # so the skip is by value, not by position
                    continue
                var = q if q > 0 else -q
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    to_clear.append(var)
                    self._bump(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                p = trail[index]
                var = p if p > 0 else -p
                if seen[var]:
                    break
                index -= 1
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
            clause_index = reason[var]
        for var in to_clear:
            seen[var] = 0
        learnt_clause = [-p] + learnt
        if len(learnt_clause) == 1:
            backtrack = 0
        else:
            backtrack = max(level[abs(q)] for q in learnt_clause[1:])
        return learnt_clause, backtrack

    def _learnt_lbd(self, learnt: List[int]) -> int:
        """Literal-blocks-distance: distinct decision levels in the clause."""
        level = self.level
        return len({level[q if q > 0 else -q] for q in learnt})

    def _attach_learnt(self, learnt: List[int]) -> None:
        """Record a learnt clause and enqueue its asserting literal."""
        if len(learnt) == 1:
            self._cancel_until(0)
            val = self.vals[learnt[0]]
            if val < 0:
                self.ok = False
                return
            if val == 0:
                self._enqueue(learnt[0], -1)
            self._attach(learnt, learnt=True, lbd=1)
            return
        # position 1 must hold a literal of the backtrack level for watching
        level = self.level
        max_index = 1
        max_level = level[abs(learnt[1])]
        for j in range(2, len(learnt)):
            lj = level[abs(learnt[j])]
            if lj > max_level:
                max_level = lj
                max_index = j
        learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
        index = self._attach(learnt, learnt=True, lbd=self._learnt_lbd(learnt))
        self._enqueue(learnt[0], index)

    # ------------------------------------------------------------------ #
    # Learnt-database reduction
    # ------------------------------------------------------------------ #
    def _reduce_doomed(self) -> List[int]:
        """Select the clauses :meth:`_reduce_db` will tombstone.

        Returns the worst half of the deletable learnt clauses in
        worst-first order. Split out from :meth:`_reduce_db` because the
        numpy tier vectorises exactly this selection; the total order
        (high LBD, then low activity, then low clause index -- the last
        from the stable sort over ascending indices) is part of the
        bit-identity contract between the backend tiers.
        """
        arena = self.arena
        c_off = self.c_off
        c_lbd = self.c_lbd
        c_act = self.c_act
        vals = self.vals
        reason = self.reason
        candidates = [
            ci
            for ci in range(len(c_off))
            if self.c_learnt[ci]
            and not self.c_dead[ci]
            and self.c_size[ci] > 2
            and c_lbd[ci] > GLUE_LBD
        ]
        # drop locked clauses (reason of the first literal's assignment)
        unlocked = []
        for ci in candidates:
            lit0 = arena[c_off[ci]]
            var = lit0 if lit0 > 0 else -lit0
            if vals[lit0] > 0 and reason[var] == ci:
                continue
            unlocked.append(ci)
        unlocked.sort(key=lambda ci: (-c_lbd[ci], c_act[ci]))
        return unlocked[: len(unlocked) // 2]

    def _reduce_db(self) -> None:
        """Tombstone the worst half of the deletable learnt clauses.

        Deletable means learnt, live, longer than binary, not glue
        (LBD > :data:`GLUE_LBD`) and not locked (the reason of a current
        assignment). Worst-first order is (high LBD, low activity) -- the
        Glucose policy. Tombstoning keeps clause indices stable, which is
        what lets reason pointers and the clause-footprint push/pop marks
        survive a reduction; the arena slots are reclaimed when a ``pop``
        truncates past them.
        """
        doomed = self._reduce_doomed()
        if not doomed:
            return
        for ci in doomed:
            self.c_dead[ci] = 1
        self.num_learnts -= len(doomed)
        if self._scope_dead:
            # charge each tombstone to every open scope whose clause mark
            # lies above it, so pop() can restore exact learnt counts
            marks = [entry[0] for entry in self._push_stack]
            for ci in doomed:
                for depth, mark in enumerate(marks):
                    if ci < mark:
                        self._scope_dead[depth] += 1
        # purge the long-clause watch lists (binaries are never reduced)
        c_dead = self.c_dead
        for lit in range(1, self.num_vars + 1):
            for watchlist in (self.watches[lit], self.watches[-lit]):
                if any(c_dead[ci] for ci in watchlist):
                    watchlist[:] = [ci for ci in watchlist if not c_dead[ci]]
        if self.perf is not None:
            self.perf.learnts_deleted += len(doomed)
            self.perf.reductions += 1

    # ------------------------------------------------------------------ #
    # Failed-assumption cores
    # ------------------------------------------------------------------ #
    def _analyze_final(self, failed: int) -> List[int]:
        """Failed-assumption core: assumptions implying ``not failed``.

        ``failed`` is an assumption literal found false while placing the
        assumption prefix. Walking the trail top-down through the reasons
        collects the (subset of) assumption decisions responsible, exactly
        like MiniSat's ``analyzeFinal``.
        """
        core = [failed]
        if not self.trail_lim:
            return core
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        level = self.level
        seen = self._seen
        to_clear = [abs(failed)]
        seen[abs(failed)] = 1
        for lit in reversed(self.trail[self.trail_lim[0]:]):
            var = lit if lit > 0 else -lit
            if not seen[var]:
                continue
            reason = self.reason[var]
            if reason < 0:
                core.append(lit)  # an assumption decision
            else:
                off = c_off[reason]
                for j in range(off, off + c_size[reason]):
                    q = arena[j]
                    if q == lit:  # the asserted literal (see _analyze)
                        continue
                    qvar = q if q > 0 else -q
                    if level[qvar] > 0 and not seen[qvar]:
                        seen[qvar] = 1
                        to_clear.append(qvar)
            seen[var] = 0
        for var in to_clear:
            seen[var] = 0
        return core

    # ------------------------------------------------------------------ #
    # Cold-path propagation and learnt-clause vivification
    # ------------------------------------------------------------------ #
    def _propagate(self) -> int:
        """Propagate the trail suffix from :attr:`qhead` to fixpoint.

        A cold-path mirror of the propagation loop inlined into
        :meth:`_search` (same watch-list maintenance, same watch log,
        same counters); returns the conflicting clause index, or -1 at
        fixpoint. Vivification needs propagation outside the search loop,
        so this is the one place the propagation logic exists twice --
        keep the two in lockstep.
        """
        vals = self.vals
        trail = self.trail
        watches = self.watches
        bwatch = self.bwatch
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        c_dead = self.c_dead
        level = self.level
        reason = self.reason
        log = self._watch_log if self._push_stack else None
        trail_append = trail.append
        trail_len = len(trail)
        qhead = self.qhead
        props = 0
        confl = -1
        dl = len(self.trail_lim)
        while qhead < trail_len:
            lit = trail[qhead]
            qhead += 1
            props += 1
            neg = -lit
            bw = bwatch[neg]
            if bw:
                for other, bci in bw:
                    val = vals[other]
                    if val < 0:
                        confl = bci
                        break
                    if val == 0:
                        vals[other] = 1
                        vals[-other] = -1
                        var = other if other > 0 else -other
                        level[var] = dl
                        reason[var] = bci
                        trail_append(other)
                        trail_len += 1
                if confl >= 0:
                    break
            watchlist = watches[neg]
            i = 0
            j = 0
            n = len(watchlist)
            if not n:
                continue
            while i < n:
                ci = watchlist[i]
                i += 1
                if c_dead[ci]:
                    continue
                off = c_off[ci]
                first = arena[off]
                if first == neg:
                    first = arena[off + 1]
                    arena[off] = first
                    arena[off + 1] = neg
                if vals[first] > 0:
                    watchlist[j] = ci
                    j += 1
                    continue
                end = off + c_size[ci]
                found = False
                for k in range(off + 2, end):
                    lk = arena[k]
                    if vals[lk] >= 0:
                        arena[off + 1] = lk
                        arena[k] = neg
                        watches[lk].append(ci)
                        if log is not None:
                            log.append(lk)
                        found = True
                        break
                if found:
                    continue
                watchlist[j] = ci
                j += 1
                if vals[first] < 0:
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    confl = ci
                    break
                vals[first] = 1
                vals[-first] = -1
                var = first if first > 0 else -first
                level[var] = dl
                reason[var] = ci
                trail_append(first)
                trail_len += 1
            if j != n:
                del watchlist[j:]
            if confl >= 0:
                break
        self.qhead = qhead
        self.propagations += props
        return confl

    def _vivify_root(self) -> bool:
        """One vivification round over the most active long learnt clauses.

        Runs on the root-entry path of :meth:`solve` only: the root trail
        is first propagated to fixpoint, then each candidate clause has
        its literals asserted negated, one at a time, at a throwaway
        decision level. A literal propagation proves false is redundant
        and dropped; a literal found true -- or an outright conflict --
        truncates the clause there. Learnt clauses are implied by the
        problem clauses, so each strengthened replacement is implied too
        and the original can be tombstoned with the exact bookkeeping
        reduce-DB uses. Returns ``False`` when the formula turns out
        UNSAT at the root along the way.
        """
        if self._propagate() >= 0:
            return False
        c_act = self.c_act
        c_lbd = self.c_lbd
        candidates = [
            ci
            for ci in range(len(self.c_off))
            if self.c_learnt[ci]
            and not self.c_dead[ci]
            and self.c_size[ci] > 2
            and c_lbd[ci] > GLUE_LBD
        ]
        if not candidates:
            return True
        candidates.sort(key=lambda ci: (-c_act[ci], ci))
        del candidates[self.vivify_limit:]
        self.vivifications += 1
        for ci in candidates:
            if self.c_dead[ci]:
                continue
            if not self._vivify_clause(ci):
                return False
        return True

    def _vivify_clause(self, ci: int) -> bool:
        """Vivify one learnt clause; ``False`` when the root became UNSAT."""
        vals = self.vals
        arena = self.arena
        reason = self.reason
        off = self.c_off[ci]
        lits = arena[off:off + self.c_size[ci]]
        lit0 = lits[0]
        if vals[lit0] > 0 and reason[lit0 if lit0 > 0 else -lit0] == ci:
            return True  # locked: the reason of a root assignment
        kept: List[int] = []
        assumed = 0
        self.trail_lim.append(len(self.trail))
        for q in lits:
            val = vals[q]
            if val > 0:
                kept.append(q)
                break
            if val < 0:
                continue  # implied false under the kept prefix: drop it
            kept.append(q)
            assumed += 1
            self._enqueue(-q, -1)
            if self._propagate() >= 0:
                break  # the kept prefix alone is contradictory: truncate
        self._cancel_until(0)
        if not kept or len(kept) >= len(lits):
            return True  # nothing gained
        if not assumed and vals[kept[-1]] > 0:
            return True  # satisfied outright at the root; leave it alone
        # tombstone the original exactly like reduce-DB does, including
        # the per-scope dead counts and the two watch-list entries
        w0 = arena[off]
        w1 = arena[off + 1]
        self.c_dead[ci] = 1
        self.num_learnts -= 1
        if self._scope_dead:
            for depth, entry in enumerate(self._push_stack):
                if ci < entry[0]:
                    self._scope_dead[depth] += 1
        self.watches[w0].remove(ci)
        self.watches[w1].remove(ci)
        if self.perf is not None:
            self.perf.learnts_deleted += 1
        self.vivified_literals += len(lits) - len(kept)
        if len(kept) == 1:
            unit = kept[0]
            val = vals[unit]
            if val < 0:
                self.ok = False
                return False
            if val > 0:
                return True  # already implied at the root
            self._enqueue(unit, -1)
            self._attach(kept, learnt=True, lbd=1)
            return self._propagate() < 0
        lbd = min(self.c_lbd[ci] or len(kept), len(kept))
        self._attach(kept, learnt=True, lbd=max(1, lbd))
        return True

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(
        self,
        timeout_seconds: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        assumptions: Optional[Sequence[int]] = None,
    ) -> SolveResult:
        """Run the CDCL search, optionally under assumption literals.

        Assumptions are placed as the first decisions (one decision level
        each) and hold for this call only; clauses learnt while they are in
        force mention their negations where needed, so the clause database
        stays valid for later calls with different assumptions. If the
        assumptions are inconsistent with the formula the result is UNSAT
        with :attr:`SolveResult.core` set, and the solver remains usable.

        Returns a :class:`SolveResult` whose status is ``UNKNOWN`` if the
        timeout or conflict budget was exhausted before a decision was made.
        """
        start = time.monotonic()
        assumption_list = list(assumptions) if assumptions else []
        for lit in assumption_list:
            if lit == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        if not self.ok:
            return self._finish(SolveResult(SolveStatus.UNSAT), start)
        if self._heap_dirty:
            self._rebuild_order_heap()
            self._heap_dirty = False
        vals = self.vals
        # Minimal-backtrack entry: when neither this call nor the previous
        # one uses assumptions and no new unit clause arrived, the deep
        # trail of the previous (typically SAT) call can be kept and only
        # unwound as far as the new clauses -- usually one blocking clause
        # -- demand. This is what makes model enumeration resume next to
        # the previous model instead of relabelling every variable.
        partial_bt = 0
        if (
            self.trail_lim
            and not assumption_list
            and not self._had_assumptions
            and len(self._unit_clauses) == self._units_integrated
        ):
            partial_bt = self._entry_backtrack_level(self._propagated_clauses)
        self._had_assumptions = bool(assumption_list)
        if partial_bt > 0:
            if partial_bt < len(self.trail_lim):
                self._cancel_until(partial_bt)
            self._integrate_new_clauses(self._propagated_clauses)
            self._propagated_clauses = len(self.c_off)
        else:
            self._cancel_until(0)
            # assert root-level units
            for lit in self._unit_clauses:
                val = vals[lit]
                if val < 0:
                    return self._finish(
                        SolveResult(SolveStatus.UNSAT,
                                    elapsed_seconds=time.monotonic() - start),
                        start, timed=True,
                    )
                if val == 0:
                    self._enqueue(lit, -1)
            self._units_integrated = len(self._unit_clauses)
            # Clauses added since the previous solve call (e.g. blocking
            # clauses) must bite even when their literals were already
            # assigned at level 0. Instead of re-propagating the whole root
            # trail, the new clauses are normalised against the root
            # assignment and propagation resumes from the watermark.
            if self._propagated_clauses < len(self.c_off):
                if not self._normalize_new_clauses(self._propagated_clauses):
                    self.ok = False
                    return self._finish(
                        SolveResult(SolveStatus.UNSAT,
                                    elapsed_seconds=time.monotonic() - start),
                        start, timed=True,
                    )
            self.qhead = min(self._propagated_trail, len(self.trail))
            # Periodic learnt-clause vivification (root entries only, so
            # the minimal-backtrack enumeration path stays untouched).
            if (
                self.vivify_interval > 0
                and self._conflicts_since_vivify >= self.vivify_interval
            ):
                self._conflicts_since_vivify = 0
                if not self._vivify_root():
                    self.ok = False
                    return self._finish(
                        SolveResult(SolveStatus.UNSAT,
                                    elapsed_seconds=time.monotonic() - start),
                        start, timed=True,
                    )
        return self._search(start, timeout_seconds, max_conflicts,
                            assumption_list)

    def _search(
        self,
        start: float,
        timeout_seconds: Optional[float],
        max_conflicts: Optional[int],
        assumption_list: List[int],
    ) -> SolveResult:
        """The CDCL hot loop (propagate / analyze / backjump / reduce).

        Runs after :meth:`solve` has prepared the trail, the root
        watermark and the assumption list. The native backend tiers
        override exactly this method; every observable -- statuses,
        failed-assumption cores, model sets, even the VSIDS branching
        order -- must match this implementation bit for bit.
        """
        vals = self.vals
        perf = self.perf
        detailed = perf is not None and perf.detailed
        monotonic = time.monotonic
        # Hot-loop locals. The CDCL loop below runs once per decision or
        # conflict, and the two-watched-literal propagation is inlined into
        # it rather than living in a method of its own: on the labelling-
        # style instances the mapper produces, most propagation calls
        # process a single literal, so a per-call prologue (argument
        # passing plus rebinding a dozen attributes) would cost more than
        # the propagation itself. Bind everything once instead.
        trail = self.trail
        trail_lim = self.trail_lim
        watches = self.watches
        bwatch = self.bwatch
        arena = self.arena
        c_off = self.c_off
        c_size = self.c_size
        c_dead = self.c_dead
        level = self.level
        reason = self.reason
        phase = self.phase
        activity = self.activity
        heap = self._order_heap
        member = self._heap_member
        heappop = heapq.heappop
        heappush = heapq.heappush
        log = self._watch_log if self._push_stack else None
        trail_append = trail.append
        trail_len = len(trail)
        qhead = self.qhead
        props = 0
        num_assumptions = len(assumption_list)
        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count)
        conflicts_in_restart = 0
        trail_ema = 0.0  # moving average of trail depth at conflicts
        t0 = 0.0
        while True:
            # ---------------- unit propagation (inlined) ----------------
            if detailed:
                t0 = monotonic()
            confl = -1
            dl = len(trail_lim)
            while qhead < trail_len:
                lit = trail[qhead]
                qhead += 1
                props += 1
                neg = -lit
                # binary fast path: the other literal is the unit directly
                bw = bwatch[neg]
                if bw:
                    for other, bci in bw:
                        val = vals[other]
                        if val < 0:
                            confl = bci
                            break
                        if val == 0:
                            vals[other] = 1
                            vals[-other] = -1
                            var = other if other > 0 else -other
                            level[var] = dl
                            reason[var] = bci
                            trail_append(other)
                            trail_len += 1
                    if confl >= 0:
                        break
                watchlist = watches[neg]
                i = 0
                j = 0
                n = len(watchlist)
                if not n:
                    continue
                while i < n:
                    ci = watchlist[i]
                    i += 1
                    if c_dead[ci]:
                        continue  # tombstoned by reduce-DB: drop the watcher
                    off = c_off[ci]
                    first = arena[off]
                    if first == neg:
                        first = arena[off + 1]
                        arena[off] = first
                        arena[off + 1] = neg
                    if vals[first] > 0:
                        watchlist[j] = ci
                        j += 1
                        continue
                    end = off + c_size[ci]
                    found = False
                    for k in range(off + 2, end):
                        lk = arena[k]
                        if vals[lk] >= 0:
                            arena[off + 1] = lk
                            arena[k] = neg
                            watches[lk].append(ci)
                            if log is not None:
                                log.append(lk)
                            found = True
                            break
                    if found:
                        continue
                    watchlist[j] = ci
                    j += 1
                    if vals[first] < 0:
                        # conflict: keep the unvisited tail of the list
                        while i < n:
                            watchlist[j] = watchlist[i]
                            j += 1
                            i += 1
                        confl = ci
                        break
                    vals[first] = 1
                    vals[-first] = -1
                    var = first if first > 0 else -first
                    level[var] = dl
                    reason[var] = ci
                    trail_append(first)
                    trail_len += 1
                if j != n:
                    del watchlist[j:]
                if confl >= 0:
                    break
            if detailed:
                perf.propagate_seconds += monotonic() - t0
            # -------------------------------------------------------------
            if confl >= 0:
                self.conflicts += 1
                conflicts_in_restart += 1
                self._conflicts_since_reduce += 1
                trail_ema += (trail_len - trail_ema) * 0.05
                self.qhead = qhead
                self.propagations += props
                props = 0
                if not trail_lim:
                    self.ok = False
                    return self._finish(
                        SolveResult(
                            SolveStatus.UNSAT,
                            conflicts=self.conflicts,
                            decisions=self.decisions,
                            propagations=self.propagations,
                            elapsed_seconds=monotonic() - start,
                        ),
                        start, timed=True,
                    )
                if detailed:
                    t0 = monotonic()
                    learnt, backtrack_level = self._analyze(confl)
                    perf.analyze_seconds += monotonic() - t0
                else:
                    learnt, backtrack_level = self._analyze(confl)
                if (
                    self.chrono_threshold > 0
                    and len(learnt) > 1
                    and len(trail_lim) - backtrack_level > self.chrono_threshold
                ):
                    # Chronological backtracking: the analysis asks for a
                    # very long backjump; undo a single level instead and
                    # assert the UIP literal there. The learnt clause's
                    # other literals are all false at or below the
                    # requested level, so it is still asserting here, and
                    # the deep labelling prefix survives the conflict.
                    backtrack_level = len(trail_lim) - 1
                    self.chrono_backtracks += 1
                self._cancel_until(backtrack_level)
                self._attach_learnt(learnt)
                qhead = self.qhead
                trail_len = len(trail)
                if not self.ok:
                    return self._finish(
                        SolveResult(
                            SolveStatus.UNSAT,
                            conflicts=self.conflicts,
                            elapsed_seconds=monotonic() - start,
                        ),
                        start, timed=True,
                    )
                self.var_inc *= self.var_decay
                self.cla_inc *= self.cla_decay
                if self._conflicts_since_reduce >= self._reduce_interval:
                    self._conflicts_since_reduce = 0
                    self._reduce_interval += REDUCE_INCREMENT_CONFLICTS
                    if detailed:
                        t0 = monotonic()
                        self._reduce_db()
                        perf.reduce_seconds += monotonic() - t0
                    else:
                        self._reduce_db()
                # activity bumps may have rescaled and rebuilt the heap
                heap = self._order_heap
                member = self._heap_member
                continue
            # no conflict; a conflict-free visit to the root records the
            # propagation watermark (everything current is now propagated
            # against the whole root trail)
            if not trail_lim:
                self._propagated_clauses = len(c_off)
                self._propagated_trail = trail_len
            if timeout_seconds is not None and self.conflicts % 64 == 0:
                if monotonic() - start > timeout_seconds:
                    self.qhead = qhead
                    self.propagations += props
                    return self._finish(
                        SolveResult(
                            SolveStatus.UNKNOWN,
                            conflicts=self.conflicts,
                            decisions=self.decisions,
                            propagations=self.propagations,
                            elapsed_seconds=monotonic() - start,
                        ),
                        start, timed=True,
                    )
            if max_conflicts is not None and self.conflicts >= max_conflicts:
                self.qhead = qhead
                self.propagations += props
                return self._finish(
                    SolveResult(
                        SolveStatus.UNKNOWN,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                        elapsed_seconds=monotonic() - start,
                    ),
                    start, timed=True,
                )
            if conflicts_in_restart >= conflicts_until_restart:
                if trail_len > 1.4 * trail_ema:
                    # Glucose-style restart blocking: the trail is much
                    # deeper than the recent conflict average, i.e. the
                    # search is closing in on a model -- a restart would
                    # throw that labelling work away. Postpone instead.
                    conflicts_in_restart = 0
                else:
                    restart_count += 1
                    conflicts_in_restart = 0
                    conflicts_until_restart = 100 * _luby(restart_count)
                    if perf is not None:
                        perf.restarts += 1
                    self.qhead = qhead
                    self._cancel_until(0)
                    qhead = self.qhead
                    trail_len = len(trail)
                    continue
            # Place the next assumption (restarts and backjumps may have
            # removed earlier ones; they are simply re-placed here).
            if len(trail_lim) < num_assumptions:
                next_assumption = None
                assumption_failed = None
                while (
                    len(trail_lim) < num_assumptions
                    and next_assumption is None
                ):
                    candidate = assumption_list[len(trail_lim)]
                    value = vals[candidate]
                    if value > 0:
                        trail_lim.append(trail_len)  # dummy level
                    elif value < 0:
                        assumption_failed = candidate
                        break
                    else:
                        next_assumption = candidate
                if assumption_failed is not None:
                    self.qhead = qhead
                    self.propagations += props
                    core = self._analyze_final(assumption_failed)
                    self._cancel_until(0)
                    return self._finish(
                        SolveResult(
                            SolveStatus.UNSAT,
                            conflicts=self.conflicts,
                            decisions=self.decisions,
                            propagations=self.propagations,
                            elapsed_seconds=monotonic() - start,
                            core=core,
                        ),
                        start, timed=True,
                    )
                if next_assumption is not None:
                    self.decisions += 1
                    trail_lim.append(trail_len)
                    vals[next_assumption] = 1
                    vals[-next_assumption] = -1
                    var = (next_assumption if next_assumption > 0
                           else -next_assumption)
                    level[var] = len(trail_lim)
                    reason[var] = -1
                    trail_append(next_assumption)
                    trail_len += 1
                    continue
            # ---------------- branching (inlined VSIDS pick) -------------
            var = 0
            while heap:
                neg_activity, cand = heappop(heap)
                member[cand] = 0
                if vals[cand] != 0:
                    continue  # stale entry of an assigned variable
                if -neg_activity < activity[cand]:
                    # stale priority (bumped since push): requeue correctly
                    member[cand] = 1
                    heappush(heap, (-activity[cand], cand))
                    continue
                var = cand
                break
            if not var:
                # Safety net -- the lazy heap should never run dry while
                # unassigned variables remain, but a linear scan keeps the
                # solver complete.
                for cand in range(1, self.num_vars + 1):
                    if vals[cand] == 0:
                        var = cand
                        break
            if not var:
                self.qhead = qhead
                self.propagations += props
                n = self.num_vars
                model = _SnapshotModel(vals[:n + 1], n)
                return self._finish(
                    SolveResult(
                        SolveStatus.SAT,
                        model=model,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                        elapsed_seconds=monotonic() - start,
                    ),
                    start, timed=True,
                )
            self.decisions += 1
            trail_lim.append(trail_len)
            lit = var if phase[var] else -var
            vals[lit] = 1
            vals[-lit] = -1
            level[var] = len(trail_lim)
            reason[var] = -1
            trail_append(lit)
            trail_len += 1

    def _finish(self, result: SolveResult, start: float,
                timed: bool = False) -> SolveResult:
        """Fold the call's counters into the shared perf object."""
        self._conflicts_since_vivify += result.conflicts
        perf = self.perf
        if perf is not None:
            perf.solve_calls += 1
            perf.conflicts += result.conflicts
            perf.decisions += result.decisions
            perf.propagations += result.propagations
            perf.solve_seconds += (
                result.elapsed_seconds if timed else time.monotonic() - start
            )
        return result


def solve_brute_force(cnf: CNF, max_vars: int = 22) -> SolveResult:
    """Exhaustive model search for tiny formulas (test oracle only)."""
    if cnf.contradiction:
        return SolveResult(SolveStatus.UNSAT)
    n = cnf.num_vars
    if n > max_vars:
        raise ValueError(f"brute force limited to {max_vars} variables, got {n}")
    for bits in itertools.product([False, True], repeat=n):
        assignment = {v: bits[v - 1] for v in range(1, n + 1)}
        ok = True
        for clause in cnf.clauses:
            if not any(
                assignment[abs(l)] if l > 0 else not assignment[abs(l)]
                for l in clause
            ):
                ok = False
                break
        if ok:
            return SolveResult(SolveStatus.SAT, model=assignment)
    return SolveResult(SolveStatus.UNSAT)
