"""Finite-domain integer layer on top of the SAT solver ("mini SMT").

The paper expresses the time phase as an SMT formula over integer start
times. This module provides the fragment actually needed:

* bounded integer variables (:class:`IntVar`),
* difference constraints ``y >= x + delta`` (the modulo-scheduling
  precedence constraints of Sec. IV-B1),
* arbitrary clauses over *indicator literals* such as ``[x == v]`` or
  ``[x mod m == r]`` (used for the capacity and connectivity cardinality
  constraints of Sec. IV-B2/3),
* model enumeration through blocking clauses (the mapper asks for the next
  schedule when the space phase rejects one).

Each integer variable gets the classic *regular encoding*: one direct
(one-hot) literal per value plus order literals ``[x <= v]``, with channeling
clauses between them. Difference constraints are encoded over order literals
(linear in the domain size), cardinalities over direct literals.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.perf import PerfCounters
from repro.smt.cardinality import at_least_k, at_most_k, exactly_k, exactly_one
from repro.smt.cnf import CNF, FALSE_LIT, TRUE_LIT, VariablePool, negate
from repro.smt.model import FDSolution
from repro.smt.sat import SATSolver, SolveResult, SolveStatus


@dataclass(frozen=True)
class IntVar:
    """A bounded integer decision variable ``lo <= x <= hi``."""

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty domain for {self.name}: [{self.lo}, {self.hi}]")

    @property
    def domain(self) -> range:
        return range(self.lo, self.hi + 1)

    @property
    def domain_size(self) -> int:
        return self.hi - self.lo + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{self.lo}..{self.hi}]"


def resolve_solver_backend(backend) -> type:
    """Map a backend name to a solver class.

    ``"arena"`` (the default) is the flat-arena kernel in
    :mod:`repro.smt.sat`; ``"native"`` selects the fastest available
    compiled tier of that kernel (C via cffi, numpy, or the arena solver
    itself -- see :mod:`repro.smt.native`), with ``"native-c"`` and
    ``"numpy"`` forcing a specific tier; ``"reference"`` is the
    pre-rewrite kernel kept in :mod:`repro.smt.sat_reference` as the
    differential-testing oracle. A class is passed through unchanged.
    """
    if backend is None:
        return SATSolver
    if isinstance(backend, type):
        return backend
    name = str(backend).lower()
    if name in ("arena", "default", "flat"):
        return SATSolver
    if name == "native":
        from repro.smt.native import native_solver_class

        return native_solver_class()
    if name in ("native-c", "numpy"):
        from repro.smt.native import tier_solver_class

        return tier_solver_class(name)
    if name == "reference":
        from repro.smt.sat_reference import ReferenceSATSolver

        return ReferenceSATSolver
    raise ValueError(
        f"unknown solver backend {backend!r}; expected 'arena', 'native', "
        "'native-c', 'numpy' or 'reference'"
    )


class FiniteDomainProblem:
    """A conjunction of constraints over integer and Boolean variables."""

    def __init__(self, solver_cls: Optional[type] = None,
                 perf: Optional[PerfCounters] = None,
                 legacy_sync: bool = False) -> None:
        self.cnf = CNF(VariablePool())
        self._solver_cls = resolve_solver_backend(solver_cls)
        self.perf = perf
        #: re-run the full phase/activity seeding sweep on *every* solver
        #: sync, as the stack did before the flat-arena rewrite. Only
        #: ``benchmarks/bench_solver.py`` sets this, on its reference leg,
        #: so the recorded speedup measures the whole rewrite (kernel plus
        #: integration) against the faithful pre-rewrite behaviour.
        self.legacy_sync = legacy_sync
        self._vars: Dict[str, IntVar] = {}
        self._direct: Dict[Tuple[str, int], int] = {}
        self._order: Dict[Tuple[str, int], int] = {}
        # dense per-variable literal tables; the hot accessors
        # (value_literal / le_literal) index these instead of hashing a
        # (name, value) tuple per call
        self._direct_list: Dict[str, List[int]] = {}
        self._order_list: Dict[str, List[int]] = {}
        self._mod_indicator: Dict[Tuple[str, int, int], int] = {}
        self._solver: Optional[SATSolver] = None
        self._solver_clause_count = 0
        self._preferred_true: List[int] = []
        self._initial_activity: List[Tuple[int, float]] = []
        # sync watermarks: how much of _preferred_true / _initial_activity
        # the solver has already seen. Phases are sticky and boost_activity
        # is raise-to-at-least (idempotent), so only the tails need syncing.
        self._pref_synced = 0
        self._activity_synced = 0
        # _initial_activity entries normally arrive in ascending literal
        # order (prioritize() at variable creation), which lets pop()
        # retract a scope's entries by tail truncation; an out-of-order
        # prioritize() clears this flag and pop() falls back to filtering
        self._activity_ordered = True
        self._phases_dirty = False
        self._push_stack: List[
            Tuple[int, bool, Tuple[int, int, int, int, int], int]
        ] = []

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #
    def new_int(self, name: str, lo: int, hi: int) -> IntVar:
        """Create an integer variable with inclusive bounds."""
        if name in self._vars:
            raise ValueError(f"variable {name!r} already exists")
        var = IntVar(name, lo, hi)
        self._vars[name] = var
        direct_list = []
        for value in var.domain:
            direct = self.cnf.new_var(("d", name, value))
            self._direct[(name, value)] = direct
            direct_list.append(direct)
            # Branching on a direct literal with positive phase makes the CDCL
            # search behave like CSP value labelling (pick a start time) rather
            # than value elimination, which is dramatically faster on the
            # tightly packed scheduling instances.
            self._preferred_true.append(direct)
        order_list = []
        for value in range(lo, hi):  # order literal for hi is constant TRUE
            order = self.cnf.new_var(("o", name, value))
            self._order[(name, value)] = order
            order_list.append(order)
        self._direct_list[name] = direct_list
        self._order_list[name] = order_list
        self._encode_domain(var)
        return var

    def new_bool(self, key: Optional[Hashable] = None) -> int:
        """Create a fresh Boolean variable; returns its positive literal."""
        return self.cnf.new_var(key)

    def new_selector(self, key: Optional[Hashable] = None) -> int:
        """A fresh Boolean used to activate a scoped constraint group.

        Clauses added inside ``with problem.guard(selector):`` only apply
        when the selector is passed as an assumption to :meth:`solve`.
        """
        return self.cnf.pool.var(key) if key is not None else self.cnf.new_var()

    @contextmanager
    def guard(self, selector: int):
        """Guard every clause added inside the context with ``selector``."""
        with self.cnf.guard(selector):
            yield

    def prioritize(self, var: IntVar, weight: float) -> None:
        """Bias the SAT branching order towards ``var``.

        Variables with larger weights are decided earlier; within one
        variable, smaller values are preferred. Used by the time solver to
        label low-mobility (most critical) nodes first, which mimics the
        value-ordering of classic modulo-scheduling heuristics and speeds up
        tightly packed instances considerably. Weights only seed the VSIDS
        activities, so conflict-driven learning still takes over afterwards.
        """
        span = max(1, var.domain_size)
        items = self._initial_activity
        if items and items[-1][0] > self._direct[(var.name, var.lo)]:
            self._activity_ordered = False  # re-prioritizing an older var
        for rank, value in enumerate(var.domain):
            literal = self._direct[(var.name, value)]
            items.append(
                (literal, weight + 0.5 * (span - rank) / span)
            )

    def variables(self) -> List[IntVar]:
        return list(self._vars.values())

    def _encode_domain(self, var: IntVar) -> None:
        # Domain encodings are universally true (they define the variable),
        # so they must never be weakened by an active constraint-group guard.
        with self.cnf.unguarded():
            self._encode_domain_clauses(var)

    def _encode_domain_clauses(self, var: IntVar) -> None:
        name = var.name
        add_clean = self.cnf.add_clause_clean
        order_list = self._order_list[name]
        # order consistency: [x <= v] -> [x <= v+1]
        for index in range(len(order_list) - 1):
            add_clean([-order_list[index], order_list[index + 1]])
        # channeling direct <-> order; the boundary literals are constant
        # (le(hi) is TRUE, le(lo-1) is FALSE), so those clauses simplify
        direct_list = self._direct_list[name]
        for rank, direct in enumerate(direct_list):
            le_v = order_list[rank] if rank < len(order_list) else TRUE_LIT
            le_prev = order_list[rank - 1] if rank > 0 else FALSE_LIT
            # direct -> (x <= v) and direct -> not (x <= v-1)
            if le_v is not TRUE_LIT:
                add_clean([-direct, le_v])
            if le_prev is not FALSE_LIT:
                add_clean([-direct, -le_prev])
            # (x <= v) and not (x <= v-1) -> direct
            if le_v is TRUE_LIT:
                if le_prev is FALSE_LIT:
                    self.cnf.add_clause([direct])
                else:
                    add_clean([le_prev, direct])
            elif le_prev is FALSE_LIT:
                add_clean([-le_v, direct])
            else:
                add_clean([-le_v, le_prev, direct])
        exactly_one(self.cnf, direct_list)

    # ------------------------------------------------------------------ #
    # Literal accessors
    # ------------------------------------------------------------------ #
    def value_literal(self, var: IntVar, value: int):
        """The literal ``[var == value]`` (FALSE if outside the domain)."""
        if value < var.lo or value > var.hi:
            return FALSE_LIT
        return self._direct_list[var.name][value - var.lo]

    def le_literal(self, var: IntVar, value: int):
        """The literal ``[var <= value]`` (constant outside the domain)."""
        if value < var.lo:
            return FALSE_LIT
        if value >= var.hi:
            return TRUE_LIT
        return self._order_list[var.name][value - var.lo]

    def ge_literal(self, var: IntVar, value: int):
        """The literal ``[var >= value]``."""
        return negate(self.le_literal(var, value - 1))

    def mod_indicator(self, var: IntVar, modulus: int, residue: int):
        """A literal implied by ``var mod modulus == residue``.

        The indicator is one-directional (``[var == t] -> indicator`` for
        every ``t`` in the residue class), which is sufficient -- and sound --
        for use in *upper-bound* cardinality constraints: the solver is free
        to set a spurious indicator false, and forced to set real ones true.
        """
        if modulus < 1:
            raise ValueError("modulus must be positive")
        residue %= modulus
        values = [t for t in var.domain if t % modulus == residue]
        if not values:
            return FALSE_LIT
        key = (var.name, modulus, residue)
        existing = self._mod_indicator.get(key)
        if existing is not None:
            return existing
        # ``pool.var`` (get-or-create) so a pop()-truncated indicator can be
        # re-created under the same SAT variable; the implications are
        # universally true, so they bypass any active guard.
        indicator = self.cnf.pool.var(("mod", var.name, modulus, residue))
        with self.cnf.unguarded():
            for t in values:
                self.cnf.add_clause([negate(self.value_literal(var, t)), indicator])
        self._mod_indicator[key] = indicator
        return indicator

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    def add_clause(self, literals: Iterable) -> None:
        self.cnf.add_clause(literals)

    def add_ge(self, y: IntVar, x: IntVar, delta: int = 0) -> None:
        """Enforce ``y >= x + delta`` (a difference constraint).

        Encoded over order literals: for every value ``t`` of ``y``,
        ``[y <= t] -> [x <= t - delta]``.
        """
        add_clean = self.cnf.add_clause_clean
        for t in range(y.lo, y.hi + 1):
            lhs = self.le_literal(y, t)
            rhs = self.le_literal(x, t - delta)
            if rhs is TRUE_LIT:
                continue
            if type(lhs) is int and type(rhs) is int and lhs != rhs:
                add_clean([-lhs, rhs])
            else:
                self.cnf.add_clause([negate(lhs), rhs])

    def add_le(self, x: IntVar, y: IntVar, delta: int = 0) -> None:
        """Enforce ``x + delta <= y``."""
        self.add_ge(y, x, delta)

    def add_ne_const(self, x: IntVar, value: int) -> None:
        """Enforce ``x != value``."""
        lit = self.value_literal(x, value)
        if lit != FALSE_LIT:
            self.cnf.add_clause([negate(lit)])

    def add_eq_const(self, x: IntVar, value: int) -> None:
        """Enforce ``x == value``."""
        lit = self.value_literal(x, value)
        self.cnf.add_clause([lit])

    def restrict_domain(self, x: IntVar, allowed: Iterable[int]) -> None:
        """Forbid every value of ``x`` outside ``allowed``.

        Used for structural domain restrictions known up front -- e.g. a
        placement variable on a heterogeneous CGRA may only take PEs that
        implement the node's opcode. An empty intersection with the domain
        makes the problem unsatisfiable (one unit clause per value).
        """
        keep = set(allowed)
        for value in x.domain:
            if value not in keep:
                self.add_ne_const(x, value)

    def at_most(self, literals: Sequence, bound: int) -> None:
        at_most_k(self.cnf, list(literals), bound)

    def at_least(self, literals: Sequence, bound: int) -> None:
        at_least_k(self.cnf, list(literals), bound)

    def exactly(self, literals: Sequence, bound: int) -> None:
        exactly_k(self.cnf, list(literals), bound)

    def forbid_assignment(self, assignment: Dict[IntVar, int]) -> None:
        """Add a blocking clause excluding one specific assignment."""
        clause = []
        for var, value in assignment.items():
            clause.append(negate(self.value_literal(var, value)))
        self.cnf.add_clause(clause)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    @property
    def num_sat_variables(self) -> int:
        return self.cnf.num_vars

    @property
    def num_sat_clauses(self) -> int:
        return self.cnf.num_clauses

    def _sync_solver(self) -> SATSolver:
        """Create or incrementally update the underlying SAT solver."""
        if self._solver is None:
            self._solver = self._solver_cls(perf=self.perf)
            self._solver_clause_count = 0
            self._pref_synced = 0
            self._activity_synced = 0
        self._solver.ensure_vars(self.cnf.num_vars)
        # Direct literals branch positive so the search labels values (see
        # new_int). The initial phase is re-asserted on purpose: saved
        # phases from a previous solve would otherwise steer enumeration,
        # and the value-labelling bias is the faster regime on scheduling
        # instances. The full sweep only runs when a solve (or pop) has
        # actually flipped phases since the last sync; otherwise just the
        # literals created since then are initialised.
        phase = self._solver.phase
        if self.legacy_sync:
            for literal in self._preferred_true:
                phase[literal] = True
            boost = self._solver.boost_activity
            for literal, activity in self._initial_activity:
                boost(literal, activity)
            self._phases_dirty = False
        else:
            if self._phases_dirty:
                for literal in self._preferred_true:
                    phase[literal] = True
                self._phases_dirty = False
            else:
                for literal in self._preferred_true[self._pref_synced:]:
                    phase[literal] = True
            self._pref_synced = len(self._preferred_true)
            activity_items = self._initial_activity
            if self._activity_synced < len(activity_items):
                boost = self._solver.boost_activity
                for literal, activity in activity_items[self._activity_synced:]:
                    boost(literal, activity)
                self._activity_synced = len(activity_items)
        backlog = self.cnf.clauses[self._solver_clause_count:]
        if backlog:
            # CNF clauses are already deduplicated, tautology-free and
            # variable-allocated: take the solver's bulk path.
            self._solver.add_clauses(backlog)
        self._solver_clause_count = len(self.cnf.clauses)
        if self.cnf.contradiction:
            self._solver.ok = False
        return self._solver

    # ------------------------------------------------------------------ #
    # Scoped constraint groups
    # ------------------------------------------------------------------ #
    def push(self) -> None:
        """Open a retractable scope (clauses, indicators, variables)."""
        self._sync_solver().push()
        self._push_stack.append((
            len(self.cnf.clauses),
            self.cnf.contradiction,
            (
                len(self._vars),
                len(self._direct),
                len(self._order),
                len(self._mod_indicator),
                len(self._preferred_true),
            ),
            self.cnf.num_vars,
        ))

    def pop(self) -> None:
        """Retract everything added since the matching :meth:`push`."""
        if not self._push_stack:
            raise RuntimeError("pop() without matching push()")
        num_clauses, contradiction, sizes, num_vars = self._push_stack.pop()
        if self._solver is not None:
            self._solver.pop()
            self._phases_dirty = True  # the trail unwind saved phases
        del self.cnf.clauses[num_clauses:]
        self.cnf.contradiction = contradiction
        self._solver_clause_count = num_clauses
        # keys are only ever appended, so a scope's entries are the dict
        # tail: popitem() retracts them in O(scope) instead of listing
        # every key
        while len(self._vars) > sizes[0]:
            name, _ = self._vars.popitem()
            del self._direct_list[name]
            del self._order_list[name]
        for mapping, size in zip(
            (self._direct, self._order, self._mod_indicator), sizes[1:]
        ):
            while len(mapping) > size:
                mapping.popitem()
        del self._preferred_true[sizes[4]:]
        self._pref_synced = min(self._pref_synced, len(self._preferred_true))
        activity = self._initial_activity
        if self._activity_ordered:
            while activity and activity[-1][0] > num_vars:
                activity.pop()
        else:
            # an out-of-order prioritize() broke the ascending-literal
            # invariant: filter instead of truncating (rare, cold path)
            activity[:] = [
                entry for entry in activity if entry[0] <= num_vars
            ]
            self._activity_ordered = True
            self._activity_synced = 0  # conservatively re-sync everything
        self._activity_synced = min(self._activity_synced, len(activity))
        self.cnf.pool.rollback(num_vars)

    @staticmethod
    def _resolve_assumptions(
        assumptions: Optional[Iterable],
    ) -> Tuple[List[int], bool]:
        """Normalise assumption literals; second item flags a constant FALSE."""
        resolved: List[int] = []
        for lit in assumptions or ():
            if lit == TRUE_LIT:
                continue
            if lit == FALSE_LIT:
                return [], True
            resolved.append(lit)
        return resolved, False

    def solve(
        self,
        timeout_seconds: Optional[float] = None,
        assumptions: Optional[Iterable] = None,
    ) -> Optional[FDSolution]:
        """Find one solution, or ``None`` (UNSAT), or raise on timeout."""
        result = self.solve_detailed(timeout_seconds, assumptions=assumptions)
        if result.status is SolveStatus.UNKNOWN:
            raise TimeoutError("finite-domain solve timed out")
        if result.status is SolveStatus.UNSAT:
            return None
        return self._extract(result)

    def solve_detailed(
        self,
        timeout_seconds: Optional[float] = None,
        assumptions: Optional[Iterable] = None,
    ) -> SolveResult:
        literals, impossible = self._resolve_assumptions(assumptions)
        if impossible:
            return SolveResult(SolveStatus.UNSAT)
        solver = self._sync_solver()
        result = solver.solve(
            timeout_seconds=timeout_seconds, assumptions=literals
        )
        # the search saves phases as it goes; the next sync must restore
        # the value-labelling bias over the whole direct-literal set
        self._phases_dirty = True
        return result

    def _extract(self, result: SolveResult) -> FDSolution:
        values: Dict[str, int] = {}
        model = result.model if result.model is not None else {}
        # the arena kernel hands back a snapshot-backed model whose value
        # vector can be indexed directly (C speed); fall back to mapping
        # lookups for plain dict models (reference kernel, brute force)
        snapshot = getattr(model, "vals", None)
        get = model.get
        for var in self._vars.values():
            lits = self._direct_list[var.name]
            if snapshot is not None:
                assigned = [
                    v for v, lit in zip(var.domain, lits) if snapshot[lit] > 0
                ]
            else:
                assigned = [
                    v for v, lit in zip(var.domain, lits) if get(lit, False)
                ]
            if len(assigned) != 1:
                raise RuntimeError(
                    f"inconsistent model for {var.name}: values {assigned}"
                )
            values[var.name] = assigned[0]
        return FDSolution(values=values,
                          solve_seconds=result.elapsed_seconds,
                          conflicts=result.conflicts)

    def enumerate_solutions(
        self,
        block_on: Optional[Sequence[IntVar]] = None,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        assumptions: Optional[Iterable] = None,
        block_guard: Optional[int] = None,
    ):
        """Yield distinct solutions, blocking each one on ``block_on`` vars.

        ``block_on`` defaults to all integer variables. Enumeration stops on
        UNSAT, on the ``limit``, or on a timeout (which raises
        ``TimeoutError`` only if no solution was produced in that call).
        With ``assumptions`` each solve happens under the given literals;
        ``block_guard`` guards the blocking clauses with a selector so they
        are retracted when that selector is no longer assumed.
        """
        block_vars = list(block_on) if block_on is not None else self.variables()
        produced = 0
        deadline = (
            time.monotonic() + timeout_seconds if timeout_seconds is not None else None
        )
        while limit is None or produced < limit:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
            result = self.solve_detailed(
                timeout_seconds=remaining, assumptions=assumptions
            )
            if result.status is SolveStatus.UNKNOWN:
                if produced == 0:
                    raise TimeoutError("finite-domain enumeration timed out")
                return
            if result.status is SolveStatus.UNSAT:
                return
            solution = self._extract(result)
            produced += 1
            yield solution
            blocked = {v: solution.value(v) for v in block_vars}
            if block_guard is not None:
                with self.guard(block_guard):
                    self.forbid_assignment(blocked)
            else:
                self.forbid_assignment(blocked)
