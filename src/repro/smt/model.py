"""Solution objects returned by the finite-domain layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.smt.csp import IntVar


@dataclass
class FDSolution:
    """An assignment of integer values to :class:`~repro.smt.csp.IntVar`s."""

    values: Dict[str, int] = field(default_factory=dict)
    solve_seconds: float = 0.0
    conflicts: int = 0

    def value(self, var: "IntVar") -> int:
        """Value assigned to ``var``."""
        return self.values[var.name]

    def __getitem__(self, var: "IntVar") -> int:
        return self.value(var)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FDSolution({self.values})"
