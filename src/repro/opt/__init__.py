"""repro.opt -- the pre-mapping DFG optimization middle-end.

A registry of semantics-preserving DFG-to-DFG passes (constant folding,
algebraic simplification, strength reduction, common-subexpression
elimination, dead-node elimination, associativity rebalancing) driven by a
:class:`~repro.opt.pipeline.PassManager` with ``O0``/``O1``/``O2`` levels.
Every node the passes remove is a node the SAT time phase and the
monomorphism space phase never have to encode; every recurrence they
shorten lowers RecII, and therefore the achievable II, directly.

Pipelines are verified by replaying the optimized graph through the
sequential reference interpreter against the original
(:mod:`repro.opt.verify`), the same oracle the differential mapping
harness uses.
"""

from repro.opt.passes import (
    AC_OPCODES,
    AlgebraicSimplificationPass,
    CommonSubexpressionEliminationPass,
    ConstantFoldingPass,
    DeadNodeEliminationPass,
    PASS_REGISTRY,
    Pass,
    PassContext,
    ReassociationPass,
    StrengthReductionPass,
    make_pass,
    pass_names,
)
from repro.opt.pipeline import (
    MAX_OPT_LEVEL,
    OPT_LEVEL_PIPELINES,
    OptResult,
    PassManager,
    PassStat,
    build_pipeline,
    opt_level_label,
    optimize_dfg,
    parse_opt_level,
)
from repro.opt.rewrite import (
    GraphEdit,
    NodeMap,
    compose_maps,
    identity_map,
    observable_ids,
    rebuild,
)
from repro.opt.verify import (
    OptVerificationError,
    VerificationReport,
    is_executable,
    verify_equivalence,
)

__all__ = [
    "AC_OPCODES",
    "AlgebraicSimplificationPass",
    "CommonSubexpressionEliminationPass",
    "ConstantFoldingPass",
    "DeadNodeEliminationPass",
    "GraphEdit",
    "MAX_OPT_LEVEL",
    "NodeMap",
    "OPT_LEVEL_PIPELINES",
    "OptResult",
    "OptVerificationError",
    "PASS_REGISTRY",
    "Pass",
    "PassContext",
    "PassManager",
    "PassStat",
    "ReassociationPass",
    "StrengthReductionPass",
    "VerificationReport",
    "build_pipeline",
    "compose_maps",
    "identity_map",
    "is_executable",
    "make_pass",
    "observable_ids",
    "opt_level_label",
    "optimize_dfg",
    "parse_opt_level",
    "pass_names",
    "rebuild",
    "verify_equivalence",
]
