"""Semantics-preserving DFG-to-DFG optimization passes.

Every pass consumes a :class:`~repro.graphs.dfg.DFG` and produces a new one
plus a node map (see :mod:`repro.opt.rewrite`). The shared legality rules --
what keeps a rewrite *observably* equivalent under the reference semantics
of :mod:`repro.sim.reference` -- are:

* a node may only be **erased or forwarded** if it is not the source of a
  loop-carried edge (its ``value`` field doubles as the operand read by
  consumers in the first iterations, which a replacement would change);
* a node may only be **rewritten to a different value-equivalent form**
  (constant folding, identity replacement) under the same restriction,
  because those rewrites overwrite the ``value`` field;
* a rewrite that changes what a node *computes* (reassociation interiors)
  must allocate a fresh node id, so the differential verifier never
  compares it against the original;
* patterns only match through intra-iteration ``DATA`` edges -- a
  loop-carried operand carries a different iteration's value and disables
  the local rewrite.

Passes are registered in :data:`PASS_REGISTRY` by short name; the
``O0``/``O1``/``O2`` pipelines of :mod:`repro.opt.pipeline` are built from
that registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

import networkx as nx

from repro.arch.cgra import CGRA
from repro.arch.isa import (
    OPCODE_INFO,
    Opcode,
    evaluate as evaluate_alu,
)
from repro.graphs.dfg import DFG, DFGEdge, DFGNode, DependenceKind
from repro.opt.rewrite import (
    GraphEdit,
    NodeMap,
    ancestors_of,
    observable_ids,
    rebuild,
)

#: associative *and* commutative opcodes (exact over python integers).
AC_OPCODES = frozenset({
    Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.MIN, Opcode.MAX,
})

#: commutative opcodes (operand order is irrelevant to the value).
COMMUTATIVE_OPCODES = AC_OPCODES | frozenset({Opcode.EQ, Opcode.NE})


@dataclass
class PassContext:
    """Shared state threaded through one pipeline run.

    ``target`` gates architecture-dependent rewrites (strength reduction
    only fires when the replacement opcode is at least as available on the
    fabric as the original). ``observables`` are the current-graph ids of
    the *original* graph's observable nodes (sinks, stores, outputs) --
    dead-node elimination keeps exactly their ancestors, so pass-created
    garbage dies while originally-observable values always survive.
    """

    target: Optional[CGRA] = None
    observables: Set[int] = field(default_factory=set)

    @classmethod
    def for_dfg(cls, dfg: DFG, target: Optional[CGRA] = None) -> "PassContext":
        return cls(target=target, observables=observable_ids(dfg))

    def remap(self, node_map: NodeMap) -> None:
        self.observables = {
            node_map[o] for o in self.observables
            if node_map.get(o) is not None
        }


#: what a pass returns when it changed something.
PassOutcome = Tuple[DFG, NodeMap, str]


class Pass:
    """Base class: stateless, deterministic DFG-to-DFG transform."""

    name: str = "pass"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        """Apply the pass; return ``None`` when nothing matched."""
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Shared pattern-matching helpers
# ---------------------------------------------------------------------- #
def _is_lc_source(dfg: DFG, node_id: int) -> bool:
    return any(e.is_loop_carried for e in dfg.out_edges(node_id))


def _has_lc_input(dfg: DFG, node_id: int) -> bool:
    return any(e.is_loop_carried for e in dfg.in_edges(node_id))


def _const_value(node: DFGNode) -> int:
    return int(node.value or 0)


def _exact_data_operands(dfg: DFG, node_id: int,
                         count: int) -> Optional[List[DFGEdge]]:
    """The node's operand edges iff they are exactly ``count`` DATA edges
    with operand indices ``0..count-1``; ``None`` otherwise."""
    edges = dfg.in_edges(node_id)
    if len(edges) != count:
        return None
    if any(e.is_loop_carried for e in edges):
        return None
    ordered = sorted(edges, key=lambda e: e.operand_index)
    if [e.operand_index for e in ordered] != list(range(count)):
        return None
    return ordered


def _topological_ids(dfg: DFG) -> List[int]:
    return list(nx.lexicographical_topological_sort(dfg.data_dag()))


# ---------------------------------------------------------------------- #
# Constant folding
# ---------------------------------------------------------------------- #
class ConstantFoldingPass(Pass):
    """Evaluate nodes whose operands are all literal constants.

    Cascades within one run (a fold feeding a fold) by tracking values of
    nodes already folded this sweep. ``OUTPUT`` markers are left alone;
    loop-carried sources are excluded (see module legality notes).
    """

    name = "constfold"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        edit = GraphEdit()
        folded: Dict[int, int] = {}
        for node_id in _topological_ids(dfg):
            node = dfg.node(node_id)
            info = OPCODE_INFO[node.opcode]
            if info.evaluate is None or node.opcode is Opcode.OUTPUT:
                continue
            if info.arity == 0 or _is_lc_source(dfg, node_id):
                continue
            operands = _exact_data_operands(dfg, node_id, info.arity)
            if operands is None:
                continue
            values: List[int] = []
            for e in operands:
                source = dfg.node(e.src)
                if e.src in folded:
                    values.append(folded[e.src])
                elif source.opcode is Opcode.CONST:
                    values.append(_const_value(source))
                else:
                    break
            if len(values) != info.arity:
                continue
            value = evaluate_alu(node.opcode, values)
            folded[node_id] = value
            edit.overrides[node_id] = DFGNode(
                id=node_id, opcode=Opcode.CONST, name=node.name, value=value
            )
            edit.drop_in_edges.add(node_id)
        if edit.is_empty():
            return None
        new_dfg, node_map = rebuild(dfg, edit)
        return new_dfg, node_map, f"folded {len(folded)} node(s)"


# ---------------------------------------------------------------------- #
# Algebraic simplification
# ---------------------------------------------------------------------- #
class AlgebraicSimplificationPass(Pass):
    """Identity / annihilator / involution rewrites, exact over integers.

    ``x+0``, ``x-0``, ``x*1``, ``x|0``, ``x^0`` forward to ``x``;
    ``x-x``, ``x^x``, ``x&0``, ``x*0`` become the constant 0; ``x&x``,
    ``x|x``, ``min(x,x)``, ``max(x,x)`` forward to ``x``;
    ``neg(neg(x))`` / ``not(not(x))`` forward to ``x``, ``abs(abs(x))``
    forwards to the inner ``abs``; a ``select`` with a literal condition
    forwards to the taken operand.

    Deliberately absent, because each diverges from this ISA's semantics
    on some input and the differential verifier would (rightly) reject it:

    * ``x*2 -> x<<1`` and ``x<<0`` / ``x>>0`` -> ``x`` -- the shifter
      masks to 32 bits while the value domain is unbounded python ints,
      so even a zero-bit shift is a truncation, not an identity (see
      :class:`StrengthReductionPass` for the exact alternative);
    * ``x/1 -> x`` and ``x%1 -> 0`` -- DIV/REM evaluate through float
      true division (``int(a / b)``), which loses precision beyond 2**53.
    """

    name = "algebraic"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        edit = GraphEdit()
        rewrites = 0
        for node_id in dfg.node_ids():
            node = dfg.node(node_id)
            action = self._match(dfg, node)
            if action is None:
                continue
            kind, payload = action
            if _is_lc_source(dfg, node_id):
                continue  # value field / initial-operand semantics at stake
            if kind == "forward":
                edit.forward[node_id] = payload
            else:  # constant replacement
                edit.overrides[node_id] = DFGNode(
                    id=node_id, opcode=Opcode.CONST, name=node.name,
                    value=payload,
                )
                edit.drop_in_edges.add(node_id)
            rewrites += 1
        if edit.is_empty():
            return None
        new_dfg, node_map = rebuild(dfg, edit)
        return new_dfg, node_map, f"simplified {rewrites} node(s)"

    # ------------------------------------------------------------------ #
    def _match(self, dfg: DFG, node: DFGNode):
        op = node.opcode
        if op in (Opcode.NEG, Opcode.NOT, Opcode.ABS):
            return self._match_unary(dfg, node)
        if op is Opcode.SELECT:
            operands = _exact_data_operands(dfg, node.id, 3)
            if operands is None:
                return None
            condition = dfg.node(operands[0].src)
            if condition.opcode is not Opcode.CONST:
                return None
            taken = operands[1] if _const_value(condition) else operands[2]
            return ("forward", taken.src)
        operands = _exact_data_operands(dfg, node.id, 2)
        if operands is None:
            return None
        a_id, b_id = operands[0].src, operands[1].src
        a, b = dfg.node(a_id), dfg.node(b_id)
        a_const = _const_value(a) if a.opcode is Opcode.CONST else None
        b_const = _const_value(b) if b.opcode is Opcode.CONST else None
        same = a_id == b_id
        if op is Opcode.ADD:
            if b_const == 0:
                return ("forward", a_id)
            if a_const == 0:
                return ("forward", b_id)
        elif op is Opcode.SUB:
            if same:
                return ("const", 0)
            if b_const == 0:
                return ("forward", a_id)
        elif op is Opcode.MUL:
            if a_const == 0 or b_const == 0:
                return ("const", 0)
            if b_const == 1:
                return ("forward", a_id)
            if a_const == 1:
                return ("forward", b_id)
        elif op is Opcode.AND:
            if a_const == 0 or b_const == 0:
                return ("const", 0)
            if same:
                return ("forward", a_id)
        elif op is Opcode.OR:
            if same or b_const == 0:
                return ("forward", a_id)
            if a_const == 0:
                return ("forward", b_id)
        elif op is Opcode.XOR:
            if same:
                return ("const", 0)
            if b_const == 0:
                return ("forward", a_id)
            if a_const == 0:
                return ("forward", b_id)
        elif op in (Opcode.MIN, Opcode.MAX):
            if same:
                return ("forward", a_id)
        return None

    @staticmethod
    def _match_unary(dfg: DFG, node: DFGNode):
        operands = _exact_data_operands(dfg, node.id, 1)
        if operands is None:
            return None
        inner = dfg.node(operands[0].src)
        if inner.opcode is not node.opcode:
            return None
        if node.opcode is Opcode.ABS:
            # abs is idempotent: the outer application is redundant
            return ("forward", inner.id)
        # neg/not are involutions: two applications cancel
        inner_operands = _exact_data_operands(dfg, inner.id, 1)
        if inner_operands is None:
            return None
        return ("forward", inner_operands[0].src)


# ---------------------------------------------------------------------- #
# Strength reduction
# ---------------------------------------------------------------------- #
class StrengthReductionPass(Pass):
    """Replace expensive opcodes with cheaper exact equivalents.

    ``x * 2`` becomes ``x + x`` (exact over integers, unlike ``x << 1``
    whose 32-bit masked shifter diverges for negative or wide values).
    The rewrite is gated on the target fabric: it only fires when ``ADD``
    is supported on at least as many PEs as ``MUL``, so it never trades a
    mappable multiply for an unmappable add, and on mul-sparse fabrics it
    actively relieves pressure on the few multiplier-capable PEs.
    """

    name = "strength"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        if not self._profitable(ctx.target):
            return None
        edit = GraphEdit()
        rewrites = 0
        for node_id in dfg.node_ids():
            node = dfg.node(node_id)
            if node.opcode is not Opcode.MUL:
                continue
            operands = _exact_data_operands(dfg, node_id, 2)
            if operands is None:
                continue
            a, b = dfg.node(operands[0].src), dfg.node(operands[1].src)
            if b.opcode is Opcode.CONST and _const_value(b) == 2:
                doubled = operands[0].src
            elif a.opcode is Opcode.CONST and _const_value(a) == 2:
                doubled = operands[1].src
            else:
                continue
            # same id, same value field: per-iteration and initial-operand
            # semantics are both preserved, so LC endpoints are fine
            edit.overrides[node_id] = DFGNode(
                id=node_id, opcode=Opcode.ADD, name=node.name, value=node.value
            )
            edit.drop_in_edges.add(node_id)
            edit.extra_edges.append(DFGEdge(doubled, node_id, operand_index=0))
            edit.extra_edges.append(DFGEdge(doubled, node_id, operand_index=1))
            rewrites += 1
        if edit.is_empty():
            return None
        new_dfg, node_map = rebuild(dfg, edit)
        return new_dfg, node_map, f"reduced {rewrites} multiply(ies)"

    @staticmethod
    def _profitable(target: Optional[CGRA]) -> bool:
        if target is None:
            return True
        return len(target.supporting_pes(Opcode.ADD)) >= \
            len(target.supporting_pes(Opcode.MUL))


# ---------------------------------------------------------------------- #
# Common-subexpression elimination
# ---------------------------------------------------------------------- #
class CommonSubexpressionEliminationPass(Pass):
    """Merge structurally identical pure nodes (hash-consing in topo order).

    Two nodes are identical when they share the opcode and the same operand
    sources through DATA edges (order-insensitive for commutative ops);
    literals by value, inputs by (name, value), inductions outright.
    Memory operations, PHIs and OUTPUT markers never merge; a duplicate is
    only erased if it is not a loop-carried source.
    """

    name = "cse"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        edit = GraphEdit()
        seen: Dict[tuple, int] = {}
        merged = 0
        for node_id in _topological_ids(dfg):
            key = self._key(dfg, node_id, edit.forward)
            if key is None:
                continue
            survivor = seen.get(key)
            if survivor is None:
                seen[key] = node_id
                continue
            if _is_lc_source(dfg, node_id):
                continue
            edit.forward[node_id] = survivor
            merged += 1
        if edit.is_empty():
            return None
        new_dfg, node_map = rebuild(dfg, edit)
        return new_dfg, node_map, f"merged {merged} duplicate(s)"

    @staticmethod
    def _key(dfg: DFG, node_id: int,
             forward: Dict[int, int]) -> Optional[tuple]:
        node = dfg.node(node_id)
        op = node.opcode
        if op is Opcode.CONST:
            return ("const", _const_value(node))
        if op is Opcode.INPUT:
            return ("input", node.name, _const_value(node))
        if op is Opcode.INDUCTION:
            return ("induction",)
        info = OPCODE_INFO[op]
        if info.evaluate is None or op is Opcode.OUTPUT or info.arity == 0:
            return None
        operands = _exact_data_operands(dfg, node_id, info.arity)
        if operands is None:
            return None
        sources = tuple(forward.get(e.src, e.src) for e in operands)
        if op in COMMUTATIVE_OPCODES:
            sources = tuple(sorted(sources))
        return ("op", op, sources)


# ---------------------------------------------------------------------- #
# Dead-node elimination
# ---------------------------------------------------------------------- #
class DeadNodeEliminationPass(Pass):
    """Drop nodes that no longer reach an observable node.

    Observability is anchored at the *original* graph's sinks, stores and
    outputs (threaded through :class:`PassContext`), so constants orphaned
    by folding or forwarding die while every originally-live value stays.
    """

    name = "dce"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        roots = {n for n in ctx.observables if dfg.has_node(n)}
        for node in dfg.nodes():
            if node.opcode in (Opcode.STORE, Opcode.OUTPUT):
                roots.add(node.id)
        live = ancestors_of(dfg, roots)
        dead = set(dfg.node_ids()) - live
        if not dead:
            return None
        new_dfg, node_map = rebuild(dfg, GraphEdit(drop=dead))
        return new_dfg, node_map, f"removed {len(dead)} dead node(s)"


# ---------------------------------------------------------------------- #
# Associativity rebalancing
# ---------------------------------------------------------------------- #
class ReassociationPass(Pass):
    """Rebalance same-opcode reduction chains into shallow trees.

    A *chain* is a maximal single-use run of one associative-commutative
    opcode. Rebalancing replaces its interior nodes with a fresh balanced
    tree (critical path ``ceil(log2 n)`` instead of ``n``), keeping the
    root's id and value. When the chain is itself a loop recurrence -- the
    root feeds a chain interior through a loop-carried edge -- the carried
    operand is hoisted to the root, collapsing the recurrence cycle to a
    single node and cutting RecII to its floor (the classic accumulator
    reassociation: ``(((acc+a)+b)+c)`` becomes ``acc + ((a+b)+c)``).

    Leaves that lie on a dependence cycle (members of a non-trivial SCC of
    the full digraph) are pinned near the root, never deeper than their
    original position, so rebalancing can only shorten recurrences --
    without this, a cycle entering the chain through a deep-repositioned
    leaf would *raise* RecII.

    Interiors get fresh ids (their values change); the pass only fires
    when it strictly shortens the chain depth or the recurrence, so it is
    idempotent.
    """

    name = "reassoc"

    def run(self, dfg: DFG, ctx: PassContext) -> Optional[PassOutcome]:
        edit = GraphEdit()
        next_id = max(dfg.node_ids(), default=-1) + 1
        cyclic = self._cyclic_nodes(dfg)
        rebuilt = 0
        for root_id in dfg.node_ids():
            root = dfg.node(root_id)
            if root.opcode not in AC_OPCODES:
                continue
            if self._interior_info(dfg, root_id, root.opcode, None) is not None:
                continue  # handled as part of its parent's chain
            chain = self._collect(dfg, root_id, root.opcode)
            if chain is None:
                continue
            leaves, interiors, lc_edge, old_depth = chain
            if not interiors:
                continue
            plain = [n for n, _ in leaves if n not in cyclic]
            pinned = sorted(
                ((depth, n) for n, depth in leaves if n in cyclic)
            )
            # a pinned leaf i (1-based, shallowest first) ends up at depth
            # i (i+1 under a hoisted carry); bail out unless every one
            # stays at or above its original depth
            offset = 2 if lc_edge is not None else 1
            if any(depth < index + offset
                   for index, (depth, _) in enumerate(pinned)):
                continue
            if lc_edge is None and self._new_depth(
                len(pinned), len(plain)
            ) >= old_depth:
                continue  # no critical-path gain: nothing to rebalance for
            next_id = self._rebuild_chain(
                edit, root_id, root.opcode, plain,
                [n for _, n in pinned], interiors, lc_edge, next_id,
            )
            rebuilt += 1
        if edit.is_empty():
            return None
        new_dfg, node_map = rebuild(dfg, edit)
        return new_dfg, node_map, f"rebalanced {rebuilt} chain(s)"

    # ------------------------------------------------------------------ #
    @staticmethod
    def _cyclic_nodes(dfg: DFG) -> Set[int]:
        """Nodes on some dependence cycle (loop-carried edges included)."""
        graph = dfg.full_digraph()
        cyclic: Set[int] = set()
        for component in nx.strongly_connected_components(graph):
            if len(component) > 1:
                cyclic |= component
            else:
                only = next(iter(component))
                if graph.has_edge(only, only):
                    cyclic.add(only)
        return cyclic

    @staticmethod
    def _new_depth(num_pinned: int, num_plain: int) -> int:
        """Maximum leaf depth of the rebalanced tree (no hoisted carry)."""
        if num_plain == 0:
            return max(1, num_pinned - 1)
        core = math.ceil(math.log2(num_plain)) if num_plain >= 2 else 0
        return num_pinned + core

    # ------------------------------------------------------------------ #
    @staticmethod
    def _interior_info(dfg: DFG, node_id: int, op: Opcode,
                       root_id: Optional[int]):
        """(data_operand_edges, lc_edge_or_None) if ``node_id`` can be a
        chain interior under ``op``; ``None`` otherwise.

        With ``root_id=None`` the loop-carried special case is judged
        against *any* source (used to decide whether a node belongs to
        some parent's chain rather than starting its own)."""
        node = dfg.node(node_id)
        if node.opcode is not op:
            return None
        out = dfg.out_edges(node_id)
        if len(out) != 1 or out[0].is_loop_carried:
            return None
        consumer = dfg.node(out[0].dst)
        if consumer.opcode is not op:
            return None
        in_edges = dfg.in_edges(node_id)
        lc = [e for e in in_edges if e.is_loop_carried]
        data = sorted((e for e in in_edges if not e.is_loop_carried),
                      key=lambda e: e.operand_index)
        if lc:
            if len(lc) != 1 or len(data) != 1:
                return None
            if root_id is not None and lc[0].src != root_id:
                return None
            return data, lc[0]
        if len(data) != 2:
            return None
        return data, None

    def _collect(self, dfg: DFG, root_id: int, op: Opcode):
        """Walk the chain below ``root_id``; return
        ``(leaves_with_depth, interiors, lc_edge, old_depth)`` or ``None``."""
        root_operands = _exact_data_operands(dfg, root_id, 2)
        if root_operands is None:
            return None
        leaves: List[Tuple[int, int]] = []
        interiors: List[int] = []
        lc_edge: Optional[DFGEdge] = None
        old_depth = 1

        stack = [(e.src, 1) for e in reversed(root_operands)]
        while stack:
            node_id, depth = stack.pop()
            info = self._interior_info(dfg, node_id, op, root_id)
            if info is None:
                leaves.append((node_id, depth))
                old_depth = max(old_depth, depth)
                continue
            data, lc = info
            if lc is not None:
                if lc_edge is not None:
                    # a second carried operand cannot be hoisted; keep the
                    # node intact as a leaf of the chain
                    leaves.append((node_id, depth))
                    old_depth = max(old_depth, depth)
                    continue
                lc_edge = lc
            interiors.append(node_id)
            stack.extend((e.src, depth + 1) for e in reversed(data))
        return leaves, interiors, lc_edge, old_depth

    @staticmethod
    def _rebuild_chain(edit: GraphEdit, root_id: int, op: Opcode,
                       plain: List[int], pinned: List[int],
                       interiors: List[int],
                       lc_edge: Optional[DFGEdge], next_id: int) -> int:
        """Emit the balanced replacement tree.

        Plain leaves reduce pairwise into a balanced core; cycle-pinned
        leaves (shallowest-constraint first) nest directly under the root;
        a hoisted loop-carried operand becomes a self-edge on the root.
        """
        def combine(a: int, b: int) -> int:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            edit.extra_nodes.append(DFGNode(id=node_id, opcode=op))
            edit.extra_edges.append(DFGEdge(a, node_id, operand_index=0))
            edit.extra_edges.append(DFGEdge(b, node_id, operand_index=1))
            return node_id

        def reduce_to(level: List[int], width: int) -> List[int]:
            while len(level) > width:
                paired: List[int] = []
                for i in range(0, len(level) - 1, 2):
                    paired.append(combine(level[i], level[i + 1]))
                if len(level) % 2:
                    paired.append(level[-1])
                level = paired
            return level

        def nest(items: List[int]) -> int:
            tree = items[-1]
            for item in reversed(items[:-1]):
                tree = combine(item, tree)
            return tree

        edit.drop.update(interiors)
        edit.drop_in_edges.add(root_id)
        if lc_edge is not None:
            items = pinned + reduce_to(plain, 1)
            edit.extra_edges.append(DFGEdge(nest(items), root_id,
                                            operand_index=0))
            edit.extra_edges.append(DFGEdge(
                root_id, root_id, kind=DependenceKind.LOOP_CARRIED,
                distance=lc_edge.distance, operand_index=1,
            ))
            return next_id
        if pinned:
            items = pinned + reduce_to(plain, 1)
            first, rest = items[0], items[1:]
            second = rest[0] if len(rest) == 1 else nest(rest)
        else:
            first, second = reduce_to(plain, 2)
        edit.extra_edges.append(DFGEdge(first, root_id, operand_index=0))
        edit.extra_edges.append(DFGEdge(second, root_id, operand_index=1))
        return next_id


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
PASS_REGISTRY: Dict[str, Type[Pass]] = {
    cls.name: cls
    for cls in (
        ConstantFoldingPass,
        AlgebraicSimplificationPass,
        StrengthReductionPass,
        CommonSubexpressionEliminationPass,
        DeadNodeEliminationPass,
        ReassociationPass,
    )
}


def pass_names() -> List[str]:
    return sorted(PASS_REGISTRY)


def make_pass(name: str) -> Pass:
    try:
        return PASS_REGISTRY[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown optimization pass {name!r}; "
            f"available: {', '.join(pass_names())}"
        ) from exc
