"""The pass manager: opt levels, pipelines, and verified pipeline runs.

``O0`` maps the frontend's DFG untouched (the paper's flow); ``O1`` runs
the cheap clean-up passes (constant folding, algebraic simplification,
dead-node elimination); ``O2`` adds strength reduction, common-subexpression
elimination and associativity rebalancing. A pipeline is run to a fixpoint
(bounded by ``max_rounds``) because passes enable each other -- folding
exposes identities, identities orphan constants, reassociation exposes new
folds.

Every pass application can be verified by replaying the rewritten graph
through the sequential reference interpreter against its input
(:mod:`repro.opt.verify`); the mapper enables this whenever its own
``validate`` flag is on, so an unsound rewrite is caught at the pass that
introduced it, not as a mysterious mapping-vs-simulation mismatch later.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.cgra import CGRA
from repro.graphs.dfg import DFG
from repro.opt.passes import Pass, PassContext, make_pass, pass_names
from repro.opt.rewrite import NodeMap, compose_maps, identity_map
from repro.opt.verify import VerificationReport, verify_equivalence

#: pass schedule per optimization level.
OPT_LEVEL_PIPELINES: Dict[int, Tuple[str, ...]] = {
    0: (),
    1: ("constfold", "algebraic", "dce"),
    2: ("constfold", "algebraic", "strength", "cse", "reassoc", "dce"),
}

MAX_OPT_LEVEL = max(OPT_LEVEL_PIPELINES)


def parse_opt_level(level: Union[int, str, None]) -> int:
    """Parse ``2`` / ``"2"`` / ``"O2"`` / ``"o2"`` (``None`` -> 0)."""
    if level is None:
        return 0
    if isinstance(level, str):
        text = level.strip().lower().lstrip("o")
        try:
            level = int(text if text else "0")
        except ValueError as exc:
            raise ValueError(
                f"invalid optimization level {level!r}; expected O0..O{MAX_OPT_LEVEL}"
            ) from exc
    if not (0 <= level <= MAX_OPT_LEVEL):
        raise ValueError(
            f"optimization level must be in [0, {MAX_OPT_LEVEL}], got {level}"
        )
    return level


def opt_level_label(level: int) -> str:
    return f"O{parse_opt_level(level)}"


@dataclass(frozen=True)
class PassStat:
    """What one pass application did."""

    name: str
    changed: bool
    detail: str
    seconds: float
    nodes_after: int


@dataclass
class OptResult:
    """Outcome of one pipeline run.

    ``node_map`` relates original node ids to surviving ids (``None`` for
    erased nodes); callers holding per-node metadata (initial values,
    output bindings) remap through it.
    """

    original: DFG
    optimized: DFG
    node_map: NodeMap
    stats: List[PassStat] = field(default_factory=list)
    rounds: int = 0
    seconds: float = 0.0
    verification: Optional[VerificationReport] = None

    @property
    def nodes_before(self) -> int:
        return self.original.num_nodes

    @property
    def nodes_after(self) -> int:
        return self.optimized.num_nodes

    @property
    def changed(self) -> bool:
        return any(stat.changed for stat in self.stats)

    @property
    def verified(self) -> bool:
        return self.verification is not None and self.verification.equivalent

    def remap_node(self, node_id: int) -> Optional[int]:
        return self.node_map.get(node_id)

    def summary(self) -> str:
        applied = [s for s in self.stats if s.changed]
        if not applied:
            return (f"opt: no change ({self.nodes_before} node(s), "
                    f"{self.seconds:.3f}s)")
        details = "; ".join(f"{s.name}: {s.detail}" for s in applied)
        suffix = ", verified" if self.verified else ""
        return (
            f"opt: {self.nodes_before} -> {self.nodes_after} node(s) in "
            f"{self.rounds} round(s), {self.seconds:.3f}s{suffix} ({details})"
        )


class PassManager:
    """Runs a pass list to a fixpoint over one DFG."""

    def __init__(self, passes: Sequence[Union[Pass, str]],
                 max_rounds: int = 4) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.passes: List[Pass] = [
            p if isinstance(p, Pass) else make_pass(p) for p in passes
        ]
        self.max_rounds = max_rounds

    def run(
        self,
        dfg: DFG,
        target: Optional[CGRA] = None,
        verify: bool = False,
        verify_iterations: int = 4,
    ) -> OptResult:
        start = time.monotonic()
        result = OptResult(
            original=dfg, optimized=dfg, node_map=identity_map(dfg)
        )
        if not self.passes:
            result.seconds = time.monotonic() - start
            return result

        ctx = PassContext.for_dfg(dfg, target=target)
        original_observables = set(ctx.observables)
        current = dfg
        for _ in range(self.max_rounds):
            result.rounds += 1
            round_changed = False
            for opt_pass in self.passes:
                pass_start = time.monotonic()
                outcome = opt_pass.run(current, ctx)
                elapsed = time.monotonic() - pass_start
                if outcome is None:
                    result.stats.append(PassStat(
                        opt_pass.name, False, "no change", elapsed,
                        current.num_nodes,
                    ))
                    continue
                new_dfg, node_map, detail = outcome
                if verify:
                    verify_equivalence(
                        current, new_dfg, node_map,
                        iterations=verify_iterations,
                        observables=ctx.observables,
                        label=opt_pass.name,
                    )
                ctx.remap(node_map)
                result.node_map = compose_maps(result.node_map, node_map)
                current = new_dfg
                round_changed = True
                result.stats.append(PassStat(
                    opt_pass.name, True, detail,
                    time.monotonic() - pass_start, current.num_nodes,
                ))
            if not round_changed:
                break

        current.validate()
        result.optimized = current
        if verify:
            result.verification = verify_equivalence(
                dfg, current, result.node_map,
                iterations=verify_iterations,
                observables=original_observables,
            )
        result.seconds = time.monotonic() - start
        return result


def build_pipeline(
    opt_level: Union[int, str, None] = 0,
    passes: Optional[Sequence[str]] = None,
    max_rounds: int = 4,
) -> PassManager:
    """A :class:`PassManager` for an opt level or an explicit pass list.

    An explicit ``passes`` sequence overrides the level's schedule (this is
    the CLI's ``--passes``); unknown names raise early with the catalog.
    """
    if passes:
        return PassManager(list(passes), max_rounds=max_rounds)
    level = parse_opt_level(opt_level)
    return PassManager(OPT_LEVEL_PIPELINES[level], max_rounds=max_rounds)


def optimize_dfg(
    dfg: DFG,
    opt_level: Union[int, str, None] = 0,
    passes: Optional[Sequence[str]] = None,
    target: Optional[CGRA] = None,
    verify: bool = False,
) -> OptResult:
    """Convenience one-shot: build the pipeline and run it on ``dfg``."""
    manager = build_pipeline(opt_level=opt_level, passes=passes)
    return manager.run(dfg, target=target, verify=verify)


__all__ = [
    "MAX_OPT_LEVEL",
    "OPT_LEVEL_PIPELINES",
    "OptResult",
    "PassManager",
    "PassStat",
    "build_pipeline",
    "opt_level_label",
    "optimize_dfg",
    "parse_opt_level",
    "pass_names",
]
