"""Differential verification of optimization passes.

Replays the optimized DFG through the sequential reference interpreter
(:mod:`repro.sim.reference`) against the original and insists that

* every surviving node (per the pass ``node_map``) produces exactly the
  original's per-iteration values,
* every observable node of the original survived, and
* the final data-memory state is identical.

This reuses the oracle of the PR-2 differential harness -- the reference
interpreter is the single source of truth for DFG semantics -- so "the
pipeline is semantics-preserving" and "the mapper is correct" are checked
against the same ground truth.

Graphs that are not arity-consistent (decorative opcodes from
:func:`repro.graphs.generators.random_dfg`, structural test graphs) cannot
be executed; verification is *skipped* for those -- but if an executable
graph stops being executable after a pass, that is reported as a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.arch.isa import OPCODE_INFO, Opcode, arity as opcode_arity
from repro.graphs.dfg import DFG
from repro.opt.rewrite import NodeMap, observable_ids
from repro.sim.machine import DataMemory
from repro.sim.reference import ReferenceInterpreter


class OptVerificationError(AssertionError):
    """An optimization pass changed the observable semantics of a DFG."""


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one differential check."""

    equivalent: bool
    skipped: bool = False
    detail: str = ""


def is_executable(dfg: DFG) -> bool:
    """True when the reference interpreter can evaluate every node."""
    for node in dfg.nodes():
        op = node.opcode
        needed: Optional[int] = None
        if op is Opcode.LOAD:
            if node.array is None:
                return False
            needed = 1
        elif op is Opcode.STORE:
            if node.array is None:
                return False
            needed = 2
        elif OPCODE_INFO[op].evaluate is not None and \
                op not in (Opcode.ROUTE, Opcode.OUTPUT):
            needed = opcode_arity(op)
        if needed is None:
            continue
        provided = sum(
            1 for e in dfg.in_edges(node.id)
            if e.operand_index < opcode_arity(op)
        )
        if op in (Opcode.LOAD, Opcode.STORE):
            if provided < needed:
                return False
        elif provided != needed:
            return False
    return True


def verify_equivalence(
    original: DFG,
    optimized: DFG,
    node_map: NodeMap,
    iterations: int = 4,
    observables: Optional[Iterable[int]] = None,
    label: str = "pipeline",
) -> VerificationReport:
    """Prove ``optimized`` observably equivalent to ``original``.

    Raises :class:`OptVerificationError` on any divergence; returns a
    skipped report when the original graph is not executable.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not is_executable(original):
        return VerificationReport(
            equivalent=False, skipped=True,
            detail="original graph is not executable",
        )
    if not is_executable(optimized):
        raise OptVerificationError(
            f"{label}: optimized graph is no longer executable"
        )

    anchors = set(observables) if observables is not None \
        else observable_ids(original)
    for anchor in sorted(anchors):
        if node_map.get(anchor) is None:
            raise OptVerificationError(
                f"{label}: observable node {anchor} was optimized away"
            )

    original_trace = ReferenceInterpreter(
        original, memory=DataMemory()
    ).run(iterations)
    optimized_trace = ReferenceInterpreter(
        optimized, memory=DataMemory()
    ).run(iterations)

    for original_id, surviving_id in sorted(node_map.items()):
        if surviving_id is None:
            continue
        for iteration in range(iterations):
            expected = original_trace.value(original_id, iteration)
            actual = optimized_trace.value(surviving_id, iteration)
            if expected != actual:
                raise OptVerificationError(
                    f"{label}: node {original_id} (now {surviving_id}) "
                    f"diverges at iteration {iteration}: "
                    f"reference {expected}, optimized {actual}"
                )

    if original_trace.memory.arrays() != optimized_trace.memory.arrays():
        raise OptVerificationError(
            f"{label}: data-memory state diverges after "
            f"{iterations} iteration(s)"
        )
    return VerificationReport(
        equivalent=True,
        detail=f"{len(node_map)} node(s) checked over "
               f"{iterations} iteration(s)",
    )
