"""Structural DFG rewriting shared by every optimization pass.

:class:`~repro.graphs.dfg.DFG` is append-only by design (the mapper never
mutates graphs), so passes describe their effect as a :func:`rebuild` edit --
nodes to drop, nodes to forward (all uses rewired to a replacement), in-place
node overrides, and fresh nodes/edges -- and get back a new graph plus the
``node_map`` relating old ids to surviving ids.

The ``node_map`` is the correctness contract of the whole pass pipeline:
for every original node id mapped to a surviving id, the per-iteration value
of the surviving node must equal the original's (see :mod:`repro.opt.verify`).
A pass that changes what a node computes must therefore give the rewritten
node a *fresh* id (dropping the old one from the map), as the reassociation
pass does for rebalanced tree interiors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graphs.dfg import DFG, DFGEdge, DFGNode

#: ``node_map`` type: original id -> surviving id, or ``None`` when erased.
NodeMap = Dict[int, Optional[int]]


def identity_map(dfg: DFG) -> NodeMap:
    return {node_id: node_id for node_id in dfg.node_ids()}


def compose_maps(first: NodeMap, second: NodeMap) -> NodeMap:
    """Compose two node maps (``first`` applied before ``second``)."""
    composed: NodeMap = {}
    for original, middle in first.items():
        composed[original] = None if middle is None else second.get(middle)
    return composed


@dataclass
class GraphEdit:
    """One batch of structural edits applied atomically by :func:`rebuild`.

    Attributes:
        drop: node ids removed outright (every edge touching them must be
            gone after the other edits; :func:`rebuild` checks).
        forward: node id -> replacement id; every use of the key (data and
            loop-carried out-edges) is rewired to the resolved replacement
            and the key is removed. Chains (``a -> b``, ``b -> c``) resolve
            transitively.
        overrides: node id -> replacement :class:`DFGNode` carrying the
            *same* id (opcode/value rewrites such as constant folding).
        drop_in_edges: node ids whose incoming edges are all discarded
            (used together with ``overrides``/``extra_edges`` to give a
            node a new operand list).
        extra_nodes: fresh nodes to add (ids must not collide).
        extra_edges: edges to add after everything else.
    """

    drop: Set[int] = field(default_factory=set)
    forward: Dict[int, int] = field(default_factory=dict)
    overrides: Dict[int, DFGNode] = field(default_factory=dict)
    drop_in_edges: Set[int] = field(default_factory=set)
    extra_nodes: List[DFGNode] = field(default_factory=list)
    extra_edges: List[DFGEdge] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.drop or self.forward or self.overrides
                    or self.drop_in_edges or self.extra_nodes
                    or self.extra_edges)


def _resolve(forward: Dict[int, int], node_id: int) -> int:
    seen = set()
    while node_id in forward:
        if node_id in seen:
            raise ValueError(f"forwarding cycle through node {node_id}")
        seen.add(node_id)
        node_id = forward[node_id]
    return node_id


def rebuild(dfg: DFG, edit: GraphEdit) -> Tuple[DFG, NodeMap]:
    """Apply ``edit`` to ``dfg``; return the new graph and its node map."""
    gone: Set[int] = set(edit.drop) | set(edit.forward)
    node_map: NodeMap = {}
    for node_id in dfg.node_ids():
        if node_id in edit.drop:
            node_map[node_id] = None
        elif node_id in edit.forward:
            target = _resolve(edit.forward, node_id)
            if target in edit.drop:
                raise ValueError(
                    f"node {node_id} forwarded to dropped node {target}"
                )
            node_map[node_id] = target
        else:
            node_map[node_id] = node_id

    result = DFG(dfg.name)
    for node in dfg.nodes():
        if node.id in gone:
            continue
        replacement = edit.overrides.get(node.id, node)
        if replacement.id != node.id:
            raise ValueError(
                f"override for node {node.id} carries id {replacement.id}"
            )
        result.add_node(replacement.id, replacement.opcode, replacement.name,
                        replacement.value, replacement.array)
    for node in edit.extra_nodes:
        result.add_node(node.id, node.opcode, node.name, node.value, node.array)

    for e in dfg.edges():
        if e.dst in gone or e.dst in edit.drop_in_edges:
            continue
        src = _resolve(edit.forward, e.src)
        if src in edit.drop:
            raise ValueError(
                f"edge {e.src}->{e.dst} left dangling by dropped node {src}"
            )
        result.add_edge(src, e.dst, e.kind, e.distance, e.operand_index)
    for e in edit.extra_edges:
        result.add_edge(e.src, e.dst, e.kind, e.distance, e.operand_index)
    return result, node_map


def observable_ids(dfg: DFG) -> Set[int]:
    """Nodes whose values constitute the graph's observable behaviour.

    Memory writers, OUTPUT nodes, and dataflow sinks -- nodes with no
    outgoing *data* edge. A node whose only consumers read it through
    loop-carried edges is a sink too: it is the live-out value of an
    accumulator recurrence (nothing downstream consumes it within the
    iteration, but its final value is the loop's result). Dead-node
    elimination keeps exactly these and their ancestors; the differential
    verifier insists they survive every pipeline.
    """
    from repro.arch.isa import Opcode

    observable: Set[int] = set()
    for node in dfg.nodes():
        if node.opcode in (Opcode.STORE, Opcode.OUTPUT):
            observable.add(node.id)
        elif all(e.is_loop_carried for e in dfg.out_edges(node.id)):
            observable.add(node.id)
    return observable


def ancestors_of(dfg: DFG, roots: Iterable[int]) -> Set[int]:
    """``roots`` plus every node reaching them through any edge kind."""
    live: Set[int] = set()
    stack = list(roots)
    while stack:
        node_id = stack.pop()
        if node_id in live:
            continue
        live.add(node_id)
        stack.extend(e.src for e in dfg.in_edges(node_id))
    return live
