"""Core of the reproduction: the decoupled space/time CGRA mapper.

The mapping flow (paper Sec. IV) is:

1. compute ``mII = max(ResII, RecII)`` for the DFG and target CGRA;
2. **time phase** (:mod:`repro.core.time_solver`): find a modulo schedule
   satisfying the modulo-scheduling, capacity and connectivity constraints,
   formulated over the Kernel Mobility Schedule and solved with the SAT/SMT
   substrate;
3. **space phase** (:mod:`repro.core.space_solver`): search a monomorphism
   from the slot-labelled DFG into the MRRG;
4. on failure, ask the time phase for the next schedule, or increase ``II``.

:class:`repro.core.mapper.MonomorphismMapper` drives the loop and returns a
:class:`repro.core.mapping.Mapping`, which :mod:`repro.core.validation` can
check against all paper properties (mono1/2/3 plus dependence timing).
"""

from repro.core.config import (
    BaselineConfig,
    HeuristicConfig,
    MapperConfig,
    PortfolioConfig,
)
from repro.core.engine import (
    ENGINE_ALIASES,
    ENGINE_DESCRIPTIONS,
    ENGINE_NAMES,
    Engine,
    create_engine,
    engine_choices,
    normalize_engine,
)
from repro.core.feasibility import (
    FeasibilityReport,
    analyze_feasibility,
    heterogeneous_res_ii,
)
from repro.core.exceptions import (
    MappingError,
    NoScheduleError,
    NoMappingError,
    PhaseTimeoutError,
    InvalidMappingError,
)
from repro.core.time_solver import Schedule, TimeSolver
from repro.core.space_solver import SpaceSolver, MRRGTarget, SpaceResult
from repro.core.mapping import Mapping
from repro.core.mapper import MonomorphismMapper, MappingResult, MappingStatus
from repro.core.validation import validate_mapping, assert_valid_mapping

__all__ = [
    "BaselineConfig",
    "HeuristicConfig",
    "MapperConfig",
    "PortfolioConfig",
    "ENGINE_ALIASES",
    "ENGINE_DESCRIPTIONS",
    "ENGINE_NAMES",
    "Engine",
    "create_engine",
    "engine_choices",
    "normalize_engine",
    "FeasibilityReport",
    "analyze_feasibility",
    "heterogeneous_res_ii",
    "MappingError",
    "NoScheduleError",
    "NoMappingError",
    "PhaseTimeoutError",
    "InvalidMappingError",
    "Schedule",
    "TimeSolver",
    "SpaceSolver",
    "MRRGTarget",
    "SpaceResult",
    "Mapping",
    "MonomorphismMapper",
    "MappingResult",
    "MappingStatus",
    "validate_mapping",
    "assert_valid_mapping",
]
