"""Mapping validation.

Checks everything the paper requires of a valid space-time mapping:

* **mono1** -- at most one operation per (PE, slot) pair;
* **mono2** -- every node executes in the slot assigned by the schedule
  (true by construction here, but re-derived from the MRRG labelling);
* **mono3** -- every dependence connects PEs that can exchange data through
  the interconnect (adjacent or identical PEs);
* **operation support** -- every node runs on a PE whose ALU implements its
  opcode (bites on heterogeneous fabrics; trivially true on homogeneous
  arrays);
* **dependence timing** -- every (possibly loop-carried) dependence produces
  its value before it is consumed;
* **capacity / connectivity** -- the Sec. IV-B2/3 bounds, which must hold for
  any mapping that exists (they are necessary conditions);
* optionally, **register pressure** -- the number of live rotating values per
  PE fits the register file (an extension beyond the paper, disabled by
  default because the paper ignores register-file capacity).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.exceptions import InvalidMappingError
from repro.core.mapping import Mapping


def _check_injectivity(mapping: Mapping, violations: List[str]) -> None:
    seen: Dict[tuple, int] = {}
    for node_id in mapping.dfg.node_ids():
        key = (mapping.pe(node_id), mapping.slot(node_id))
        if key in seen:
            violations.append(
                f"mono1: nodes {seen[key]} and {node_id} both mapped to "
                f"PE {key[0]} at slot {key[1]}"
            )
        else:
            seen[key] = node_id


def _check_labels(mapping: Mapping, violations: List[str]) -> None:
    for node_id in mapping.dfg.node_ids():
        slot = mapping.slot(node_id)
        vertex = mapping.mrrg_vertex(node_id)
        derived_slot = vertex // mapping.cgra.num_pes
        if slot != derived_slot or not (0 <= slot < mapping.ii):
            violations.append(
                f"mono2: node {node_id} has slot {slot} but MRRG vertex {vertex}"
            )


def _check_adjacency(mapping: Mapping, violations: List[str]) -> None:
    cgra = mapping.cgra
    for a, b in mapping.dfg.undirected_edges():
        pe_a, pe_b = mapping.pe(a), mapping.pe(b)
        slot_a, slot_b = mapping.slot(a), mapping.slot(b)
        if pe_a == pe_b and slot_a == slot_b:
            # already reported by mono1; avoid double-reporting adjacency
            continue
        if pe_a == pe_b:
            continue  # a PE can always read its own register file
        if not cgra.adjacent(pe_a, pe_b):
            violations.append(
                f"mono3: dependence ({a}, {b}) maps to non-adjacent "
                f"PEs {pe_a} and {pe_b}"
            )


def _check_op_support(mapping: Mapping, violations: List[str]) -> None:
    cgra = mapping.cgra
    for node in mapping.dfg.nodes():
        pe_index = mapping.pe(node.id)
        if not cgra.pe(pe_index).supports(node.opcode):
            violations.append(
                f"op-support: node {node.id} ({node.opcode}) mapped to "
                f"PE {pe_index}, which does not implement that opcode"
            )


def _check_dependence_timing(mapping: Mapping, violations: List[str]) -> None:
    schedule = mapping.schedule
    for violation in schedule.validate_dependences():
        violations.append(f"timing: {violation}")


def _check_capacity(mapping: Mapping, violations: List[str]) -> None:
    for slot, nodes in enumerate(mapping.schedule.slot_population()):
        if len(nodes) > mapping.cgra.num_pes:
            violations.append(
                f"capacity: slot {slot} holds {len(nodes)} operations but the "
                f"CGRA has {mapping.cgra.num_pes} PEs"
            )


def _check_connectivity(mapping: Mapping, violations: List[str]) -> None:
    degree = mapping.cgra.connectivity_degree
    for node_id in mapping.dfg.node_ids():
        for slot in range(mapping.ii):
            count = mapping.schedule.neighbor_slot_count(node_id, slot)
            if count > degree:
                violations.append(
                    f"connectivity: node {node_id} has {count} neighbours in "
                    f"slot {slot}, exceeding D_M={degree}"
                )


def _check_register_pressure(mapping: Mapping, violations: List[str]) -> None:
    """Count rotating copies needed per PE (modulo variable expansion)."""
    pressure: Dict[int, int] = {pe.index: 0 for pe in mapping.cgra.pes}
    for node_id in mapping.dfg.node_ids():
        produced = mapping.time(node_id) + mapping.dfg.node(node_id).latency
        longest = produced  # value must at least exist at production time
        for edge in mapping.dfg.out_edges(node_id):
            consumed = mapping.time(edge.dst) + edge.distance * mapping.ii
            longest = max(longest, consumed)
        lifetime = longest - mapping.time(node_id)
        copies = max(1, -(-lifetime // mapping.ii))  # ceil division
        pressure[mapping.pe(node_id)] += copies
    for pe_index, used in pressure.items():
        capacity = mapping.cgra.pe(pe_index).register_file_size
        if used > capacity:
            violations.append(
                f"registers: PE {pe_index} needs {used} rotating registers "
                f"but provides {capacity}"
            )


def validate_mapping(mapping: Mapping, check_registers: bool = False) -> List[str]:
    """Return the list of violated properties (empty when valid)."""
    violations: List[str] = []
    _check_injectivity(mapping, violations)
    _check_labels(mapping, violations)
    _check_adjacency(mapping, violations)
    _check_op_support(mapping, violations)
    _check_dependence_timing(mapping, violations)
    _check_capacity(mapping, violations)
    _check_connectivity(mapping, violations)
    if check_registers:
        _check_register_pressure(mapping, violations)
    return violations


def assert_valid_mapping(mapping: Mapping, check_registers: bool = False) -> None:
    """Raise :class:`InvalidMappingError` if the mapping is not valid."""
    violations = validate_mapping(mapping, check_registers=check_registers)
    if violations:
        raise InvalidMappingError(violations)
