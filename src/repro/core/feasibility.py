"""Operation-compatibility feasibility analysis for heterogeneous fabrics.

Before any SAT formula is built, both mappers run the DFG's opcode profile
against the target CGRA's per-PE operation sets:

* a node whose opcode is supported by *no* PE makes the kernel infeasible
  on that fabric -- the mappers report this cleanly
  (:attr:`repro.core.mapper.MappingStatus.INFEASIBLE`) instead of burning
  the solver budget on a formula that is UNSAT for every II;
* an opcode supported by only ``k < num_pes`` PEs tightens the resource
  bound: at most ``k`` such operations fit into one kernel slot, so
  ``ceil(count / k)`` is a valid lower bound on the II, analogous to the
  paper's ResII but computed per support class.

Nodes are grouped by their *support set* (the exact set of PEs able to run
them) rather than by opcode: two opcodes restricted to the same PEs compete
for the same slots, so the per-group bound is tighter than a per-opcode one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.arch.cgra import CGRA
from repro.arch.isa import Opcode
from repro.graphs.dfg import DFG


@dataclass
class FeasibilityReport:
    """Outcome of :func:`analyze_feasibility` for one (DFG, CGRA) pair."""

    #: opcode -> node ids that no PE of the fabric can execute
    unsupported: Dict[Opcode, List[int]] = field(default_factory=dict)
    #: support-class resource bound: max over classes of ceil(count / |PEs|)
    op_res_ii: int = 1
    #: node ids grouped by the exact set of PEs able to execute them,
    #: restricted to classes smaller than the whole array
    restricted_classes: Dict[FrozenSet[int], List[int]] = field(
        default_factory=dict
    )

    @property
    def feasible(self) -> bool:
        return not self.unsupported

    def message(self) -> str:
        if self.feasible:
            return ""
        parts = [
            f"opcode {opcode} (nodes {sorted(nodes)}) is supported by no PE"
            for opcode, nodes in sorted(
                self.unsupported.items(), key=lambda item: item[0].value
            )
        ]
        return "kernel infeasible on this fabric: " + "; ".join(parts)


def analyze_feasibility(dfg: DFG, cgra: CGRA) -> FeasibilityReport:
    """Check every DFG opcode against the fabric's per-PE operation sets."""
    report = FeasibilityReport()
    by_support: Dict[FrozenSet[int], List[int]] = {}
    for node in dfg.nodes():
        supporting = cgra.supporting_pes(node.opcode)
        if not supporting:
            report.unsupported.setdefault(node.opcode, []).append(node.id)
            continue
        by_support.setdefault(supporting, []).append(node.id)
    bound = 1
    for supporting, nodes in by_support.items():
        bound = max(bound, -(-len(nodes) // len(supporting)))  # ceil division
        if len(supporting) < cgra.num_pes:
            report.restricted_classes[supporting] = sorted(nodes)
    report.op_res_ii = bound
    return report


def heterogeneous_res_ii(dfg: DFG, cgra: CGRA) -> int:
    """Support-class-aware resource II (equals ResII on homogeneous arrays).

    Opcodes supported nowhere are ignored here; callers are expected to
    reject those through :func:`analyze_feasibility` first.
    """
    return analyze_feasibility(dfg, cgra).op_res_ii
