"""The mapping object produced by the mapper.

A :class:`Mapping` binds a DFG, a CGRA, a modulo schedule and a placement. It
exposes the views the rest of the library needs: the kernel configuration
table (which PE executes which node at which slot, Fig. 2b), the
prologue/kernel/epilogue decomposition, utilisation statistics and a JSON
serialisation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.cgra import CGRA
from repro.core.time_solver import Schedule
from repro.graphs.dfg import DFG


@dataclass
class Mapping:
    """A complete space-time mapping of a DFG onto a CGRA."""

    dfg: DFG
    cgra: CGRA
    schedule: Schedule
    placement: Dict[int, int]  # node id -> PE index

    def __post_init__(self) -> None:
        missing = set(self.dfg.node_ids()) - set(self.placement)
        if missing:
            raise ValueError(f"placement misses nodes {sorted(missing)}")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def ii(self) -> int:
        return self.schedule.ii

    def pe(self, node_id: int) -> int:
        """PE executing a node."""
        return self.placement[node_id]

    def slot(self, node_id: int) -> int:
        """Kernel slot of a node."""
        return self.schedule.slot(node_id)

    def time(self, node_id: int) -> int:
        """Absolute start time of a node (prologue-relative)."""
        return self.schedule.time(node_id)

    def stage(self, node_id: int) -> int:
        """Pipeline stage (KMS folding subscript) of a node."""
        return self.schedule.iteration(node_id)

    def mrrg_vertex(self, node_id: int) -> int:
        """MRRG vertex id the node is mapped to."""
        return self.slot(node_id) * self.cgra.num_pes + self.pe(node_id)

    @property
    def schedule_length(self) -> int:
        return self.schedule.length

    @property
    def num_stages(self) -> int:
        return self.schedule.num_stages

    # ------------------------------------------------------------------ #
    # Kernel / prologue / epilogue structure
    # ------------------------------------------------------------------ #
    def kernel_table(self) -> List[List[Optional[int]]]:
        """``II x num_pes`` table: node executed by each PE at each slot."""
        table: List[List[Optional[int]]] = [
            [None] * self.cgra.num_pes for _ in range(self.ii)
        ]
        for node_id in self.dfg.node_ids():
            slot = self.slot(node_id)
            pe = self.pe(node_id)
            if table[slot][pe] is not None:
                raise ValueError(
                    f"PE {pe} at slot {slot} executes both node "
                    f"{table[slot][pe]} and node {node_id}"
                )
            table[slot][pe] = node_id
        return table

    def prologue_cycles(self, iterations: Optional[int] = None) -> int:
        """Number of cycles before the kernel reaches steady state."""
        return (self.num_stages - 1) * self.ii

    def epilogue_cycles(self) -> int:
        """Number of cycles needed to drain the pipeline after the kernel."""
        return self.schedule_length - self.ii

    def total_cycles(self, iterations: int) -> int:
        """Execution time of ``iterations`` loop iterations, in cycles.

        With modulo scheduling the loop completes in
        ``(iterations - 1) * II + schedule_length`` cycles.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        return (iterations - 1) * self.ii + self.schedule_length

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def utilization(self) -> float:
        """Fraction of PE-slots of the kernel that execute an operation."""
        return self.dfg.num_nodes / (self.ii * self.cgra.num_pes)

    def pe_load(self) -> Dict[int, int]:
        """Number of operations executed by each PE across the kernel."""
        load: Dict[int, int] = {pe.index: 0 for pe in self.cgra.pes}
        for node_id in self.dfg.node_ids():
            load[self.pe(node_id)] += 1
        return load

    def stats(self) -> Dict[str, object]:
        return {
            "benchmark": self.dfg.name,
            "cgra": self.cgra.size_label,
            "ii": self.ii,
            "schedule_length": self.schedule_length,
            "num_stages": self.num_stages,
            "nodes": self.dfg.num_nodes,
            "edges": self.dfg.num_edges,
            "utilization": round(self.utilization(), 4),
            "max_pe_load": max(self.pe_load().values()),
        }

    # ------------------------------------------------------------------ #
    # Rendering / serialisation
    # ------------------------------------------------------------------ #
    def render_kernel(self) -> str:
        """ASCII kernel configuration table (the bottom of paper Fig. 2b)."""
        table = self.kernel_table()
        width = max(4, max(len(str(n)) for n in self.dfg.node_ids()) + 1)
        header = "slot | " + " ".join(
            f"PE{pe.index}".rjust(width) for pe in self.cgra.pes
        )
        lines = [header, "-" * len(header)]
        for slot, row in enumerate(table):
            cells = " ".join(
                (str(node) if node is not None else ".").rjust(width) for node in row
            )
            lines.append(f"T={slot:<3}| {cells}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "dfg": self.dfg.to_dict(),
            "cgra": {
                "rows": self.cgra.rows,
                "cols": self.cgra.cols,
                "topology": self.cgra.topology.value,
            },
            "ii": self.ii,
            "start_times": dict(self.schedule.start_times),
            "placement": dict(self.placement),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: Dict) -> "Mapping":
        """Rebuild a mapping from :meth:`to_dict` output (or its JSON).

        JSON stringifies the integer node-id keys of ``start_times`` and
        ``placement``; they are converted back here, so a dict that went
        through ``json.dumps``/``loads`` (e.g. a compile-service response)
        round-trips. The fabric is reconstructed from its dimensions and
        topology only -- per-PE operation sets are not serialised, so a
        heterogeneous fabric comes back homogeneous; the schedule and
        placement themselves are preserved exactly.
        """
        from repro.arch.topology import Topology

        dfg = DFG.from_dict(data["dfg"])
        fabric = data["cgra"]
        cgra = CGRA(int(fabric["rows"]), int(fabric["cols"]),
                    topology=Topology(fabric["topology"]))
        start_times = {int(node): int(t)
                       for node, t in data["start_times"].items()}
        placement = {int(node): int(pe)
                     for node, pe in data["placement"].items()}
        schedule = Schedule(dfg=dfg, ii=int(data["ii"]),
                            start_times=start_times)
        return cls(dfg=dfg, cgra=cgra, schedule=schedule,
                   placement=placement)

    @classmethod
    def from_json(cls, text: str) -> "Mapping":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mapping({self.dfg.name} -> {self.cgra.size_label}, II={self.ii}, "
            f"stages={self.num_stages})"
        )
