"""Worker-process lifecycle helpers shared by the parallel runners.

The portfolio racer and the sweep batch runner both hand work to daemon
subprocesses and must eventually take them down -- on completion, on a
hard deadline, or when another engine short-circuits the race. A plain
``terminate(); join(timeout)`` is not enough: a worker stuck in a C-level
loop (exactly what the native solver backend makes possible) ignores
SIGTERM until it next returns to the interpreter, the join times out and
the process leaks. :func:`reap` escalates terminate -> kill -> join so
the worker is gone either way, and closes the parent's pipe end so the
OS resources go with it.
"""

from __future__ import annotations

import signal
from typing import Optional

#: per-stage join patience; two stages bound reap() at twice this
DEFAULT_REAP_GRACE_SECONDS = 5.0


def describe_exit(exitcode: Optional[int]) -> str:
    """Human-readable form of a ``Process.exitcode``.

    ``multiprocessing`` encodes death-by-signal as a negative exit code;
    supervisors attribute crashes in events and logs with this
    (``signal 9 (SIGKILL)``, ``exit 3``, ``no exit code``).
    """
    if exitcode is None:
        return "no exit code"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = "?"
        return f"signal {-exitcode} ({name})"
    return f"exit {exitcode}"


def reap(
    process,
    connection=None,
    grace: float = DEFAULT_REAP_GRACE_SECONDS,
    terminate: bool = True,
) -> Optional[int]:
    """Bring a worker process down for certain; never hangs, never leaks.

    Escalation ladder: ``terminate()`` (skipped when ``terminate`` is
    False -- for workers that already delivered a result and should just
    be joined), ``join(grace)``, and if the worker ignored SIGTERM,
    ``kill()`` followed by a final ``join(grace)``. ``connection`` (the
    parent's pipe end) is closed in all cases, including when a join
    raises. Returns the worker's exit code, or ``None`` if it survived
    even SIGKILL (kernel-stuck; nothing more can be done from here).
    """
    try:
        if terminate and process.is_alive():
            process.terminate()
        process.join(timeout=grace)
        if process.is_alive():
            process.kill()
            process.join(timeout=grace)
    finally:
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed by peer
                pass
    return process.exitcode
