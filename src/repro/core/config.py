"""Configuration of the decoupled mapper and of the coupled baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.arch.mrrg import TimeAdjacency


#: schedule-horizon extension ladder shared by every engine's retry loop
_SLACK_EXTRAS = (0, 1, 2, 4, 8, 16)


def _slack_candidates(slack: int, max_extra_slack: int) -> list:
    """Horizon extensions tried for one II, in order (all engines)."""
    return [slack + e for e in _SLACK_EXTRAS if e <= max_extra_slack]


def _normalize_opt(config) -> None:
    """Shared validation of the ``opt_level`` / ``opt_passes`` knobs.

    Imports :mod:`repro.opt` lazily (it pulls in the simulator for
    verification, which transitively imports this module).
    """
    if config.opt_passes is None and config.opt_level in (0, None):
        config.opt_level = 0
        return
    from repro.opt.passes import make_pass
    from repro.opt.pipeline import parse_opt_level

    config.opt_level = parse_opt_level(config.opt_level)
    if config.opt_passes is not None:
        config.opt_passes = tuple(config.opt_passes)
        for name in config.opt_passes:
            make_pass(name)  # fail fast on unknown pass names


@dataclass
class MapperConfig:
    """Knobs of :class:`repro.core.mapper.MonomorphismMapper`.

    The defaults reproduce the paper's setting; the ablation benches flip the
    ``enforce_*`` / ``time_adjacency`` / ``pin_first_placement`` flags.

    Attributes:
        max_ii: largest II to try; ``None`` means "critical path length plus
            slack" (a schedule of that length always exists time-wise).
        slack: extra schedule length added on top of the critical path when
            building the Mobility Schedule (0 reproduces the paper).
        max_extra_slack: if the time phase proves a given II infeasible, the
            mapper retries that II with a progressively longer schedule
            horizon (an extension over the paper, which never needs it on
            its benchmark set); this bounds the extra length tried.
        max_time_solutions_per_ii: how many schedules to request from the
            time phase for one II before giving up and increasing II.
        time_timeout_seconds / space_timeout_seconds: per-phase budgets.
        total_timeout_seconds: overall budget for one ``map()`` call
            (the paper uses 4000 s; the benches here use a few seconds).
        enforce_capacity / enforce_connectivity: include the paper's
            Sec. IV-B2 / IV-B3 constraint families in the time phase.
        strict_connectivity: also count the node itself when it shares the
            slot of its neighbours (a slightly tighter variant than the
            paper's ``|S_v^i| <= D_M``; off by default).
        time_adjacency: MRRG time-adjacency model used by the space phase.
        pin_first_placement: exploit torus vertex-transitivity by pinning the
            first placed node to PE 0 of its slot.
        validate: run the full validator on every returned mapping.
        incremental_time: drive the time phase through
            :class:`repro.core.time_solver.IncrementalTimeSolver`, which
            encodes the DFG once and opens a retractable clause scope per
            (II, slack) attempt instead of rebuilding the CNF; learnt
            clauses persist across the solves of one II's schedule
            enumeration, and activities/phases survive the whole
            mII -> II sweep. Disable to get the paper-literal re-encoding
            behaviour (used as the comparison point by the benches).
        opt_level: pre-mapping DFG optimization level (``0``/``"O0"`` maps
            the frontend's graph untouched, the paper's flow; ``1``/``2``
            run the :mod:`repro.opt` pass pipelines). Every node removed
            shrinks both the SAT time encoding and the monomorphism space
            search; shortened recurrences lower RecII and with it mII,
            which is recomputed on the optimized graph.
        opt_passes: explicit pass list overriding the level's schedule
            (the CLI's ``--passes``); names from
            :func:`repro.opt.passes.pass_names`.
        solver_backend: SAT kernel behind the SMT layer: ``"arena"`` (the
            flat-arena kernel of :mod:`repro.smt.sat`, the default),
            ``"native"`` (the fastest available compiled tier of the same
            kernel -- cffi-built C, numpy, or arena, bit-identical results;
            see :mod:`repro.smt.native`), ``"native-c"`` / ``"numpy"``
            (force one native tier, erroring when unavailable) or
            ``"reference"`` (the pre-rewrite kernel preserved in
            :mod:`repro.smt.sat_reference`, used by the differential suite
            and ``benchmarks/bench_solver.py``).
        profile: record detailed per-phase wall-clock attribution
            (propagate / analyze / reduce) inside the CDCL loop on top of
            the always-on counters; ``MappingResult.stats`` carries the
            result either way. This is what ``repro-map profile`` flips on.
    """

    max_ii: Optional[int] = None
    slack: int = 0
    max_extra_slack: int = 16
    max_time_solutions_per_ii: int = 24
    time_timeout_seconds: float = 120.0
    space_timeout_seconds: float = 120.0
    total_timeout_seconds: Optional[float] = None
    enforce_capacity: bool = True
    enforce_connectivity: bool = True
    strict_connectivity: bool = False
    time_adjacency: TimeAdjacency = TimeAdjacency.ALL_PAIRS
    pin_first_placement: bool = True
    validate: bool = True
    incremental_time: bool = True
    opt_level: Union[int, str] = 0
    opt_passes: Optional[Tuple[str, ...]] = None
    solver_backend: str = "arena"
    profile: bool = False

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise ValueError("slack must be non-negative")
        if self.max_extra_slack < 0:
            raise ValueError("max_extra_slack must be non-negative")
        if self.max_time_solutions_per_ii < 1:
            raise ValueError("max_time_solutions_per_ii must be >= 1")
        if self.max_ii is not None and self.max_ii < 1:
            raise ValueError("max_ii must be >= 1")
        _normalize_opt(self)

    def slack_candidates(self) -> list:
        """Schedule-horizon extensions tried for one II, in order."""
        return _slack_candidates(self.slack, self.max_extra_slack)


@dataclass
class HeuristicConfig:
    """Knobs of :class:`repro.heuristic.engine.HeuristicMapper`.

    The heuristic engine is *anytime*: it searches the II range under the
    wall-clock ``budget_seconds`` and always returns the best valid
    mapping found so far (validated like the exact engines'). It is
    stochastic but fully reproducible: every random draw flows from
    ``seed`` (resolved through
    :func:`repro.heuristic.engine.resolve_seed`, which honours the
    ``REPRO_PROPERTY_SEED`` environment variable when no explicit seed is
    given).

    Attributes:
        max_ii: largest II to try; ``None`` means "critical path plus
            slack", matching the exact engines.
        slack / max_extra_slack: schedule-horizon extension policy, same
            semantics as :class:`MapperConfig` (the list scheduler retries
            a failed II with progressively longer horizons before bumping
            II).
        budget_seconds: the anytime wall-clock budget of one ``map()``.
        seed: RNG seed; ``None`` resolves via ``REPRO_PROPERTY_SEED`` or
            the built-in default, so runs are reproducible by default.
        schedules_per_ii: list-scheduler restarts (with re-jittered
            priorities) attempted per (II, slack) before bumping II.
        placements_per_schedule: independent annealing runs per schedule.
        moves_per_node: simulated-annealing move budget, scaled by the
            DFG node count.
        validate: run the full validator on every candidate mapping (the
            engine refuses to return a mapping that fails it either way;
            this flag additionally raises instead of retrying).
        opt_level / opt_passes: the shared pre-mapping pipeline.
        profile: include detailed per-phase attribution in the stats.
        strategy: II search direction. ``"ascend"`` (the default) walks
            II up from mII and stops at the first success -- the first
            valid mapping is provably the best the engine can report, so
            there is exactly one result. ``"refine"`` walks II *down*
            from the critical-path horizon toward mII: high IIs succeed
            almost immediately, so a first (coarse) mapping lands fast
            and every further success strictly improves it -- the
            streaming shape the compile service's
            ``GET /v1/jobs/<id>/events`` exposes. Both directions draw
            from per-(II, attempt) RNG streams, so a given II's outcome
            is identical whichever strategy visits it.
        on_event: optional progress callback. The engine calls it with
            one dict per *improvement* -- ``{"event": "improvement",
            "ii": int, "mii": int, "elapsed": float}`` -- every time a
            new best valid mapping lands (once under ``"ascend"``,
            monotonically non-increasing IIs under ``"refine"``). The
            callback runs on the engine's thread; it must be cheap and
            must not raise (an exception aborts the search and
            propagates to the ``map()`` caller, which the service uses
            for cooperative cancellation).
    """

    max_ii: Optional[int] = None
    slack: int = 0
    max_extra_slack: int = 8
    budget_seconds: float = 30.0
    seed: Optional[int] = None
    schedules_per_ii: int = 8
    placements_per_schedule: int = 2
    moves_per_node: int = 400
    validate: bool = True
    opt_level: Union[int, str] = 0
    opt_passes: Optional[Tuple[str, ...]] = None
    profile: bool = False
    strategy: str = "ascend"
    on_event: Optional[Callable[[Dict[str, object]], None]] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.strategy not in ("ascend", "refine"):
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                "expected 'ascend' or 'refine'")
        if self.slack < 0:
            raise ValueError("slack must be non-negative")
        if self.max_extra_slack < 0:
            raise ValueError("max_extra_slack must be non-negative")
        if self.budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        if self.schedules_per_ii < 1:
            raise ValueError("schedules_per_ii must be >= 1")
        if self.placements_per_schedule < 1:
            raise ValueError("placements_per_schedule must be >= 1")
        if self.moves_per_node < 1:
            raise ValueError("moves_per_node must be >= 1")
        if self.max_ii is not None and self.max_ii < 1:
            raise ValueError("max_ii must be >= 1")
        _normalize_opt(self)

    def slack_candidates(self) -> list:
        """Schedule-horizon extensions tried for one II, in order."""
        return _slack_candidates(self.slack, self.max_extra_slack)


@dataclass
class PortfolioConfig:
    """Knobs of :class:`repro.heuristic.portfolio.PortfolioMapper`.

    Attributes:
        engines: engine names raced, in priority order (aliases accepted).
        budget_seconds: *total* budget of one ``map()`` call; divided
            evenly between the engines in sequential mode, granted to each
            engine in parallel mode (they run concurrently).
        parallel: race the engines in worker processes instead of running
            them back to back; the race short-circuits as soon as one
            engine proves optimality (``II == mII``).
        seed / opt_level / opt_passes / solver_backend / validate /
            profile: forwarded to the member engines (the seed only
            matters to the heuristic one).
    """

    engines: Tuple[str, ...] = ("heuristic", "monomorphism", "satmapit")
    budget_seconds: float = 60.0
    parallel: bool = False
    seed: Optional[int] = None
    opt_level: Union[int, str] = 0
    opt_passes: Optional[Tuple[str, ...]] = None
    solver_backend: str = "arena"
    validate: bool = True
    profile: bool = False

    def __post_init__(self) -> None:
        from repro.core.engine import normalize_engine

        if self.budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        if not self.engines:
            raise ValueError("a portfolio needs at least one engine")
        normalized = tuple(normalize_engine(name) for name in self.engines)
        if "portfolio" in normalized:
            raise ValueError("a portfolio cannot contain itself")
        if len(set(normalized)) != len(normalized):
            raise ValueError(f"duplicate engines in portfolio: {normalized}")
        self.engines = normalized
        _normalize_opt(self)

    def per_engine_budget(self) -> float:
        """Soft budget granted to each member engine."""
        if self.parallel:
            return self.budget_seconds
        return self.budget_seconds / len(self.engines)


@dataclass
class BaselineConfig:
    """Knobs of the SAT-MapIt-style coupled baseline.

    ``opt_level`` / ``opt_passes`` mirror :class:`MapperConfig`: both
    engines consume the same pre-mapping pipeline, so opt-level sweeps
    compare like against like.
    """

    max_ii: Optional[int] = None
    slack: int = 0
    max_extra_slack: int = 16
    timeout_seconds: float = 120.0
    total_timeout_seconds: Optional[float] = None
    enforce_capacity: bool = True
    validate: bool = True
    opt_level: Union[int, str] = 0
    opt_passes: Optional[Tuple[str, ...]] = None
    #: SAT kernel: "arena" (default), "native"/"native-c"/"numpy"
    #: (compiled tiers, bit-identical) or "reference" (pre-rewrite oracle)
    solver_backend: str = "arena"
    #: detailed per-phase wall clock inside the solver (repro-map profile)
    profile: bool = False
    #: benchmarks/bench_solver.py only: pre-rewrite per-sync sweep costs
    legacy_solver_sync: bool = False

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise ValueError("slack must be non-negative")
        if self.max_extra_slack < 0:
            raise ValueError("max_extra_slack must be non-negative")
        _normalize_opt(self)

    def slack_candidates(self) -> list:
        """Schedule-horizon extensions tried for one II, in order."""
        return _slack_candidates(self.slack, self.max_extra_slack)
