"""The shared mapping-engine protocol and registry.

Three first-class engines produce :class:`~repro.core.mapper.MappingResult`
objects from the same ``map(dfg)`` entry point:

* ``monomorphism`` -- the paper's decoupled space/time mapper
  (:class:`repro.core.mapper.MonomorphismMapper`), exact;
* ``satmapit`` -- the coupled SAT-MapIt-style baseline
  (:class:`repro.baseline.satmapit.SatMapItMapper`), exact;
* ``heuristic`` -- the stochastic anytime engine
  (:class:`repro.heuristic.engine.HeuristicMapper`): priority-based modulo
  list scheduling plus simulated-annealing placement, seeded and
  time-budgeted; and
* ``portfolio`` -- :class:`repro.heuristic.portfolio.PortfolioMapper`,
  which races the other three under per-engine budgets.

:class:`Engine` is the structural protocol all of them satisfy;
:func:`create_engine` builds any of them from one flat set of knobs (the
CLI's option surface). Engine construction is imported lazily so this
module stays importable from anywhere in :mod:`repro.core` without cycles.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.cgra import CGRA
    from repro.core.mapper import MappingResult
    from repro.graphs.dfg import DFG


class Engine(Protocol):
    """What every mapping engine looks like to the rest of the library.

    The protocol is deliberately a single method. An engine is
    constructed around a fixed :class:`~repro.arch.cgra.CGRA` and a
    config object carrying its knobs (budgets, opt pipeline, seed, SAT
    backend); ``map()`` is then called once per DFG. The contract every
    engine honours:

    * ``map()`` **never raises for ordinary failures** -- infeasibility,
      timeouts and exhausted searches come back as the
      :class:`~repro.core.mapper.MappingResult` ``status``; exceptions
      are reserved for bugs (e.g. a mapping that fails validation with
      ``config.validate`` set) and for callbacks that raise (the
      service's cooperative cancellation).
    * a returned ``SUCCESS`` mapping has passed
      :func:`repro.core.validation.validate_mapping` (unless validation
      was explicitly disabled);
    * ``MappingResult.stats`` is always populated -- see the
      :class:`~repro.core.mapper.MappingResult` docstring for the key
      inventory (``per_ii``, ``portfolio``, ``winner``, ...);
    * engines are **stateless across calls** as far as correctness goes:
      any warm state kept between ``map()`` calls (learnt clauses,
      VSIDS activities, cached fabrics) may only affect speed, never
      results.

    Engines register in :data:`ENGINE_NAMES` / :data:`ENGINE_ALIASES`
    and are built uniformly by :func:`create_engine`; the CLI, the batch
    runner, the profiler and the compile service all construct engines
    exclusively through that factory.
    """

    def map(self, dfg: "DFG") -> "MappingResult":
        """Map ``dfg`` onto the engine's CGRA; never raises for ordinary
        failures (the result's status carries the outcome)."""
        ...


#: canonical engine names, in the order ``repro-map list`` presents them
ENGINE_NAMES: Tuple[str, ...] = (
    "monomorphism", "satmapit", "heuristic", "portfolio",
)

#: every accepted spelling -> canonical engine name
ENGINE_ALIASES: Dict[str, str] = {
    "monomorphism": "monomorphism",
    "mono": "monomorphism",
    "decoupled": "monomorphism",
    "satmapit": "satmapit",
    "baseline": "satmapit",
    "coupled": "satmapit",
    "heuristic": "heuristic",
    "anneal": "heuristic",
    "sa": "heuristic",
    "portfolio": "portfolio",
    "race": "portfolio",
}

ENGINE_DESCRIPTIONS: Dict[str, str] = {
    "monomorphism": "exact decoupled space/time mapper (the paper's)",
    "satmapit": "exact coupled SAT baseline (SAT-MapIt style)",
    "heuristic": "stochastic anytime list-scheduler + annealing placer",
    "portfolio": "races the three engines under per-engine budgets",
}


def normalize_engine(name: str) -> str:
    """Canonical engine name for any accepted alias."""
    try:
        return ENGINE_ALIASES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown engine {name!r}; expected one of "
            f"{sorted(ENGINE_ALIASES)}"
        ) from exc


def engine_choices() -> List[str]:
    """Every accepted spelling, for argparse ``choices=``."""
    return sorted(ENGINE_ALIASES)


def create_engine(
    name: str,
    cgra: "CGRA",
    *,
    timeout_seconds: float = 60.0,
    budget_seconds: Optional[float] = None,
    seed: Optional[int] = None,
    opt_level: Union[int, str] = 0,
    opt_passes: Optional[Sequence[str]] = None,
    solver_backend: str = "arena",
    profile: bool = False,
    validate: bool = True,
    parallel_portfolio: bool = False,
    strategy: str = "ascend",
    on_event: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Engine:
    """Build any engine from the flat knob set the CLI exposes.

    ``timeout_seconds`` is the per-``map()`` soft budget every engine
    honours; ``budget_seconds`` is the anytime budget of the heuristic
    engine and the *total* budget the portfolio divides between its
    engines (both default to ``timeout_seconds`` when omitted). ``seed``
    reaches every stochastic component (see
    :func:`repro.heuristic.engine.resolve_seed` for the precedence over
    ``REPRO_PROPERTY_SEED``); the exact engines ignore it -- they are
    deterministic. ``strategy`` and ``on_event`` are the heuristic
    engine's anytime knobs (II sweep direction and the best-so-far
    improvement callback the service streams from); the other engines
    ignore them.
    """
    from repro.core.config import (
        BaselineConfig,
        HeuristicConfig,
        MapperConfig,
        PortfolioConfig,
    )

    canonical = normalize_engine(name)
    passes = tuple(opt_passes) if opt_passes else None
    if budget_seconds is None:
        budget_seconds = timeout_seconds
    if canonical == "monomorphism":
        from repro.core.mapper import MonomorphismMapper

        return MonomorphismMapper(cgra, MapperConfig(
            time_timeout_seconds=timeout_seconds,
            space_timeout_seconds=timeout_seconds,
            total_timeout_seconds=timeout_seconds,
            opt_level=opt_level,
            opt_passes=passes,
            solver_backend=solver_backend,
            profile=profile,
            validate=validate,
        ))
    if canonical == "satmapit":
        from repro.baseline.satmapit import SatMapItMapper

        return SatMapItMapper(cgra, BaselineConfig(
            timeout_seconds=timeout_seconds,
            total_timeout_seconds=timeout_seconds,
            opt_level=opt_level,
            opt_passes=passes,
            solver_backend=solver_backend,
            profile=profile,
            validate=validate,
        ))
    if canonical == "heuristic":
        from repro.heuristic.engine import HeuristicMapper

        return HeuristicMapper(cgra, HeuristicConfig(
            budget_seconds=budget_seconds,
            seed=seed,
            opt_level=opt_level,
            opt_passes=passes,
            profile=profile,
            validate=validate,
            strategy=strategy,
            on_event=on_event,
        ))
    from repro.heuristic.portfolio import PortfolioMapper

    return PortfolioMapper(cgra, PortfolioConfig(
        budget_seconds=budget_seconds,
        seed=seed,
        opt_level=opt_level,
        opt_passes=passes,
        solver_backend=solver_backend,
        profile=profile,
        validate=validate,
        parallel=parallel_portfolio,
    ))
