"""Exception hierarchy of the mapper."""

from __future__ import annotations


class MappingError(Exception):
    """Base class for all mapping failures."""


class NoScheduleError(MappingError):
    """The time phase proved that no schedule exists for the given II."""


class NoMappingError(MappingError):
    """No valid mapping was found within the configured II range."""


class PhaseTimeoutError(MappingError):
    """A phase (time or space) exceeded its timeout."""

    def __init__(self, phase: str, timeout_seconds: float) -> None:
        super().__init__(f"{phase} phase exceeded {timeout_seconds:.1f} s timeout")
        self.phase = phase
        self.timeout_seconds = timeout_seconds


class InvalidMappingError(MappingError):
    """A produced mapping violates one of the correctness properties."""

    def __init__(self, violations) -> None:
        super().__init__(
            "invalid mapping:\n" + "\n".join(f"  - {v}" for v in violations)
        )
        self.violations = list(violations)
