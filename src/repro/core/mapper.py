"""The decoupled space/time mapper (the paper's main contribution).

:class:`MonomorphismMapper` drives the two phases:

1. starting from ``mII = max(ResII, RecII)``, ask the time phase
   (:class:`~repro.core.time_solver.TimeSolver`) for schedules satisfying the
   modulo-scheduling + capacity + connectivity constraints;
2. hand each schedule to the space phase
   (:class:`~repro.core.space_solver.SpaceSolver`), which searches a
   monomorphism of the slot-labelled DFG into the MRRG;
3. the first successful placement is validated and returned; if no schedule
   of the current ``II`` can be placed, ``II`` is increased.

Two pragmatic refinements over the paper's description are implemented (both
are needed only on workloads wider than the paper's and are exercised by the
ablation benches):

* if the time phase proves an ``II`` infeasible, the schedule horizon is
  extended (``MapperConfig.max_extra_slack``) before giving up on that
  ``II`` -- a longer schedule only lengthens the prologue/epilogue, not the
  steady-state throughput;
* the space phase may reject several schedules of the same ``II``; the time
  phase then enumerates further solutions (up to
  ``MapperConfig.max_time_solutions_per_ii``).

The result records the wall-clock time spent in each phase separately,
matching the "Time / Space" columns of the paper's Table III.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.opt.pipeline import OptResult

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.exceptions import PhaseTimeoutError
from repro.core.feasibility import analyze_feasibility
from repro.core.mapping import Mapping
from repro.core.space_solver import SpaceSolver
from repro.core.time_solver import IncrementalTimeSolver, Schedule, TimeSolver
from repro.core.validation import assert_valid_mapping
from repro.graphs.analysis import critical_path_length, rec_ii, res_ii
from repro.graphs.dfg import DFG
from repro.obs import hooks as obs_hooks
from repro.obs import trace as obs_trace
from repro.perf import PerfCounters
from repro.smt.native import resolved_tier as native_resolved_tier


class MappingStatus(enum.Enum):
    """Final status of a mapping attempt."""

    SUCCESS = "success"
    NO_SOLUTION = "no_solution"
    INFEASIBLE = "infeasible"  # an opcode of the DFG is supported by no PE
    TIME_TIMEOUT = "time_timeout"
    SPACE_TIMEOUT = "space_timeout"
    TOTAL_TIMEOUT = "total_timeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class _Outcome(enum.Enum):
    """Internal outcome of one II attempt."""

    MAPPED = "mapped"
    FAILED = "failed"
    SPACE_TIMEOUT = "space_timeout"
    TIME_TIMEOUT = "time_timeout"
    TOTAL_TIMEOUT = "total_timeout"


@dataclass
class MappingResult:
    """Everything the experiments need to know about one mapping attempt.

    When a pre-mapping optimization pipeline ran (``MapperConfig.opt_level``
    / ``opt_passes``), ``opt`` holds its :class:`~repro.opt.pipeline.OptResult`
    -- including the node map callers need to translate per-node metadata
    (e.g. simulation initial values) onto the optimized graph the returned
    ``mapping`` refers to -- and ``opt_seconds`` the time it took (also part
    of ``total_seconds``: optimization is compilation time).

    ``stats`` is the :class:`repro.perf.PerfCounters` payload of the run
    (solver counters, per-phase wall clock, space-search counters); every
    engine populates it on every call. With ``config.profile`` set it also
    carries the detailed in-loop propagate/analyze/reduce attribution --
    that is what ``repro-map profile`` prints.

    The ``stats`` key inventory (all engines share the base shape, each
    adds its own section):

    * ``seconds`` -- per-phase wall clock: ``encode``, ``solve``,
      ``space``, and under profiling ``propagate`` / ``analyze`` /
      ``reduce``;
    * ``solver`` -- SAT kernel counters: ``conflicts``, ``decisions``,
      ``propagations``, ``learnts``, ``restarts``, ``reductions``, ...;
    * ``space`` -- space-phase counters: ``calls``, ``nodes_explored``,
      ``backtracks``;
    * ``engine`` -- which engine produced the result; ``backend`` -- the
      SAT kernel behind an exact engine; ``detailed`` -- whether the
      profiling attribution was on;
    * ``per_ii`` -- one entry per II attempted, in attempt order:
      ``{"ii", "time", "space", "schedules"}``; the trace behind
      compile-time-vs-II plots;
    * ``seed`` -- the resolved RNG seed (stochastic engines only);
    * ``heuristic`` -- the anytime engine's search counters
      (``schedule_attempts``, ``schedule_failures``, ``sa_runs``,
      ``sa_moves``, ``sa_accepted``, ``sa_ripups``, ``ii_bumps``);
    * ``portfolio`` / ``winner`` -- the portfolio's per-engine outcome
      list (``engine``, ``status``, ``ii``, ``total_seconds`` each) and
      the name of the engine whose result was returned.

    The whole payload is JSON-clean; the compile service stores it
    verbatim in its result records (see ``docs/service.md``).
    """

    status: MappingStatus
    mapping: Optional[Mapping] = None
    ii: Optional[int] = None
    mii: int = 0
    res_ii: int = 0
    rec_ii: int = 0
    time_phase_seconds: float = 0.0
    space_phase_seconds: float = 0.0
    total_seconds: float = 0.0
    schedules_tried: int = 0
    iis_tried: int = 0
    message: str = ""
    opt: Optional["OptResult"] = None
    opt_seconds: float = 0.0
    stats: Optional[Dict[str, object]] = None

    @property
    def success(self) -> bool:
        return self.status is MappingStatus.SUCCESS

    @property
    def timed_out(self) -> bool:
        return self.status in (
            MappingStatus.TIME_TIMEOUT,
            MappingStatus.SPACE_TIMEOUT,
            MappingStatus.TOTAL_TIMEOUT,
        )

    def summary(self) -> str:
        opt_note = ""
        if self.opt is not None and self.opt.changed:
            opt_note = (f", opt {self.opt.nodes_before}->"
                        f"{self.opt.nodes_after} nodes")
        if self.success:
            return (
                f"II={self.ii} (mII={self.mii}) in {self.total_seconds:.3f}s "
                f"(time {self.time_phase_seconds:.3f}s, "
                f"space {self.space_phase_seconds:.3f}s, "
                f"{self.schedules_tried} schedule(s) tried{opt_note})"
            )
        return (f"{self.status}: {self.message or 'no mapping found'}"
                f"{opt_note}")


def run_pre_mapping_opt(
    dfg: DFG, cgra: CGRA, config
) -> Tuple[DFG, Optional["OptResult"]]:
    """Shared pre-mapping optimization prologue of both engines.

    Runs the configured :mod:`repro.opt` pipeline (no-op at O0 with no
    explicit pass list) against ``cgra`` as the strength-reduction target.
    When the engine validates its mappings (``config.validate``) the
    pipeline is differentially verified pass by pass against the reference
    interpreter, so an unsound rewrite fails loudly here rather than as a
    downstream mapping mystery. mII/ResII/RecII are computed afterwards on
    the returned graph, i.e. post-optimization.
    """
    opt_level = getattr(config, "opt_level", 0)
    opt_passes = getattr(config, "opt_passes", None)
    if not opt_level and not opt_passes:
        return dfg, None
    # imported lazily: repro.opt pulls in the simulator for verification,
    # which transitively imports this module
    from repro.opt.pipeline import optimize_dfg

    opt_result = optimize_dfg(
        dfg,
        opt_level=opt_level,
        passes=opt_passes,
        target=cgra,
        verify=config.validate,
    )
    return opt_result.optimized, opt_result


def begin_mapping(dfg: DFG, cgra: CGRA) -> Tuple[int, int, int,
                                                 Optional[MappingResult]]:
    """Shared prologue of both mapping engines.

    Runs the op-compatibility feasibility gate and computes the op-aware
    ``(ResII, RecII, mII)`` triple. Returns ``(res_ii, rec_ii, mii,
    infeasible_result)`` where the last item is a ready-made INFEASIBLE
    :class:`MappingResult` (caller stamps ``total_seconds``) or ``None``
    when the kernel fits the fabric.
    """
    feasibility = analyze_feasibility(dfg, cgra)
    resource_ii = max(res_ii(dfg, cgra.num_pes), feasibility.op_res_ii)
    recurrence_ii = rec_ii(dfg)
    mii = max(resource_ii, recurrence_ii)
    infeasible = None
    if not feasibility.feasible:
        infeasible = MappingResult(
            status=MappingStatus.INFEASIBLE,
            mii=mii,
            res_ii=resource_ii,
            rec_ii=recurrence_ii,
            message=feasibility.message(),
        )
    return resource_ii, recurrence_ii, mii, infeasible


class MonomorphismMapper:
    """Maps DFGs onto a CGRA by decoupling the time and space dimensions."""

    def __init__(self, cgra: CGRA, config: Optional[MapperConfig] = None) -> None:
        self.cgra = cgra
        self.config = config if config is not None else MapperConfig()
        self.space_solver = SpaceSolver(cgra, self.config)
        self._perf = PerfCounters()  # replaced per map() call

    # ------------------------------------------------------------------ #
    def _max_ii(self, dfg: DFG, mii: int) -> int:
        if self.config.max_ii is not None:
            return max(self.config.max_ii, mii)
        # A schedule of length equal to the critical path always exists; an
        # II of that length (plus slack) leaves every node its full window.
        return max(mii, critical_path_length(dfg) + self.config.slack)

    def map(self, dfg: DFG) -> MappingResult:
        """Map ``dfg`` onto the CGRA; never raises for ordinary failures."""
        started = time.monotonic()
        with obs_hooks.engine_span("monomorphism"):
            result = self._map_impl(dfg)
            obs_hooks.finish_engine_run(
                "monomorphism", result, started, perf=self._perf
            )
        return result

    def _map_impl(self, dfg: DFG) -> MappingResult:
        dfg.validate()
        start = time.monotonic()
        perf = PerfCounters(detailed=self.config.profile)
        perf.extra["engine"] = "monomorphism"
        perf.extra["backend"] = self.config.solver_backend
        tier = native_resolved_tier(self.config.solver_backend)
        if tier is not None:
            perf.extra["solver_tier"] = tier
        self._perf = perf
        dfg, opt_result = run_pre_mapping_opt(dfg, self.cgra, self.config)
        resource_ii, recurrence_ii, mii, infeasible = begin_mapping(dfg, self.cgra)
        if infeasible is not None:
            infeasible.total_seconds = time.monotonic() - start
            infeasible.opt = opt_result
            if opt_result is not None:
                infeasible.opt_seconds = opt_result.seconds
            infeasible.stats = perf.as_dict()
            return infeasible
        max_ii = self._max_ii(dfg, mii)

        result = MappingResult(
            status=MappingStatus.NO_SOLUTION,
            mii=mii,
            res_ii=resource_ii,
            rec_ii=recurrence_ii,
            opt=opt_result,
            opt_seconds=opt_result.seconds if opt_result is not None else 0.0,
        )
        space_timed_out = False
        time_timed_out = False
        time_timeout_message = ""
        # per-II attribution: one record per attempted II with the time /
        # space seconds and schedule count it consumed (surfaced through
        # MappingResult.stats into the batch layer and the table3 report)
        per_ii: list = []
        perf.extra["per_ii"] = per_ii
        # One incremental time solver serves the whole mII -> II sweep: the
        # base encoding is built once and every (II, slack) attempt is a
        # retractable clause scope, carrying activities and phases across.
        incremental = (
            IncrementalTimeSolver(dfg, self.cgra, self.config, perf=perf)
            if self.config.incremental_time
            else None
        )

        for ii in range(mii, max_ii + 1):
            if self._total_budget_exhausted(start):
                result.status = MappingStatus.TOTAL_TIMEOUT
                result.message = f"total budget exhausted before II={ii}"
                break
            # counted only once the II is actually attempted, so
            # iis_tried always equals len(stats["per_ii"])
            result.iis_tried += 1
            time_before = result.time_phase_seconds
            space_before = result.space_phase_seconds
            schedules_before = result.schedules_tried
            attempt_started = time.monotonic()
            with obs_trace.span("ii_attempt", ii=ii):
                outcome, mapping, message = self._attempt_ii(
                    dfg, ii, result, start, incremental
                )
            obs_hooks.record_ii_attempt(
                "monomorphism", time.monotonic() - attempt_started
            )
            per_ii.append({
                "ii": ii,
                "time": round(result.time_phase_seconds - time_before, 6),
                "space": round(result.space_phase_seconds - space_before, 6),
                "schedules": result.schedules_tried - schedules_before,
            })
            if outcome is _Outcome.MAPPED:
                result.status = MappingStatus.SUCCESS
                result.mapping = mapping
                result.ii = ii
                break
            if outcome is _Outcome.TIME_TIMEOUT:
                # Give up on this II but keep trying larger ones while the
                # total budget allows it (larger IIs are easier to schedule).
                time_timed_out = True
                time_timeout_message = message
                continue
            if outcome is _Outcome.TOTAL_TIMEOUT:
                result.status = MappingStatus.TOTAL_TIMEOUT
                result.message = message
                break
            if outcome is _Outcome.SPACE_TIMEOUT:
                space_timed_out = True

        if result.status is MappingStatus.NO_SOLUTION and time_timed_out:
            result.status = MappingStatus.TIME_TIMEOUT
            result.message = time_timeout_message
        elif result.status is MappingStatus.NO_SOLUTION and space_timed_out:
            result.status = MappingStatus.SPACE_TIMEOUT
            result.message = "space phase timed out for every attempted II"
        if not result.message and result.status is MappingStatus.NO_SOLUTION:
            result.message = (
                f"no mapping found for II in [{mii}, {max_ii}] "
                f"(tried {result.schedules_tried} schedule(s))"
            )
        result.total_seconds = time.monotonic() - start
        result.stats = perf.as_dict()
        return result

    # ------------------------------------------------------------------ #
    def _phase_budget(self, start: float, configured: float) -> float:
        """Per-call solver budget, clipped to the remaining total budget."""
        total = self.config.total_timeout_seconds
        if total is None:
            return configured
        remaining = total - (time.monotonic() - start)
        return max(0.01, min(configured, remaining))

    def _attempt_ii(
        self,
        dfg: DFG,
        ii: int,
        result: MappingResult,
        start: float,
        incremental: Optional[IncrementalTimeSolver] = None,
    ) -> Tuple[_Outcome, Optional[Mapping], str]:
        """Try one II, extending the schedule horizon on time infeasibility."""
        space_timed_out = False
        attempted_slacks = set()
        for slack in self.config.slack_candidates():
            if incremental is not None:
                # Several slack candidates can collapse to one effective
                # horizon (the dense-DFG auto-extension); re-solving the
                # identical instance would be wasted work.
                effective = incremental.effective_slack(slack)
                if effective in attempted_slacks:
                    continue
                attempted_slacks.add(effective)
            if self._total_budget_exhausted(start):
                return (
                    _Outcome.TOTAL_TIMEOUT,
                    None,
                    f"total budget exhausted during II={ii}",
                )
            time_phase_start = time.monotonic()
            try:
                with obs_trace.span("time_phase", ii=ii, slack=slack):
                    budget = self._phase_budget(
                        start, self.config.time_timeout_seconds
                    )
                    if incremental is not None:
                        schedule_iter = incremental.iter_schedules(
                            ii, slack=slack, timeout_seconds=budget
                        )
                    else:
                        solver = TimeSolver(
                            dfg, self.cgra, ii, self.config, slack=slack,
                            perf=self._perf,
                        )
                        schedule_iter = solver.iter_schedules(
                            timeout_seconds=budget
                        )
                    schedule = self._next_schedule(schedule_iter)
            except PhaseTimeoutError as exc:
                result.time_phase_seconds += time.monotonic() - time_phase_start
                return _Outcome.TIME_TIMEOUT, None, str(exc)
            result.time_phase_seconds += time.monotonic() - time_phase_start

            if schedule is None:
                # II infeasible for this horizon; retry with a longer one.
                continue

            while schedule is not None:
                result.schedules_tried += 1
                with obs_trace.span("space_phase", ii=ii):
                    space_result = self.space_solver.solve(
                        schedule,
                        timeout_seconds=self._phase_budget(
                            start, self.config.space_timeout_seconds
                        ),
                    )
                result.space_phase_seconds += space_result.elapsed_seconds
                perf = self._perf
                perf.space_calls += 1
                perf.space_seconds += space_result.elapsed_seconds
                perf.space_nodes_explored += space_result.stats.nodes_explored
                perf.space_backtracks += space_result.stats.backtracks
                if space_result.found:
                    mapping = Mapping(
                        dfg=dfg,
                        cgra=self.cgra,
                        schedule=schedule,
                        placement=space_result.placement,
                    )
                    if self.config.validate:
                        assert_valid_mapping(mapping)
                    return _Outcome.MAPPED, mapping, ""
                if space_result.timed_out:
                    space_timed_out = True
                    break
                if self._total_budget_exhausted(start):
                    return (
                        _Outcome.TOTAL_TIMEOUT,
                        None,
                        "total budget exhausted during space search",
                    )
                time_phase_start = time.monotonic()
                try:
                    with obs_trace.span("time_phase", ii=ii):
                        schedule = self._next_schedule(schedule_iter)
                except PhaseTimeoutError as exc:
                    result.time_phase_seconds += time.monotonic() - time_phase_start
                    return _Outcome.TIME_TIMEOUT, None, str(exc)
                result.time_phase_seconds += time.monotonic() - time_phase_start

            # Schedules existed for this II but none could be placed (or the
            # space search timed out): a longer horizon is unlikely to help,
            # so move on to the next II.
            break
        if space_timed_out:
            return _Outcome.SPACE_TIMEOUT, None, "space phase timed out"
        return _Outcome.FAILED, None, ""

    # ------------------------------------------------------------------ #
    @staticmethod
    def _next_schedule(iterator) -> Optional[Schedule]:
        try:
            return next(iterator)
        except StopIteration:
            return None

    def _total_budget_exhausted(self, start: float) -> bool:
        budget = self.config.total_timeout_seconds
        return budget is not None and (time.monotonic() - start) > budget
