"""Time phase: modulo scheduling via the SAT/SMT substrate.

For a candidate ``II`` the solver assigns every DFG node an absolute start
time within its Mobility Schedule window; the node's kernel slot is the time
modulo ``II`` (this is exactly the folding performed by the Kernel Mobility
Schedule of paper Sec. IV-B). Three constraint families are encoded:

* **modulo scheduling** (Sec. IV-B1): data dependence ``u -> v`` requires
  ``T_v >= T_u + lat(u)``; a loop-carried dependence with distance ``d``
  requires ``T_v + d*II >= T_u + lat(u)``. These are the unfolded equivalents
  of the paper's folded (slot / iteration-subscript) constraints.
* **capacity** (Sec. IV-B2): at most ``|V_Mi|`` nodes per kernel slot.
* **connectivity** (Sec. IV-B3): for every node, at most ``D_M`` of its
  neighbours per kernel slot.

Capacity and connectivity are the additions that make a subsequent space
solution possible (paper Sec. IV-D); they can be disabled for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.arch.cgra import CGRA
from repro.core.config import MapperConfig
from repro.core.exceptions import PhaseTimeoutError
from repro.core.feasibility import analyze_feasibility
from repro.perf import PerfCounters, timed
from repro.graphs.analysis import (
    MobilitySchedule,
    critical_path_length,
    mobility_schedule,
    res_ii,
)
from repro.graphs.dfg import DFG, DependenceKind
from repro.graphs.kms import KernelMobilitySchedule
from repro.smt.csp import FiniteDomainProblem, IntVar


@dataclass
class Schedule:
    """A valid time solution: absolute start time for every DFG node."""

    dfg: DFG
    ii: int
    start_times: Dict[int, int]

    def time(self, node_id: int) -> int:
        """Absolute start time of a node."""
        return self.start_times[node_id]

    def slot(self, node_id: int) -> int:
        """Kernel slot (``time mod II``) -- the paper's label ``l_G``."""
        return self.start_times[node_id] % self.ii

    def iteration(self, node_id: int) -> int:
        """KMS folding subscript (``time div II``)."""
        return self.start_times[node_id] // self.ii

    @property
    def length(self) -> int:
        """Schedule length in cycles (prologue + one kernel iteration)."""
        return max(
            self.start_times[n] + self.dfg.node(n).latency for n in self.start_times
        )

    @property
    def num_stages(self) -> int:
        """Number of interleaved loop iterations in the kernel."""
        return max(self.iteration(n) for n in self.start_times) + 1

    def labels(self) -> Dict[int, int]:
        """Node -> kernel slot, the labelling used by the space phase."""
        return {n: self.slot(n) for n in self.start_times}

    def slot_population(self) -> Tuple[FrozenSet[int], ...]:
        """Nodes per kernel slot (``C_i`` of the capacity constraint).

        Memoized: a schedule is immutable once produced by the time phase,
        so the populations never change and callers that read them
        repeatedly (the validator checks every slot of every mapping, and
        ``max_slot_population`` is recomputed throughout the test suite)
        share one computation. The cached value is a tuple of frozensets
        so no caller can corrupt it in place; the cache needs no
        invalidation because nothing mutates ``start_times``.
        """
        cached = getattr(self, "_slot_population_cache", None)
        if cached is None:
            population: List[Set[int]] = [set() for _ in range(self.ii)]
            for node_id, start in self.start_times.items():
                population[start % self.ii].add(node_id)
            cached = tuple(frozenset(s) for s in population)
            object.__setattr__(self, "_slot_population_cache", cached)
        return cached

    def max_slot_population(self) -> int:
        cached = getattr(self, "_max_slot_population_cache", None)
        if cached is None:
            cached = max(len(s) for s in self.slot_population())
            object.__setattr__(self, "_max_slot_population_cache", cached)
        return cached

    def neighbor_slot_count(self, node_id: int, slot: int) -> int:
        """``|S_v^i|``: neighbours of a node scheduled in a given slot."""
        return sum(
            1 for u in self.dfg.neighbor_ids(node_id) if self.slot(u) == slot
        )

    def validate_dependences(self) -> List[str]:
        """Check every dependence; returns human-readable violations."""
        violations: List[str] = []
        for edge in self.dfg.edges():
            produced = self.start_times[edge.src] + self.dfg.node(edge.src).latency
            consumed = self.start_times[edge.dst] + edge.distance * self.ii
            if consumed < produced:
                violations.append(
                    f"dependence {edge.src}->{edge.dst} (kind={edge.kind}, "
                    f"distance={edge.distance}) violated: produced at {produced}, "
                    f"consumed at {consumed}"
                )
        return violations

    def as_rows(self) -> List[List[int]]:
        """Nodes per absolute time step (for pretty-printing)."""
        rows: List[List[int]] = [[] for _ in range(self.length)]
        for node_id, t in self.start_times.items():
            rows[t].append(node_id)
        return [sorted(r) for r in rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(ii={self.ii}, length={self.length}, nodes={len(self.start_times)})"


def _restricted_capacity_groups(dfg: DFG, cgra: CGRA) -> List[tuple]:
    """Support classes that can overflow a kernel slot on this fabric.

    Nodes are grouped by the exact set of PEs able to execute their opcode;
    a group competing for ``k < num_pes`` PEs admits at most ``k`` of its
    nodes per slot. Groups that cannot violate that bound (or span the
    whole array, which the global capacity constraint already covers) are
    dropped. Empty on homogeneous fabrics.
    """
    report = analyze_feasibility(dfg, cgra)
    return [
        (sorted(nodes), len(supporting))
        for supporting, nodes in report.restricted_classes.items()
        if len(nodes) > len(supporting)
    ]


class TimeSolver:
    """Builds and solves the time-phase formulation for one ``II``."""

    def __init__(
        self,
        dfg: DFG,
        cgra: CGRA,
        ii: int,
        config: Optional[MapperConfig] = None,
        slack: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.dfg = dfg
        self.cgra = cgra
        self.ii = ii
        self.config = config if config is not None else MapperConfig()
        self.perf = perf
        # The Mobility Schedule horizon must be long enough for the CGRA to
        # absorb all operations: if the DFG has more nodes than
        # ``num_pes * critical_path`` no packing fits the default horizon, so
        # the horizon is automatically extended up to ResII time steps.
        # An explicit ``slack`` argument (used by the mapper's horizon-retry
        # loop) overrides the configured baseline slack.
        base_slack = self.config.slack if slack is None else slack
        needed = max(0, res_ii(dfg, cgra.num_pes) - critical_path_length(dfg))
        self.slack = max(base_slack, needed)
        self.mobs: MobilitySchedule = mobility_schedule(dfg, slack=self.slack)
        self.kms = KernelMobilitySchedule(self.mobs, ii)
        self.problem = FiniteDomainProblem(
            solver_cls=self.config.solver_backend, perf=perf
        )
        self._time_vars: Dict[int, IntVar] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        with timed(self.perf, "encode_seconds"):
            self._create_variables()
            self._add_modulo_scheduling_constraints()
            if self.config.enforce_capacity:
                self._add_capacity_constraints()
            if self.config.enforce_connectivity:
                self._add_connectivity_constraints()

    def _create_variables(self) -> None:
        for node_id in self.dfg.node_ids():
            variable = self.problem.new_int(
                f"t{node_id}", self.mobs.earliest(node_id), self.mobs.latest(node_id)
            )
            self._time_vars[node_id] = variable
            # Branch on the least-mobile (most critical) nodes first, earliest
            # start time first -- the classic modulo-scheduling priority.
            mobility = self.mobs.mobility(node_id)
            self.problem.prioritize(variable, weight=2.0 / (1.0 + mobility))

    def _add_modulo_scheduling_constraints(self) -> None:
        """Sec. IV-B1: precedence for data and loop-carried dependences."""
        for edge in self.dfg.edges():
            src_var = self._time_vars[edge.src]
            dst_var = self._time_vars[edge.dst]
            latency = self.dfg.node(edge.src).latency
            if edge.kind is DependenceKind.DATA:
                self.problem.add_ge(dst_var, src_var, latency)
            else:
                # T_dst + distance * II >= T_src + latency
                self.problem.add_ge(dst_var, src_var, latency - edge.distance * self.ii)

    def _add_capacity_constraints(self) -> None:
        """Sec. IV-B2: at most ``|V_Mi|`` operations per kernel slot.

        On heterogeneous fabrics each restricted support class additionally
        admits at most as many operations per slot as it has compatible PEs.
        """
        capacity = self.cgra.num_pes
        if self.dfg.num_nodes > capacity:
            for slot in range(self.ii):
                indicators = []
                for node_id, var in self._time_vars.items():
                    literal = self.problem.mod_indicator(var, self.ii, slot)
                    indicators.append(literal)
                self.problem.at_most(indicators, capacity)
        for nodes, bound in _restricted_capacity_groups(self.dfg, self.cgra):
            for slot in range(self.ii):
                indicators = [
                    self.problem.mod_indicator(self._time_vars[n], self.ii, slot)
                    for n in nodes
                ]
                self.problem.at_most(indicators, bound)

    def _add_connectivity_constraints(self) -> None:
        """Sec. IV-B3: at most ``D_M`` neighbours of a node per slot."""
        degree = self.cgra.connectivity_degree
        for node_id, var in self._time_vars.items():
            neighbors = sorted(self.dfg.neighbor_ids(node_id))
            if len(neighbors) <= degree and not self.config.strict_connectivity:
                continue  # cannot be violated, skip the encoding
            for slot in range(self.ii):
                literals = [
                    self.problem.mod_indicator(self._time_vars[u], self.ii, slot)
                    for u in neighbors
                ]
                if self.config.strict_connectivity:
                    # the node itself occupies one of the D_M reachable PEs
                    # when it shares the slot with its neighbours
                    literals.append(self.problem.mod_indicator(var, self.ii, slot))
                if len(literals) <= degree:
                    continue
                self.problem.at_most(literals, degree)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    @property
    def num_sat_variables(self) -> int:
        return self.problem.num_sat_variables

    @property
    def num_sat_clauses(self) -> int:
        return self.problem.num_sat_clauses

    def _to_schedule(self, solution) -> Schedule:
        start_times = {
            node_id: solution.value(var) for node_id, var in self._time_vars.items()
        }
        return Schedule(dfg=self.dfg, ii=self.ii, start_times=start_times)

    def solve(self, timeout_seconds: Optional[float] = None) -> Optional[Schedule]:
        """Find one schedule; ``None`` if none exists for this II."""
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.config.time_timeout_seconds
        )
        try:
            solution = self.problem.solve(timeout_seconds=budget)
        except TimeoutError as exc:
            raise PhaseTimeoutError("time", budget) from exc
        if solution is None:
            return None
        return self._to_schedule(solution)

    def iter_schedules(
        self,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Iterator[Schedule]:
        """Enumerate distinct schedules (distinct start-time assignments)."""
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.config.time_timeout_seconds
        )
        max_solutions = (
            limit if limit is not None else self.config.max_time_solutions_per_ii
        )
        try:
            for solution in self.problem.enumerate_solutions(
                block_on=list(self._time_vars.values()),
                limit=max_solutions,
                timeout_seconds=budget,
            ):
                yield self._to_schedule(solution)
        except TimeoutError as exc:
            raise PhaseTimeoutError("time", budget) from exc


class IncrementalTimeSolver:
    """Time phase encoded once per DFG, re-solved per (II, slack) attempt.

    Where :class:`TimeSolver` rebuilds the whole CNF for every (II, slack)
    attempt, this solver keeps one persistent formula per DFG/CGRA pair:

    * time variables are created once over the widest schedule horizon the
      mapper may request, together with the II-independent constraints
      (domain channeling plus dependences with distance 0);
    * each (II, slack) attempt opens a clause scope
      (:meth:`repro.smt.csp.FiniteDomainProblem.push`) holding the
      loop-carried precedence, capacity, and connectivity clauses of that
      II and the ``T_v <= ALAP + slack`` horizon restriction; the scope is
      retracted when the next attempt begins;
    * schedule enumeration adds its blocking clauses inside the scope, so
      clauses *learnt while enumerating one II* persist across the repeated
      ``solve()`` calls -- the hot loop when the space phase rejects
      schedules -- and the blocking clauses vanish with the scope;
    * VSIDS activities and saved phases live in the underlying
      :class:`~repro.smt.sat.SATSolver` and survive every pop, warming each
      new II with the search order learnt on the previous ones.

    If the mapper requests a slack beyond the encoded horizon (a rare
    hard-instance retry), the formula is rebuilt for the larger horizon --
    deliberately, rather than encoding headroom upfront: a wider horizon
    widens every mobility window, which both inflates the domain encoding
    and activates capacity counters that narrow windows satisfy trivially,
    so headroom would tax every ordinary attempt to subsidise a rare one.

    One instance serves one sequential sweep: starting a new ``solve`` /
    ``iter_schedules`` retracts the scope of the previous one, so
    interleaving two live enumerations of different IIs is not supported
    (the mapper never does).
    """

    #: extra horizon encoded beyond the configured baseline slack; kept at
    #: zero so the steady-state formula is exactly as tight as the
    #: re-encoding path's (see the class docstring).
    HORIZON_HEADROOM = 0

    def __init__(
        self,
        dfg: DFG,
        cgra: CGRA,
        config: Optional[MapperConfig] = None,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        self.dfg = dfg
        self.cgra = cgra
        self.config = config if config is not None else MapperConfig()
        self.perf = perf
        self._needed_slack = max(
            0, res_ii(dfg, cgra.num_pes) - critical_path_length(dfg)
        )
        self._capacity_groups = _restricted_capacity_groups(dfg, cgra)
        self._rebuilds = 0
        with timed(self.perf, "encode_seconds"):
            self._encode(
                max(self.config.slack, self._needed_slack)
                + self.HORIZON_HEADROOM
            )

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def _encode(self, max_slack: int) -> None:
        """(Re)build the base formula for horizon ``critical path + max_slack``."""
        self.max_slack = max_slack
        self.mobs: MobilitySchedule = mobility_schedule(self.dfg, slack=max_slack)
        self.problem = FiniteDomainProblem(
            solver_cls=self.config.solver_backend, perf=self.perf
        )
        self._time_vars: Dict[int, IntVar] = {}
        self._base_latest: Dict[int, int] = {}
        self._scope_open = False
        for node_id in self.dfg.node_ids():
            variable = self.problem.new_int(
                f"t{node_id}", self.mobs.earliest(node_id), self.mobs.latest(node_id)
            )
            self._time_vars[node_id] = variable
            self._base_latest[node_id] = self.mobs.latest(node_id) - max_slack
            mobility = self.mobs.mobility(node_id)
            self.problem.prioritize(variable, weight=2.0 / (1.0 + mobility))
        # II-independent precedence: dependences without a loop-carried
        # distance constrain start times identically for every II.
        for edge in self.dfg.edges():
            if edge.distance == 0:
                self.problem.add_ge(
                    self._time_vars[edge.dst],
                    self._time_vars[edge.src],
                    self.dfg.node(edge.src).latency,
                )

    def effective_slack(self, slack: int) -> int:
        """The horizon extension actually applied for a requested slack."""
        return max(slack, self._needed_slack)

    def _ensure_horizon(self, eff_slack: int) -> None:
        if eff_slack > self.max_slack:
            self._rebuilds += 1
            with timed(self.perf, "encode_seconds"):
                self._encode(eff_slack + self.HORIZON_HEADROOM)

    def _begin_attempt(self, ii: int, eff_slack: int) -> None:
        """Open the clause scope of one (II, slack) attempt."""
        if self._scope_open:
            self.problem.pop()
            self._scope_open = False
        with timed(self.perf, "encode_seconds"):
            self.problem.push()
            self._scope_open = True
            for node_id, var in self._time_vars.items():
                self.problem.add_clause([
                    self.problem.le_literal(
                        var, self._base_latest[node_id] + eff_slack)
                ])
            for edge in self.dfg.edges():
                if edge.distance:
                    self.problem.add_ge(
                        self._time_vars[edge.dst],
                        self._time_vars[edge.src],
                        self.dfg.node(edge.src).latency - edge.distance * ii,
                    )
            if self.config.enforce_capacity:
                self._add_capacity(ii)
            if self.config.enforce_connectivity:
                self._add_connectivity(ii)

    def _add_capacity(self, ii: int) -> None:
        """Sec. IV-B2 plus per-support-class bounds, inside the II scope."""
        capacity = self.cgra.num_pes
        if self.dfg.num_nodes > capacity:
            for slot in range(ii):
                indicators = [
                    self.problem.mod_indicator(var, ii, slot)
                    for var in self._time_vars.values()
                ]
                self.problem.at_most(indicators, capacity)
        for nodes, bound in self._capacity_groups:
            for slot in range(ii):
                indicators = [
                    self.problem.mod_indicator(self._time_vars[n], ii, slot)
                    for n in nodes
                ]
                self.problem.at_most(indicators, bound)

    def _add_connectivity(self, ii: int) -> None:
        """Sec. IV-B3, guarded by the II selector."""
        degree = self.cgra.connectivity_degree
        for node_id, var in self._time_vars.items():
            neighbors = sorted(self.dfg.neighbor_ids(node_id))
            if len(neighbors) <= degree and not self.config.strict_connectivity:
                continue
            for slot in range(ii):
                literals = [
                    self.problem.mod_indicator(self._time_vars[u], ii, slot)
                    for u in neighbors
                ]
                if self.config.strict_connectivity:
                    literals.append(self.problem.mod_indicator(var, ii, slot))
                if len(literals) <= degree:
                    continue
                self.problem.at_most(literals, degree)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    @property
    def num_sat_variables(self) -> int:
        return self.problem.num_sat_variables

    @property
    def num_sat_clauses(self) -> int:
        return self.problem.num_sat_clauses

    def _prepare(self, ii: int, slack: int) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        eff = self.effective_slack(slack)
        self._ensure_horizon(eff)
        self._begin_attempt(ii, eff)

    def _to_schedule(self, ii: int, solution) -> Schedule:
        start_times = {
            node_id: solution.value(var)
            for node_id, var in self._time_vars.items()
        }
        return Schedule(dfg=self.dfg, ii=ii, start_times=start_times)

    def solve(
        self,
        ii: int,
        slack: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Optional[Schedule]:
        """Find one schedule for ``(ii, slack)``; ``None`` if none exists."""
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.config.time_timeout_seconds
        )
        self._prepare(ii, self.config.slack if slack is None else slack)
        try:
            solution = self.problem.solve(timeout_seconds=budget)
        except TimeoutError as exc:
            raise PhaseTimeoutError("time", budget) from exc
        if solution is None:
            return None
        return self._to_schedule(ii, solution)

    def iter_schedules(
        self,
        ii: int,
        slack: Optional[int] = None,
        limit: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Iterator[Schedule]:
        """Enumerate distinct schedules for ``(ii, slack)``.

        Blocking clauses live inside the attempt's clause scope, so they
        are retracted when the next ``solve``/``iter_schedules`` call opens
        its own scope -- later enumerations of the same II see the full
        solution space again, while clauses learnt *during* this
        enumeration keep accelerating its successive solves.
        """
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.config.time_timeout_seconds
        )
        max_solutions = (
            limit if limit is not None else self.config.max_time_solutions_per_ii
        )
        self._prepare(ii, self.config.slack if slack is None else slack)
        try:
            for solution in self.problem.enumerate_solutions(
                block_on=list(self._time_vars.values()),
                limit=max_solutions,
                timeout_seconds=budget,
            ):
                yield self._to_schedule(ii, solution)
        except TimeoutError as exc:
            raise PhaseTimeoutError("time", budget) from exc
