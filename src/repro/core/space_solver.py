"""Space phase: place the scheduled DFG onto the CGRA via monomorphism.

Given a time solution, every DFG node carries a kernel-slot label and the
placement problem becomes: find an injective, label- and edge-preserving map
from the labelled DFG into the MRRG (paper Sec. IV-C). The MRRG is exposed to
the generic monomorphism search through :class:`MRRGTarget`, which computes
candidates and adjacency on the fly (no explicit graph is built even for
20x20 CGRAs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional

from repro.arch.cgra import CGRA
from repro.arch.mrrg import MRRG, TimeAdjacency
from repro.arch.topology import Topology
from repro.core.config import MapperConfig
from repro.core.time_solver import Schedule
from repro.matching.monomorphism import (
    MonomorphismSearch,
    PatternGraph,
    SearchStats,
)


class MRRGTarget:
    """Adapter exposing an :class:`~repro.arch.mrrg.MRRG` to the matcher."""

    def __init__(self, mrrg: MRRG, pin_first_placement: bool = True) -> None:
        self.mrrg = mrrg
        self.pin_first_placement = pin_first_placement

    # -- TargetGraph protocol ------------------------------------------- #
    def candidates(self, label: Hashable) -> Iterable[int]:
        return self.mrrg.vertices_with_label(int(label))

    def seed_candidates(self, label: Hashable) -> Iterable[int]:
        """Candidates for the first placed node.

        A torus CGRA is vertex-transitive inside a time step, so the first
        node can be pinned to PE 0 of its slot without losing completeness;
        on other topologies all PEs are returned.
        """
        if self.pin_first_placement and self.mrrg.cgra.topology is Topology.TORUS:
            return [self.mrrg.vertex(0, int(label))]
        return self.candidates(label)

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.mrrg.has_edge(a, b)

    def neighbors_with_label(self, vertex: int, label: Hashable) -> Iterable[int]:
        slot = int(label)
        mrrg = self.mrrg
        if mrrg.time_adjacency is TimeAdjacency.CONSECUTIVE:
            diff = (mrrg.slot_of(vertex) - slot) % mrrg.ii
            if diff not in (0, 1, mrrg.ii - 1):
                return []
        base = slot * mrrg.cgra.num_pes
        pe = mrrg.pe_of(vertex)
        return [
            base + other_pe
            for other_pe in mrrg.cgra.neighbors_or_self(pe)
            if base + other_pe != vertex
        ]


@dataclass
class SpaceResult:
    """Outcome of the space phase for one schedule."""

    placement: Optional[Dict[int, int]]  # node -> PE index
    mrrg_assignment: Optional[Dict[int, int]]  # node -> MRRG vertex
    stats: SearchStats = field(default_factory=SearchStats)
    elapsed_seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.placement is not None

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def build_pattern(schedule: Schedule) -> PatternGraph:
    """The slot-labelled undirected DFG the monomorphism search runs on."""
    labels = {node_id: schedule.slot(node_id) for node_id in schedule.start_times}
    edges = schedule.dfg.undirected_edges()
    return PatternGraph.from_edges(labels, edges)


class SpaceSolver:
    """Runs the monomorphism search for one schedule."""

    def __init__(self, cgra: CGRA, config: Optional[MapperConfig] = None) -> None:
        self.cgra = cgra
        self.config = config if config is not None else MapperConfig()

    def build_mrrg(self, ii: int) -> MRRG:
        return MRRG(self.cgra, ii, time_adjacency=self.config.time_adjacency)

    def solve(
        self,
        schedule: Schedule,
        timeout_seconds: Optional[float] = None,
    ) -> SpaceResult:
        """Attempt to place ``schedule``; never raises on plain failure."""
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.config.space_timeout_seconds
        )
        start = time.monotonic()
        mrrg = self.build_mrrg(schedule.ii)
        target = MRRGTarget(mrrg, pin_first_placement=self.config.pin_first_placement)
        pattern = build_pattern(schedule)
        search = MonomorphismSearch(pattern, target, timeout_seconds=budget)
        outcome = search.search()
        elapsed = time.monotonic() - start
        if outcome.mapping is None:
            return SpaceResult(
                placement=None,
                mrrg_assignment=None,
                stats=outcome.stats,
                elapsed_seconds=elapsed,
            )
        placement = {
            node: mrrg.pe_of(vertex) for node, vertex in outcome.mapping.items()
        }
        return SpaceResult(
            placement=placement,
            mrrg_assignment=dict(outcome.mapping),
            stats=outcome.stats,
            elapsed_seconds=elapsed,
        )
