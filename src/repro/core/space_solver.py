"""Space phase: place the scheduled DFG onto the CGRA via monomorphism.

Given a time solution, every DFG node carries a kernel-slot label and the
placement problem becomes: find an injective, label- and edge-preserving map
from the labelled DFG into the MRRG (paper Sec. IV-C). The MRRG is exposed to
the generic monomorphism search through :class:`MRRGTarget`, which computes
candidates and adjacency on the fly (no explicit graph is built even for
20x20 CGRAs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional

from repro.arch.cgra import CGRA
from repro.arch.mrrg import MRRG, TimeAdjacency
from repro.arch.topology import Topology
from repro.core.config import MapperConfig
from repro.core.time_solver import Schedule
from repro.matching.monomorphism import (
    MonomorphismSearch,
    PatternGraph,
    SearchStats,
)


class MRRGTarget:
    """Adapter exposing an :class:`~repro.arch.mrrg.MRRG` to the matcher.

    Pattern labels are ``(slot, opcode)`` pairs (see :func:`build_pattern`):
    the slot half carries the paper's ``l_G``/``l_M`` label-preservation
    property, the opcode half restricts candidates to op-compatible MRRG
    vertices on heterogeneous fabrics. On a homogeneous array every PE is
    compatible and the opcode half is inert.
    """

    def __init__(self, mrrg: MRRG, pin_first_placement: bool = True) -> None:
        self.mrrg = mrrg
        self.pin_first_placement = pin_first_placement
        self._homogeneous = mrrg.cgra.is_homogeneous

    @staticmethod
    def _split(label: Hashable):
        """Split a ``(slot, opcode)`` label; plain slot labels still work."""
        if isinstance(label, tuple):
            return int(label[0]), label[1]
        return int(label), None

    # -- TargetGraph protocol ------------------------------------------- #
    def candidates(self, label: Hashable) -> Iterable[int]:
        slot, opcode = self._split(label)
        if self._homogeneous or opcode is None:
            return self.mrrg.vertices_with_label(slot)
        return self.mrrg.compatible_vertices(slot, opcode)

    def seed_candidates(self, label: Hashable) -> Iterable[int]:
        """Candidates for the first placed node.

        A *homogeneous* torus CGRA is vertex-transitive inside a time step,
        so the first node can be pinned to PE 0 of its slot without losing
        completeness. Heterogeneity breaks the symmetry (translating a
        mapping can move some op onto a PE that does not support it), so
        the pin only applies to homogeneous tori.
        """
        if (
            self.pin_first_placement
            and self._homogeneous
            and self.mrrg.cgra.topology is Topology.TORUS
        ):
            slot, _opcode = self._split(label)
            return [self.mrrg.vertex(0, slot)]
        return self.candidates(label)

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.mrrg.has_edge(a, b)

    def neighbors_with_label(self, vertex: int, label: Hashable) -> Iterable[int]:
        slot, opcode = self._split(label)
        mrrg = self.mrrg
        if mrrg.time_adjacency is TimeAdjacency.CONSECUTIVE:
            diff = (mrrg.slot_of(vertex) - slot) % mrrg.ii
            if diff not in (0, 1, mrrg.ii - 1):
                return []
        base = slot * mrrg.cgra.num_pes
        pe = mrrg.pe_of(vertex)
        reachable = mrrg.cgra.neighbors_or_self(pe)
        if not self._homogeneous and opcode is not None:
            reachable = reachable & mrrg.cgra.supporting_pes(opcode)
        return [
            base + other_pe
            for other_pe in reachable
            if base + other_pe != vertex
        ]


@dataclass
class SpaceResult:
    """Outcome of the space phase for one schedule."""

    placement: Optional[Dict[int, int]]  # node -> PE index
    mrrg_assignment: Optional[Dict[int, int]]  # node -> MRRG vertex
    stats: SearchStats = field(default_factory=SearchStats)
    elapsed_seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.placement is not None

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


def build_pattern(schedule: Schedule) -> PatternGraph:
    """The labelled undirected DFG the monomorphism search runs on.

    Each node is labelled ``(kernel slot, opcode)``: the slot drives the
    paper's label-preservation property, the opcode lets
    :class:`MRRGTarget` restrict candidates to op-compatible PEs on
    heterogeneous fabrics.
    """
    labels = {
        node_id: (schedule.slot(node_id), schedule.dfg.node(node_id).opcode)
        for node_id in schedule.start_times
    }
    edges = schedule.dfg.undirected_edges()
    return PatternGraph.from_edges(labels, edges)


class SpaceSolver:
    """Runs the monomorphism search for one schedule."""

    def __init__(self, cgra: CGRA, config: Optional[MapperConfig] = None) -> None:
        self.cgra = cgra
        self.config = config if config is not None else MapperConfig()

    def build_mrrg(self, ii: int) -> MRRG:
        return MRRG(self.cgra, ii, time_adjacency=self.config.time_adjacency)

    def solve(
        self,
        schedule: Schedule,
        timeout_seconds: Optional[float] = None,
    ) -> SpaceResult:
        """Attempt to place ``schedule``; never raises on plain failure."""
        budget = (
            timeout_seconds
            if timeout_seconds is not None
            else self.config.space_timeout_seconds
        )
        start = time.monotonic()
        mrrg = self.build_mrrg(schedule.ii)
        target = MRRGTarget(mrrg, pin_first_placement=self.config.pin_first_placement)
        pattern = build_pattern(schedule)
        search = MonomorphismSearch(pattern, target, timeout_seconds=budget)
        outcome = search.search()
        elapsed = time.monotonic() - start
        if outcome.mapping is None:
            return SpaceResult(
                placement=None,
                mrrg_assignment=None,
                stats=outcome.stats,
                elapsed_seconds=elapsed,
            )
        placement = {
            node: mrrg.pe_of(vertex) for node, vertex in outcome.mapping.items()
        }
        return SpaceResult(
            placement=placement,
            mrrg_assignment=dict(outcome.mapping),
            stats=outcome.stats,
            elapsed_seconds=elapsed,
        )
