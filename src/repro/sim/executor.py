"""Cycle-level execution of a mapping (software-pipelined loop).

The executor advances cycle by cycle. At absolute cycle ``c`` the operation
of node ``v`` for loop iteration ``k`` executes iff ``c == k * II + T_v``;
in steady state this is exactly the kernel of the modulo schedule, while the
first ``(stages - 1) * II`` cycles form the prologue and the last ones the
epilogue (paper Fig. 2b). During execution the model checks the properties
that make the mapping *physically* runnable:

* one operation per PE per cycle,
* every operation runs on a PE whose ALU implements its opcode (bites on
  heterogeneous fabrics),
* operands read only from the register file of the producing PE, which must
  be the consumer's own PE or one of its neighbours,
* the value read is the one of the expected iteration (rotating registers,
  see :class:`repro.sim.program.ConfigurationMemory`),
* loads/stores go through the shared data memory.

The produced values are compared against the sequential reference
(:mod:`repro.sim.reference`); a mismatch is reported as a
:class:`~repro.sim.machine.SimulationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.mapping import Mapping
from repro.sim.machine import CGRAMachine, DataMemory, SimulationError
from repro.sim.program import ConfigurationMemory, KernelInstruction
from repro.sim.reference import ReferenceInterpreter, ReferenceTrace, evaluate_node


@dataclass
class ExecutionTrace:
    """Result of executing a mapping for ``iterations`` loop iterations."""

    values: Dict[Tuple[int, int], int] = field(default_factory=dict)
    memory: Optional[DataMemory] = None
    iterations: int = 0
    cycles: int = 0
    prologue_cycles: int = 0
    epilogue_cycles: int = 0

    def value(self, node_id: int, iteration: int) -> int:
        return self.values[(node_id, iteration)]

    def last_value(self, node_id: int) -> int:
        return self.values[(node_id, self.iterations - 1)]


class MappedLoopExecutor:
    """Executes a :class:`~repro.core.mapping.Mapping` cycle by cycle."""

    def __init__(
        self,
        mapping: Mapping,
        memory: Optional[DataMemory] = None,
        initial_values: Optional[Dict[int, int]] = None,
        inputs: Optional[Dict[str, int]] = None,
        loop_start: int = 0,
        enforce_register_capacity: bool = False,
    ) -> None:
        self.mapping = mapping
        self.configuration = ConfigurationMemory(mapping)
        self.memory = memory if memory is not None else DataMemory()
        self.initial_values = dict(initial_values or {})
        self.inputs = dict(inputs or {})
        self.loop_start = loop_start
        self.machine = CGRAMachine(
            mapping.cgra,
            self.memory,
            enforce_register_capacity=enforce_register_capacity,
        )
        self._check_op_support()
        self._declare_missing_arrays()

    def _check_op_support(self) -> None:
        for node in self.mapping.dfg.nodes():
            pe_index = self.mapping.pe(node.id)
            if not self.mapping.cgra.pe(pe_index).supports(node.opcode):
                raise SimulationError(
                    f"node {node.id} ({node.opcode}) is mapped to PE "
                    f"{pe_index}, which does not implement that opcode"
                )

    def _declare_missing_arrays(self) -> None:
        for node in self.mapping.dfg.nodes():
            if node.array and not self.memory.has_array(node.array):
                self.memory.declare(node.array, 64)

    # ------------------------------------------------------------------ #
    def _initial_operand(self, src: int) -> int:
        if src in self.initial_values:
            return self.initial_values[src]
        value = self.mapping.dfg.node(src).value
        return int(value) if value is not None else 0

    def _read_operands(
        self,
        instruction: KernelInstruction,
        iteration: int,
        cycle: int,
    ) -> List[int]:
        operands: List[int] = []
        for source in instruction.operands:
            source_iteration = iteration - source.distance
            if source_iteration < 0:
                operands.append(self._initial_operand(source.producer_node))
                continue
            producer = self.configuration.instruction(source.producer_node)
            produced_cycle = source_iteration * self.mapping.ii + producer.start_time
            if produced_cycle >= cycle:
                raise SimulationError(
                    f"node {instruction.node} (iteration {iteration}) reads the "
                    f"value of node {source.producer_node} before it is produced "
                    f"(cycle {cycle} vs {produced_cycle})"
                )
            copy = source_iteration % producer.rotating_copies
            operands.append(
                self.machine.read(
                    reader_pe=instruction.pe,
                    producer_pe=source.producer_pe,
                    node=source.producer_node,
                    copy=copy,
                    iteration=source_iteration,
                )
            )
        return operands

    def run(self, iterations: int) -> ExecutionTrace:
        """Execute ``iterations`` loop iterations on the CGRA model."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        mapping = self.mapping
        ii = mapping.ii
        total_cycles = mapping.total_cycles(iterations)
        trace = ExecutionTrace(
            memory=self.memory,
            iterations=iterations,
            cycles=total_cycles,
            prologue_cycles=mapping.prologue_cycles(),
            epilogue_cycles=mapping.epilogue_cycles(),
        )

        # For every cycle, collect (instruction, iteration) pairs due to fire.
        for cycle in range(total_cycles):
            busy_pes: Dict[int, int] = {}
            for instruction in self.configuration.instructions.values():
                offset = cycle - instruction.start_time
                if offset < 0 or offset % ii != 0:
                    continue
                iteration = offset // ii
                if iteration >= iterations:
                    continue
                if instruction.pe in busy_pes:
                    raise SimulationError(
                        f"PE {instruction.pe} is asked to execute nodes "
                        f"{busy_pes[instruction.pe]} and {instruction.node} "
                        f"in the same cycle {cycle}"
                    )
                busy_pes[instruction.pe] = instruction.node
                operands = self._read_operands(instruction, iteration, cycle)
                node = mapping.dfg.node(instruction.node)
                value = evaluate_node(
                    node,
                    operands,
                    iteration,
                    self.memory,
                    loop_start=self.loop_start,
                    inputs=self.inputs,
                )
                copy = iteration % instruction.rotating_copies
                self.machine.write(
                    pe=instruction.pe,
                    node=instruction.node,
                    copy=copy,
                    iteration=iteration,
                    value=value,
                )
                trace.values[(instruction.node, iteration)] = value
        return trace


def run_and_compare(
    mapping: Mapping,
    iterations: int = 8,
    memory: Optional[DataMemory] = None,
    initial_values: Optional[Dict[int, int]] = None,
    inputs: Optional[Dict[str, int]] = None,
    loop_start: int = 0,
) -> Tuple[ExecutionTrace, ReferenceTrace]:
    """Execute a mapping and its reference; raise on any value mismatch.

    Both executions start from identical copies of the data memory. Every
    (node, iteration) value and the final contents of every array must agree.
    """
    base_memory = memory if memory is not None else DataMemory()
    mapped_memory = base_memory.copy()
    reference_memory = base_memory.copy()

    executor = MappedLoopExecutor(
        mapping,
        memory=mapped_memory,
        initial_values=initial_values,
        inputs=inputs,
        loop_start=loop_start,
    )
    mapped_trace = executor.run(iterations)

    reference = ReferenceInterpreter(
        mapping.dfg,
        memory=reference_memory,
        initial_values=initial_values,
        inputs=inputs,
        loop_start=loop_start,
    )
    reference_trace = reference.run(iterations)

    for key, expected in reference_trace.values.items():
        actual = mapped_trace.values.get(key)
        if actual != expected:
            node_id, iteration = key
            raise SimulationError(
                f"value mismatch for node {node_id}, iteration {iteration}: "
                f"mapped execution produced {actual}, reference {expected}"
            )
    mapped_arrays = executor.memory.arrays()
    for name, expected_values in reference.memory.arrays().items():
        if mapped_arrays.get(name) != expected_values:
            raise SimulationError(f"final contents of array {name!r} differ")
    return mapped_trace, reference_trace
