"""Dynamic machine state for the CGRA simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.arch.cgra import CGRA


class SimulationError(RuntimeError):
    """Raised when a mapping misbehaves during cycle-level execution."""


class DataMemory:
    """The shared data memory all PEs can load from / store to.

    Arrays are named regions of integers. Out-of-range addresses wrap around
    (the generated workloads index within bounds; wrapping keeps synthetic
    address arithmetic well-defined on both the reference and the mapped
    execution, so the comparison stays meaningful).
    """

    def __init__(self, arrays: Optional[Dict[str, List[int]]] = None) -> None:
        self._arrays: Dict[str, List[int]] = {}
        if arrays:
            for name, values in arrays.items():
                self.declare(name, len(values), list(values))

    def declare(self, name: str, size: int,
                initial: Optional[Iterable[int]] = None) -> None:
        if size < 1:
            raise ValueError("array size must be positive")
        values = list(initial) if initial is not None else [0] * size
        if len(values) != size:
            raise ValueError(f"array {name!r}: initial data does not match size")
        self._arrays[name] = values

    def has_array(self, name: str) -> bool:
        return name in self._arrays

    def load(self, name: str, address: int) -> int:
        if name not in self._arrays:
            raise SimulationError(f"load from undeclared array {name!r}")
        values = self._arrays[name]
        return values[address % len(values)]

    def store(self, name: str, address: int, value: int) -> None:
        if name not in self._arrays:
            raise SimulationError(f"store to undeclared array {name!r}")
        values = self._arrays[name]
        values[address % len(values)] = value

    def dump(self, name: str) -> List[int]:
        return list(self._arrays[name])

    def arrays(self) -> Dict[str, List[int]]:
        return {name: list(values) for name, values in self._arrays.items()}

    def copy(self) -> "DataMemory":
        return DataMemory(self.arrays())


@dataclass
class _RegisterEntry:
    iteration: int
    value: int


class CGRAMachine:
    """Register-file state of every PE during mapped execution.

    Values are stored per (producer node, rotating copy); each entry is
    tagged with the producing iteration so that reads detect values that
    were overwritten too early (a register-rotation violation).
    """

    def __init__(self, cgra: CGRA, memory: DataMemory,
                 enforce_register_capacity: bool = False) -> None:
        self.cgra = cgra
        self.memory = memory
        self.enforce_register_capacity = enforce_register_capacity
        self._registers: List[Dict[Tuple[int, int], _RegisterEntry]] = [
            {} for _ in range(cgra.num_pes)
        ]

    def write(self, pe: int, node: int, copy: int, iteration: int, value: int) -> None:
        bank = self._registers[pe]
        key = (node, copy)
        if (
            self.enforce_register_capacity
            and key not in bank
            and len(bank) >= self.cgra.pe(pe).register_file_size
        ):
            raise SimulationError(
                f"register file of PE {pe} overflows "
                f"({self.cgra.pe(pe).register_file_size} registers)"
            )
        bank[key] = _RegisterEntry(iteration=iteration, value=value)

    def read(self, reader_pe: int, producer_pe: int, node: int, copy: int,
             iteration: int) -> int:
        if not self.cgra.adjacent_or_self(reader_pe, producer_pe):
            raise SimulationError(
                f"PE {reader_pe} cannot read the register file of PE "
                f"{producer_pe}: the PEs are not connected"
            )
        bank = self._registers[producer_pe]
        entry = bank.get((node, copy))
        if entry is None:
            raise SimulationError(
                f"value of node {node} (iteration {iteration}) was never "
                f"written to PE {producer_pe}"
            )
        if entry.iteration != iteration:
            raise SimulationError(
                f"value of node {node} for iteration {iteration} was "
                f"overwritten (register holds iteration {entry.iteration}): "
                "rotating-register allocation is insufficient"
            )
        return entry.value

    def live_registers(self, pe: int) -> int:
        return len(self._registers[pe])
