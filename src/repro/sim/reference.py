"""Sequential reference interpretation of a DFG.

Executes the loop one iteration at a time, nodes in (data-)topological
order; loop-carried operands read the value produced ``distance`` iterations
earlier (or the declared initial value for the first iterations). The mapped
execution of :mod:`repro.sim.executor` must produce exactly the same values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.arch.isa import Opcode, arity as opcode_arity, evaluate as evaluate_alu
from repro.graphs.dfg import DFG, DFGNode
from repro.sim.machine import DataMemory, SimulationError


@dataclass
class ReferenceTrace:
    """Per-iteration node values plus the final memory state."""

    values: Dict[Tuple[int, int], int] = field(default_factory=dict)
    memory: Optional[DataMemory] = None
    iterations: int = 0

    def value(self, node_id: int, iteration: int) -> int:
        return self.values[(node_id, iteration)]

    def last_value(self, node_id: int) -> int:
        if self.iterations == 0:
            raise ValueError("no iterations were executed")
        return self.values[(node_id, self.iterations - 1)]


def evaluate_node(
    node: DFGNode,
    operand_values: List[int],
    iteration: int,
    memory: DataMemory,
    loop_start: int = 0,
    inputs: Optional[Dict[str, int]] = None,
) -> int:
    """Shared node semantics used by both the reference and the executor."""
    opcode = node.opcode
    if opcode is Opcode.CONST:
        return int(node.value or 0)
    if opcode is Opcode.INPUT:
        if inputs and node.name in inputs:
            return int(inputs[node.name])
        return int(node.value or 0)
    if opcode is Opcode.INDUCTION:
        return loop_start + iteration
    if opcode in (Opcode.PHI, Opcode.ROUTE, Opcode.OUTPUT):
        return operand_values[0] if operand_values else int(node.value or 0)
    if opcode is Opcode.NOP:
        return 0
    if opcode is Opcode.LOAD:
        if node.array is None:
            raise SimulationError(f"load node {node.id} has no array")
        return memory.load(node.array, operand_values[0])
    if opcode is Opcode.STORE:
        if node.array is None:
            raise SimulationError(f"store node {node.id} has no array")
        memory.store(node.array, operand_values[0], operand_values[1])
        return operand_values[1]
    return evaluate_alu(opcode, operand_values[: opcode_arity(opcode)])


class ReferenceInterpreter:
    """Executes a DFG sequentially for a given number of iterations."""

    def __init__(
        self,
        dfg: DFG,
        memory: Optional[DataMemory] = None,
        initial_values: Optional[Dict[int, int]] = None,
        inputs: Optional[Dict[str, int]] = None,
        loop_start: int = 0,
    ) -> None:
        self.dfg = dfg
        self.memory = memory if memory is not None else DataMemory()
        self.initial_values = dict(initial_values or {})
        self.inputs = dict(inputs or {})
        self.loop_start = loop_start
        self._order = list(nx.topological_sort(dfg.data_dag()))
        self._declare_missing_arrays()

    def _declare_missing_arrays(self) -> None:
        """Give every memory node an array to talk to (default size 64)."""
        for node in self.dfg.nodes():
            if node.array and not self.memory.has_array(node.array):
                self.memory.declare(node.array, 64)

    def _initial_operand(self, src: int) -> int:
        if src in self.initial_values:
            return self.initial_values[src]
        value = self.dfg.node(src).value
        return int(value) if value is not None else 0

    def run(self, iterations: int) -> ReferenceTrace:
        """Execute ``iterations`` loop iterations and return the trace."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        trace = ReferenceTrace(memory=self.memory, iterations=iterations)
        values = trace.values
        for iteration in range(iterations):
            for node_id in self._order:
                node = self.dfg.node(node_id)
                operand_values: List[int] = []
                for edge in self.dfg.operands(node_id):
                    if edge.operand_index >= opcode_arity(node.opcode):
                        continue  # memory-ordering edge
                    source_iteration = iteration - edge.distance
                    if source_iteration < 0:
                        operand_values.append(self._initial_operand(edge.src))
                    else:
                        operand_values.append(values[(edge.src, source_iteration)])
                values[(node_id, iteration)] = evaluate_node(
                    node,
                    operand_values,
                    iteration,
                    self.memory,
                    loop_start=self.loop_start,
                    inputs=self.inputs,
                )
        return trace
