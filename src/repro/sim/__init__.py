"""Cycle-level CGRA execution and reference interpretation.

The paper validates mappings structurally (the monomorphism properties).
This package goes one step further and validates them *functionally*: a
mapping is executed on a cycle-level model of the CGRA (PEs with register
files readable by their neighbours, a shared data memory, the
modulo-scheduled overlap of loop iterations) and the produced values are
compared against a sequential reference interpretation of the DFG.

* :mod:`repro.sim.machine` -- dynamic machine state (register files, memory).
* :mod:`repro.sim.program` -- the per-PE kernel configuration derived from a
  mapping (what the CGRA's instruction memory would hold).
* :mod:`repro.sim.reference` -- sequential, iteration-by-iteration reference
  interpreter of a DFG.
* :mod:`repro.sim.executor` -- software-pipelined execution of a mapping,
  with runtime checks of adjacency, timing and register rotation.
"""

from repro.sim.machine import CGRAMachine, DataMemory, SimulationError
from repro.sim.program import ConfigurationMemory, KernelInstruction
from repro.sim.reference import ReferenceInterpreter, ReferenceTrace
from repro.sim.executor import MappedLoopExecutor, ExecutionTrace, run_and_compare

__all__ = [
    "CGRAMachine",
    "DataMemory",
    "SimulationError",
    "ConfigurationMemory",
    "KernelInstruction",
    "ReferenceInterpreter",
    "ReferenceTrace",
    "MappedLoopExecutor",
    "ExecutionTrace",
    "run_and_compare",
]
