"""Kernel configuration derived from a mapping.

A CGRA executes a modulo-scheduled loop by cycling through ``II``
configuration words; each word tells every PE which operation to perform and
where its operands live. :class:`ConfigurationMemory` reconstructs that view
from a :class:`~repro.core.mapping.Mapping` -- it is what the instruction
memory of Fig. 1 would contain -- and is what the cycle-level executor runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.isa import Opcode, arity as opcode_arity
from repro.core.mapping import Mapping


@dataclass(frozen=True)
class OperandSource:
    """Where one operand of a kernel instruction comes from."""

    producer_node: int
    producer_pe: int
    distance: int          # iteration distance of the dependence
    operand_index: int


@dataclass(frozen=True)
class KernelInstruction:
    """One operation of the kernel configuration."""

    node: int
    opcode: Opcode
    pe: int
    slot: int
    stage: int             # pipeline stage (start time div II)
    start_time: int        # absolute start time within the schedule
    operands: Tuple[OperandSource, ...]
    array: Optional[str] = None
    rotating_copies: int = 1

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)


class ConfigurationMemory:
    """The per-slot, per-PE instruction table of a mapped kernel."""

    def __init__(self, mapping: Mapping) -> None:
        self.mapping = mapping
        self.instructions: Dict[int, KernelInstruction] = {}
        self._by_slot_pe: Dict[Tuple[int, int], KernelInstruction] = {}
        self._build()

    def _rotating_copies(self, node_id: int) -> int:
        """Number of rotating registers the producer's value needs.

        A value produced in iteration ``k`` must survive until its last
        consumer in iteration ``k + d`` reads it; with one new value produced
        every ``II`` cycles that lifetime spans ``ceil(lifetime / II)``
        kernel iterations, plus the copy being written.
        """
        mapping = self.mapping
        produced = mapping.time(node_id)
        last_use = produced
        for edge in mapping.dfg.out_edges(node_id):
            use = mapping.time(edge.dst) + edge.distance * mapping.ii
            last_use = max(last_use, use)
        lifetime = last_use - produced
        return lifetime // mapping.ii + 1

    def _build(self) -> None:
        mapping = self.mapping
        dfg = mapping.dfg
        for node in dfg.nodes():
            operands: List[OperandSource] = []
            for edge in dfg.operands(node.id):
                if edge.operand_index >= opcode_arity(node.opcode):
                    continue  # memory-ordering edges carry no value
                operands.append(
                    OperandSource(
                        producer_node=edge.src,
                        producer_pe=mapping.pe(edge.src),
                        distance=edge.distance,
                        operand_index=edge.operand_index,
                    )
                )
            instruction = KernelInstruction(
                node=node.id,
                opcode=node.opcode,
                pe=mapping.pe(node.id),
                slot=mapping.slot(node.id),
                stage=mapping.stage(node.id),
                start_time=mapping.time(node.id),
                operands=tuple(sorted(operands, key=lambda o: o.operand_index)),
                array=node.array,
                rotating_copies=self._rotating_copies(node.id),
            )
            self.instructions[node.id] = instruction
            self._by_slot_pe[(instruction.slot, instruction.pe)] = instruction

    # ------------------------------------------------------------------ #
    def instruction(self, node_id: int) -> KernelInstruction:
        return self.instructions[node_id]

    def at(self, slot: int, pe: int) -> Optional[KernelInstruction]:
        """Instruction executed by ``pe`` at kernel slot ``slot`` (or None)."""
        return self._by_slot_pe.get((slot, pe))

    def slot_table(self) -> List[List[Optional[KernelInstruction]]]:
        """``II x num_pes`` configuration table."""
        table: List[List[Optional[KernelInstruction]]] = [
            [None] * self.mapping.cgra.num_pes for _ in range(self.mapping.ii)
        ]
        for instruction in self.instructions.values():
            table[instruction.slot][instruction.pe] = instruction
        return table

    def max_rotating_copies(self) -> int:
        return max(i.rotating_copies for i in self.instructions.values())

    def __len__(self) -> int:
        return len(self.instructions)
