"""Rendering helpers for experiment tables and figures (ASCII + CSV)."""

from repro.reporting.tables import Table, format_seconds, format_ratio
from repro.reporting.figures import Series, render_line_chart, series_to_csv

__all__ = [
    "Table",
    "format_seconds",
    "format_ratio",
    "Series",
    "render_line_chart",
    "series_to_csv",
]
