"""ASCII figure rendering (for the paper's Fig. 5 style plots)."""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class Series:
    """One line of a figure."""

    label: str
    xs: List[str] = field(default_factory=list)
    ys: List[Optional[float]] = field(default_factory=list)

    def add(self, x: str, y: Optional[float]) -> None:
        self.xs.append(x)
        self.ys.append(y)


def _transform(value: float, log_scale: bool) -> float:
    if log_scale:
        return math.log10(max(value, 1e-6))
    return value


def render_line_chart(
    series_list: Sequence[Series],
    width: int = 60,
    height: int = 16,
    log_scale: bool = True,
    title: str = "",
    y_label: str = "seconds",
) -> str:
    """Render series as an ASCII chart (x = categories, y = values).

    Missing values (``None``, e.g. timeouts) are skipped. A logarithmic y
    axis is used by default since compilation times span several orders of
    magnitude (as in the paper's Fig. 5).
    """
    points = [
        _transform(y, log_scale)
        for series in series_list
        for y in series.ys
        if y is not None
    ]
    if not points:
        return "(no data)"
    lo, hi = min(points), max(points)
    if math.isclose(lo, hi):
        hi = lo + 1.0
    categories = series_list[0].xs
    column_width = max(6, width // max(1, len(categories)))

    grid = [[" "] * (column_width * len(categories)) for _ in range(height)]
    markers = "ox+*#@"
    for series_index, series in enumerate(series_list):
        marker = markers[series_index % len(markers)]
        for category_index, y in enumerate(series.ys):
            if y is None:
                continue
            norm = (_transform(y, log_scale) - lo) / (hi - lo)
            row = height - 1 - int(round(norm * (height - 1)))
            col = category_index * column_width + column_width // 2
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top = 10 ** hi if log_scale else hi
    bottom = 10 ** lo if log_scale else lo
    lines.append(f"{y_label} (top={top:.3g}, bottom={bottom:.3g}"
                 f"{', log scale' if log_scale else ''})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * (column_width * len(categories)))
    axis = "".join(c.center(column_width) for c in categories)
    lines.append(" " + axis)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {series.label}"
        for i, series in enumerate(series_list)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def series_to_csv(series_list: Sequence[Series],
                  path: Optional[str] = None) -> str:
    """Serialise series as CSV (one row per x value, one column per series)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    categories = series_list[0].xs if series_list else []
    writer.writerow(["x"] + [s.label for s in series_list])
    for index, category in enumerate(categories):
        row: List[object] = [category]
        for series in series_list:
            value = series.ys[index] if index < len(series.ys) else None
            row.append("" if value is None else value)
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text
