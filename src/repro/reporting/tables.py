"""Plain-text and CSV table rendering used by the experiment drivers."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_seconds(value: Optional[float]) -> str:
    """Format a compilation time the way the paper's Table III does."""
    if value is None:
        return "TO"
    if value < 0.005:
        return "~0.01"
    return f"{value:.2f}"


def format_ratio(value: Optional[float]) -> str:
    """Format a compilation-time ratio (CTR column)."""
    if value is None:
        return "-"
    return f"{value:.2f}"


def _to_text(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


@dataclass
class Table:
    """A simple column-aligned table."""

    headers: Sequence[str]
    title: str = ""
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render as aligned ASCII text."""
        text_rows = [[_to_text(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in text_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in text_rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Serialise as CSV text, optionally writing it to ``path``."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(["" if c is None else c for c in row])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def column(self, name: str) -> List[Cell]:
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
