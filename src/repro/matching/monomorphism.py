"""VF2-style subgraph monomorphism search.

The searched function ``f`` must satisfy the paper's three properties:

* **mono1** -- ``f`` is injective (one operation per PE per time step),
* **mono2** -- labels are preserved (``l_G(v) == l_M(f(v))``),
* **mono3** -- every pattern edge maps onto a target edge.

The search is generic over the target graph: it only needs, per label, the
candidate target vertices, and an adjacency oracle. The MRRG adapter in
:mod:`repro.core.space_solver` provides both implicitly, so even a 20x20 CGRA
with II = 16 (6400 target vertices) is handled without materialising the
target graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Protocol, Sequence, Set

from repro.matching.ordering import most_constrained_first_order


class TargetGraph(Protocol):
    """Adjacency/candidate oracle the search runs against."""

    def candidates(self, label: Hashable) -> Iterable[int]:
        """All target vertices carrying ``label``."""
        ...

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether two distinct target vertices are connected."""
        ...

    def neighbors_with_label(self, vertex: int, label: Hashable) -> Iterable[int]:
        """Target neighbours of ``vertex`` carrying ``label``."""
        ...

    def seed_candidates(self, label: Hashable) -> Iterable[int]:
        """Candidates for the very first placed vertex.

        Targets with symmetries (e.g. a torus CGRA, which is
        vertex-transitive within a time step) may return a reduced set here
        to prune equivalent branches; returning ``candidates(label)`` is
        always correct.
        """
        ...


@dataclass
class PatternGraph:
    """The labelled undirected pattern (the scheduled DFG).

    Attributes:
        vertices: pattern vertex ids.
        labels: vertex -> label (the kernel slot in the mapper's use).
        adjacency: vertex -> set of adjacent vertices (undirected).
    """

    vertices: List[int]
    labels: Dict[int, Hashable]
    adjacency: Dict[int, Set[int]]

    @classmethod
    def from_edges(
        cls, labels: Dict[int, Hashable], edges: Iterable[Sequence[int]]
    ) -> "PatternGraph":
        vertices = sorted(labels)
        adjacency: Dict[int, Set[int]] = {v: set() for v in vertices}
        for a, b in edges:
            if a == b:
                continue
            if a not in adjacency or b not in adjacency:
                raise ValueError(f"edge ({a}, {b}) references unknown vertices")
            adjacency[a].add(b)
            adjacency[b].add(a)
        return cls(vertices=vertices, labels=dict(labels), adjacency=adjacency)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.adjacency.values()) // 2

    def degree(self, vertex: int) -> int:
        return len(self.adjacency[vertex])


class ExplicitTargetGraph:
    """A target backed by explicit adjacency sets (tests, small examples)."""

    def __init__(self, labels: Dict[int, Hashable],
                 edges: Iterable[Sequence[int]]) -> None:
        self._labels = dict(labels)
        self._adjacency: Dict[int, Set[int]] = {v: set() for v in self._labels}
        for a, b in edges:
            if a == b:
                continue
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._by_label: Dict[Hashable, List[int]] = {}
        for v, label in self._labels.items():
            self._by_label.setdefault(label, []).append(v)

    def candidates(self, label: Hashable) -> Iterable[int]:
        return list(self._by_label.get(label, ()))

    def seed_candidates(self, label: Hashable) -> Iterable[int]:
        return self.candidates(label)

    def are_adjacent(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, ())

    def neighbors_with_label(self, vertex: int, label: Hashable) -> Iterable[int]:
        return [u for u in self._adjacency.get(vertex, ())
                if self._labels.get(u) == label]

    def label(self, vertex: int) -> Hashable:
        return self._labels[vertex]


@dataclass
class SearchStats:
    """Counters describing one monomorphism search."""

    nodes_explored: int = 0
    backtracks: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False


@dataclass
class SearchOutcome:
    """Result of :meth:`MonomorphismSearch.search`."""

    mapping: Optional[Dict[int, int]]
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return self.mapping is not None

    @property
    def timed_out(self) -> bool:
        return self.stats.timed_out


class MonomorphismSearch:
    """Depth-first monomorphism search with most-constrained-first ordering."""

    def __init__(
        self,
        pattern: PatternGraph,
        target: TargetGraph,
        timeout_seconds: Optional[float] = None,
        use_seed_candidates: bool = True,
        order: Optional[Sequence[int]] = None,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.timeout_seconds = timeout_seconds
        self.use_seed_candidates = use_seed_candidates
        self.order = (
            list(order)
            if order is not None
            else most_constrained_first_order(pattern.vertices, pattern.adjacency)
        )
        if (
            len(self.order) != len(pattern.vertices)
            or set(self.order) != set(pattern.vertices)
        ):
            raise ValueError("ordering must be a permutation of the pattern vertices")

    # ------------------------------------------------------------------ #
    def search(self) -> SearchOutcome:
        """Find one monomorphism, or report failure / timeout."""
        stats = SearchStats()
        start = time.monotonic()
        deadline = start + self.timeout_seconds if self.timeout_seconds else None
        mapping: Dict[int, int] = {}
        used: Set[int] = set()

        def candidates_for(vertex: int, depth: int) -> List[int]:
            label = self.pattern.labels[vertex]
            mapped_neighbors = [
                u for u in self.pattern.adjacency[vertex] if u in mapping
            ]
            if not mapped_neighbors:
                if depth == 0 and self.use_seed_candidates:
                    pool = self.target.seed_candidates(label)
                else:
                    pool = self.target.candidates(label)
                return [c for c in pool if c not in used]
            # start from the neighbourhood of the most recently mapped
            # pattern neighbour and filter by the remaining ones
            anchor = mapped_neighbors[-1]
            pool = self.target.neighbors_with_label(mapping[anchor], label)
            result = []
            for candidate in pool:
                if candidate in used:
                    continue
                ok = True
                for other in mapped_neighbors:
                    if other is anchor:
                        continue
                    if not self.target.are_adjacent(mapping[other], candidate):
                        ok = False
                        break
                if ok:
                    result.append(candidate)
            return result

        def extend(depth: int) -> bool:
            if depth == len(self.order):
                return True
            if deadline is not None and stats.nodes_explored % 256 == 0:
                if time.monotonic() > deadline:
                    stats.timed_out = True
                    return False
            vertex = self.order[depth]
            for candidate in candidates_for(vertex, depth):
                stats.nodes_explored += 1
                mapping[vertex] = candidate
                used.add(candidate)
                if extend(depth + 1):
                    return True
                if stats.timed_out:
                    return False
                del mapping[vertex]
                used.discard(candidate)
                stats.backtracks += 1
            return False

        found = extend(0)
        stats.elapsed_seconds = time.monotonic() - start
        return SearchOutcome(mapping=dict(mapping) if found else None, stats=stats)

    # ------------------------------------------------------------------ #
    def verify(self, mapping: Dict[int, int]) -> List[str]:
        """Check mono1/mono2/mono3 for a given mapping; return violations."""
        violations: List[str] = []
        if set(mapping) != set(self.pattern.vertices):
            violations.append("mapping does not cover all pattern vertices")
        images = list(mapping.values())
        if len(set(images)) != len(images):
            violations.append("mono1 violated: mapping is not injective")
        for vertex, image in mapping.items():
            label = self.pattern.labels[vertex]
            if image not in set(self.target.candidates(label)):
                violations.append(
                    f"mono2 violated: vertex {vertex} (label {label}) "
                    f"mapped to {image}"
                )
        for vertex in self.pattern.vertices:
            for other in self.pattern.adjacency[vertex]:
                if vertex < other and vertex in mapping and other in mapping:
                    if not self.target.are_adjacent(mapping[vertex], mapping[other]):
                        violations.append(
                            f"mono3 violated: edge ({vertex}, {other}) not preserved"
                        )
        return violations


def find_monomorphism(
    pattern: PatternGraph,
    target: TargetGraph,
    timeout_seconds: Optional[float] = None,
    use_seed_candidates: bool = True,
) -> SearchOutcome:
    """Convenience wrapper: build a search object and run it."""
    search = MonomorphismSearch(
        pattern,
        target,
        timeout_seconds=timeout_seconds,
        use_seed_candidates=use_seed_candidates,
    )
    return search.search()
