"""Subgraph monomorphism search.

The space phase of the mapper needs an *injective*, *label-preserving*,
*edge-preserving* function from the labelled DFG into the MRRG (paper
Sec. IV-A, properties mono1/mono2/mono3). This subpackage provides:

* :mod:`repro.matching.monomorphism` -- a VF2-style depth-first search that
  works against any target exposing label-indexed candidates and an
  adjacency oracle (the MRRG implements this implicitly, so the 20x20 CGRA
  never has to be materialised as an explicit graph).
* :mod:`repro.matching.ordering` -- pattern-vertex orderings
  (most-constrained-first, as in RI/VF3).
* :mod:`repro.matching.nx_backend` -- a networkx-based cross-check used by
  the test-suite on small instances.
"""

from repro.matching.monomorphism import (
    MonomorphismSearch,
    PatternGraph,
    ExplicitTargetGraph,
    SearchStats,
    SearchOutcome,
    find_monomorphism,
)
from repro.matching.ordering import most_constrained_first_order, degree_order

__all__ = [
    "MonomorphismSearch",
    "PatternGraph",
    "ExplicitTargetGraph",
    "SearchStats",
    "SearchOutcome",
    "find_monomorphism",
    "most_constrained_first_order",
    "degree_order",
]
