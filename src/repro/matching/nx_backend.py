"""networkx-based monomorphism cross-check.

Only used by the test-suite: on small instances, the result of our own
search (:mod:`repro.matching.monomorphism`) is compared against networkx's
``GraphMatcher`` run in (induced-free) monomorphism mode.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx
from networkx.algorithms import isomorphism

from repro.matching.monomorphism import PatternGraph


def _pattern_to_nx(pattern: PatternGraph) -> nx.Graph:
    graph = nx.Graph()
    for v in pattern.vertices:
        graph.add_node(v, label=pattern.labels[v])
    for v, neighbors in pattern.adjacency.items():
        for u in neighbors:
            if u > v:
                graph.add_edge(v, u)
    return graph


def networkx_monomorphism(
    pattern: PatternGraph, target: nx.Graph
) -> Optional[Dict[int, int]]:
    """Find a label-preserving monomorphism with networkx, or ``None``.

    ``target`` must carry a ``label`` attribute on every node. Note that
    networkx's ``subgraph_monomorphisms_iter`` maps *target* nodes to
    *pattern* nodes, so the returned dictionary is inverted here to match
    the pattern -> target convention used elsewhere.
    """
    pattern_nx = _pattern_to_nx(pattern)
    matcher = isomorphism.GraphMatcher(
        target,
        pattern_nx,
        node_match=lambda t_attrs, p_attrs: t_attrs.get("label") == p_attrs.get("label"),
    )
    for big_to_small in matcher.subgraph_monomorphisms_iter():
        return {pattern_vertex: target_vertex
                for target_vertex, pattern_vertex in big_to_small.items()}
    return None


def count_networkx_monomorphisms(
    pattern: PatternGraph, target: nx.Graph, limit: int = 1000
) -> int:
    """Count (up to ``limit``) distinct monomorphisms; test helper."""
    pattern_nx = _pattern_to_nx(pattern)
    matcher = isomorphism.GraphMatcher(
        target,
        pattern_nx,
        node_match=lambda t_attrs, p_attrs: t_attrs.get("label") == p_attrs.get("label"),
    )
    count = 0
    for _ in matcher.subgraph_monomorphisms_iter():
        count += 1
        if count >= limit:
            break
    return count
