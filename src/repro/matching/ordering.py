"""Pattern-vertex orderings for the monomorphism search.

A good static ordering is the main lever for search performance in
RI / VF3-style matchers: placing highly connected vertices early maximises
the pruning obtained from the adjacency checks. Two orderings are provided;
the mapper uses :func:`most_constrained_first_order` by default and
:func:`degree_order` is kept for ablation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set


def degree_order(vertices: Sequence[int], adjacency: Dict[int, Set[int]]) -> List[int]:
    """Vertices sorted by decreasing degree (ties by vertex id)."""
    return sorted(vertices, key=lambda v: (-len(adjacency.get(v, ())), v))


def most_constrained_first_order(
    vertices: Sequence[int], adjacency: Dict[int, Set[int]]
) -> List[int]:
    """GreatestConstrainedFirst ordering (RI-style).

    Start from the highest-degree vertex; repeatedly append the vertex with
    the most neighbours already in the ordering (so every new vertex is
    maximally constrained when the search reaches it), breaking ties by the
    number of neighbours adjacent to the ordered set's frontier and then by
    total degree. Disconnected components are started again from their
    highest-degree vertex.
    """
    remaining: Set[int] = set(vertices)
    order: List[int] = []
    ordered: Set[int] = set()
    while remaining:
        if not order or all(
            not (adjacency.get(v, set()) & ordered) for v in remaining
        ):
            seed = max(remaining, key=lambda v: (len(adjacency.get(v, ())), -v))
            order.append(seed)
            ordered.add(seed)
            remaining.discard(seed)
            continue
        best = None
        best_key = None
        for v in remaining:
            neighbors = adjacency.get(v, set())
            in_ordered = len(neighbors & ordered)
            if in_ordered == 0:
                continue
            frontier = sum(
                1 for u in neighbors - ordered if adjacency.get(u, set()) & ordered
            )
            key = (in_ordered, frontier, len(neighbors), -v)
            if best_key is None or key > best_key:
                best_key = key
                best = v
        order.append(best)
        ordered.add(best)
        remaining.discard(best)
    return order
