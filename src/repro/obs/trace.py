"""In-process tracing: spans, trace buffers, Chrome trace-event export.

The tracer is a process-global, thread-aware span recorder designed to be
**zero-cost when disabled**: :func:`span` returns a shared null context
manager without allocating anything (no dict, no object) unless tracing
was explicitly enabled via :func:`enable` (typically from ``repro-map map
--trace out.json`` or ``repro-serve start --trace-dir DIR``).

Design points:

* **Monotonic clocks.** Span timestamps come from ``time.monotonic()``;
  each buffer also records a wall-clock *epoch anchor*
  (``time.time() - time.monotonic()``) so buffers captured in different
  processes -- whose monotonic bases are unrelated -- can be merged onto
  one timeline: on :func:`ingest`, child event timestamps are shifted by
  the difference between the child's and the parent's anchors.
* **Thread-local span stacks.** Nesting (parent ids) is tracked per
  thread, so the service daemon's worker threads each build their own
  subtree. A per-thread *trace label* (:func:`push_trace`) tags every
  span opened by that thread, letting the daemon export one job's spans
  without capturing a neighbour's.
* **Chrome trace-event JSON.** :func:`chrome_trace` renders the buffer as
  ``{"traceEvents": [...]}`` with ``ph:"X"`` complete events (ts/dur in
  microseconds) plus ``ph:"M"`` process/thread metadata -- loadable
  directly in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

Hot paths (the CDCL inner loop) are *never* spanned; solver-phase
attribution is synthesized after the fact from ``repro.perf`` counters
via :func:`add_complete`, which appends pre-timed events.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "span",
    "add_complete",
    "instant",
    "push_trace",
    "pop_trace",
    "current_trace",
    "current_trace_id",
    "current_span_id",
    "new_trace_id",
    "format_traceparent",
    "parse_traceparent",
    "snapshot",
    "ingest",
    "events",
    "chrome_trace",
    "write_chrome_trace",
]

# Module-level gate checked before anything is allocated.  Instrumented
# code does ``with trace.span("name", ii=4):`` -- when this is False the
# call returns the shared _NULL_SPAN immediately.
_ENABLED = False

# Keep the buffer bounded so a pathological run (or a long-lived daemon
# with per-job export) cannot grow without limit.
MAX_EVENTS = 200_000

_lock = threading.Lock()
_events: List[Dict[str, Any]] = []
_dropped = 0
_next_span_id = 1
_epoch = 0.0  # wall-clock anchor: time.time() - time.monotonic()

_tls = threading.local()


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def _after_fork_in_child() -> None:
    # forked workers inherit the buffer lock in whatever state the
    # forking moment caught it; give the child a fresh one (children that
    # trace call reset() themselves before recording)
    global _lock
    _lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_after_fork_in_child)


def _stack() -> List[int]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _labels() -> List[Tuple[str, str]]:
    """Per-thread stack of ``(trace label, trace_id)`` frames."""
    labels = getattr(_tls, "labels", None)
    if labels is None:
        labels = _tls.labels = []
    return labels


# ---------------------------------------------------------------------- #
# W3C-style trace context
# ---------------------------------------------------------------------- #
_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def new_trace_id() -> str:
    """Mint a fresh 32-hex (128-bit) trace id."""
    return os.urandom(16).hex()


def format_traceparent(trace_id: str, span_id: int = 0) -> str:
    """Render a ``traceparent`` header value (``00-<trace>-<span>-01``).

    ``span_id`` is the in-process integer span id of the caller's
    currently-open span; it becomes the 16-hex ``parent-id`` field.
    """
    return "00-%s-%016x-01" % (trace_id, span_id & 0xFFFFFFFFFFFFFFFF)


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, int]]:
    """Parse a ``traceparent`` header into ``(trace_id, parent_span_id)``.

    Returns ``None`` for a missing/malformed header or the all-zero
    trace id -- callers then mint a fresh context instead of failing
    the request over a bad correlation hint.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if not match:
        return None
    trace_id, span_hex = match.groups()
    if trace_id == "0" * 32:
        return None
    return trace_id, int(span_hex, 16)


def enabled() -> bool:
    """Whether tracing is currently recording."""
    return _ENABLED


def enable() -> None:
    """Start recording spans into the process-global buffer."""
    global _ENABLED, _epoch
    with _lock:
        if not _events:
            _epoch = time.time() - time.monotonic()
        _ENABLED = True


def disable() -> None:
    """Stop recording; the buffer is kept until :func:`reset`."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop all recorded events and span-id state (tests, per-job reuse).

    Also clears the *calling thread's* span stack and trace labels: a
    forked pool worker inherits both the parent's buffer and the forking
    thread's open-span stack, and must shed them so its own root spans
    re-parent cleanly on :func:`ingest`.
    """
    global _events, _dropped, _next_span_id, _epoch
    with _lock:
        _events = []
        _dropped = 0
        _next_span_id = 1
        _epoch = time.time() - time.monotonic()
    _stack().clear()
    _labels().clear()


def _record(event: Dict[str, Any]) -> None:
    global _dropped
    with _lock:
        if len(_events) >= MAX_EVENTS:
            # drop-oldest, in chunks of ~1% of the cap so sustained
            # overflow costs one list memmove per chunk, not per event
            evicted = min(len(_events), max(1, MAX_EVENTS // 100))
            del _events[:evicted]
            _dropped += evicted
        else:
            evicted = 0
        _events.append(event)
    if evicted:
        # Drop-oldest eviction used to be silent; the counter makes
        # buffer-full a visible signal (repro-serve status surfaces it).
        from . import metrics as _metrics

        _metrics.inc("repro_trace_dropped_spans_total", float(evicted))


class _Span:
    """A live span; records a complete event on ``__exit__``."""

    __slots__ = ("name", "args", "span_id", "parent_id", "trace", "trace_id",
                 "tid", "start")

    def __init__(self, name: str, args: Optional[Dict[str, Any]]) -> None:
        global _next_span_id
        self.name = name
        self.args = args
        with _lock:
            self.span_id = _next_span_id
            _next_span_id += 1
        stack = _stack()
        self.parent_id = stack[-1] if stack else 0
        labels = _labels()
        self.trace, self.trace_id = labels[-1] if labels else ("", "")
        self.tid = threading.get_ident()
        self.start = 0.0

    def __enter__(self) -> "_Span":
        _stack().append(self.span_id)
        self.start = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.monotonic()
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event: Dict[str, Any] = {
            "name": self.name,
            "ph": "X",
            "ts": self.start,
            "dur": end - self.start,
            "sid": self.span_id,
            "parent": self.parent_id,
            "tid": self.tid,
        }
        if self.trace:
            event["trace"] = self.trace
        if self.trace_id:
            event["trace_id"] = self.trace_id
        if self.args:
            event["args"] = self.args
        _record(event)


def span(name: str, **args: Any) -> Any:
    """Open a span: ``with span("ii_attempt", ii=4): ...``.

    Returns the shared null context manager when tracing is disabled --
    no allocation happens on the disabled path.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name, args or None)


def add_complete(
    name: str,
    start: float,
    duration: float,
    parent: Optional[int] = None,
    **args: Any,
) -> int:
    """Append a pre-timed complete event (monotonic ``start`` seconds).

    Used to synthesize child spans from externally measured timings --
    e.g. the profile-gated ``repro.perf`` propagate/analyze/reduce clocks
    become solver-tier spans under the engine span without ever touching
    the CDCL hot loop.  ``parent`` overrides the thread's current span as
    the parent; the new event's span id is returned so callers can build
    small synthesized subtrees.
    """
    if not _ENABLED:
        return 0
    global _next_span_id
    with _lock:
        span_id = _next_span_id
        _next_span_id += 1
    stack = _stack()
    labels = _labels()
    event: Dict[str, Any] = {
        "name": name,
        "ph": "X",
        "ts": start,
        "dur": max(duration, 0.0),
        "sid": span_id,
        "parent": parent if parent is not None else (stack[-1] if stack else 0),
        "tid": threading.get_ident(),
    }
    if labels:
        label, trace_id = labels[-1]
        if label:
            event["trace"] = label
        if trace_id:
            event["trace_id"] = trace_id
    if args:
        event["args"] = args
    _record(event)
    return span_id


def instant(name: str, **args: Any) -> None:
    """Record an instant event (e.g. a streamed improvement)."""
    if not _ENABLED:
        return
    stack = _stack()
    labels = _labels()
    event: Dict[str, Any] = {
        "name": name,
        "ph": "i",
        "ts": time.monotonic(),
        "parent": stack[-1] if stack else 0,
        "tid": threading.get_ident(),
    }
    if labels:
        label, trace_id = labels[-1]
        if label:
            event["trace"] = label
        if trace_id:
            event["trace_id"] = trace_id
    if args:
        event["args"] = args
    _record(event)


def push_trace(label: str, trace_id: str = "") -> None:
    """Tag subsequent spans on this thread with ``label`` (e.g. a job id).

    ``trace_id`` attaches a distributed trace context: every span, instant
    and synthesized event recorded under this frame carries it, and it
    survives :func:`snapshot`/:func:`ingest` across process boundaries.
    When omitted, the enclosing frame's trace id (if any) is inherited, so
    nested job labels stay inside the request's trace.
    """
    labels = _labels()
    if not trace_id and labels:
        trace_id = labels[-1][1]
    labels.append((label, trace_id))


def pop_trace() -> None:
    labels = _labels()
    if labels:
        labels.pop()


def current_trace() -> str:
    """The active per-thread trace label, or ``""``."""
    labels = _labels()
    return labels[-1][0] if labels else ""


def current_trace_id() -> str:
    """The active per-thread distributed trace id, or ``""``."""
    labels = _labels()
    return labels[-1][1] if labels else ""


def current_span_id() -> int:
    """The innermost open span id on this thread, or ``0``."""
    stack = _stack()
    return stack[-1] if stack else 0


def dropped() -> int:
    """Events evicted from the bounded buffer since the last reset."""
    with _lock:
        return _dropped


def snapshot(trace: Optional[str] = None, clear: bool = False) -> Dict[str, Any]:
    """Capture the buffer (optionally one trace's slice) for shipping.

    The snapshot carries the wall-clock epoch anchor so :func:`ingest`
    can align it with the receiving process's timeline.  Workers in the
    batch/portfolio process pools send snapshots back over their result
    pipes; ``clear=True`` removes the captured events from the buffer
    (used when a daemon exports one job's trace).
    """
    with _lock:
        if trace is None:
            captured = list(_events)
            if clear:
                _events.clear()
        else:
            captured = [e for e in _events if e.get("trace") == trace]
            if clear:
                _events[:] = [e for e in _events if e.get("trace") != trace]
        return {
            "epoch": _epoch,
            "events": captured,
            "dropped": _dropped,
            "pid": os.getpid(),
        }


def ingest(snap: Optional[Dict[str, Any]], parent_span_id: int = 0,
           trace: Optional[str] = None,
           trace_id: Optional[str] = None) -> int:
    """Merge a snapshot from another process into this buffer.

    Child timestamps are monotonic in the *child's* clock; shifting by
    the difference of wall-clock anchors places them on this process's
    monotonic timeline.  Root child events (parent 0) are re-parented
    under ``parent_span_id`` so the merged file nests child-process work
    under the span that spawned it.  ``trace``/``trace_id`` re-stamp the
    merged events' label and distributed trace id (events that already
    carry a trace id keep it unless overridden).  Returns the number of
    events merged.
    """
    if not snap:
        return 0
    child_events = snap.get("events") or []
    if not child_events:
        return 0
    shift = float(snap.get("epoch", _epoch)) - _epoch
    global _next_span_id
    with _lock:
        base = _next_span_id
        # Child span ids collide with ours; rebase them into fresh ids.
        max_sid = max((int(e.get("sid", 0)) for e in child_events), default=0)
        _next_span_id += max_sid + 1
    merged = 0
    for event in child_events:
        shifted = dict(event)
        shifted["ts"] = float(event["ts"]) + shift
        if event.get("sid"):
            shifted["sid"] = base + int(event["sid"])
        parent = int(event.get("parent", 0))
        shifted["parent"] = base + parent if parent else parent_span_id
        if trace is not None:
            shifted["trace"] = trace
        if trace_id is not None:
            shifted["trace_id"] = trace_id
        shifted["proc"] = int(snap.get("pid", 0)) or shifted.get("proc", 1)
        _record(shifted)
        merged += 1
    return merged


def events(trace: Optional[str] = None) -> List[Dict[str, Any]]:
    """A copy of the recorded events (optionally one trace's slice)."""
    with _lock:
        if trace is None:
            return list(_events)
        return [e for e in _events if e.get("trace") == trace]


def _iter_chrome(raw: List[Dict[str, Any]], pid: int) -> Iterator[Dict[str, Any]]:
    for event in raw:
        out: Dict[str, Any] = {
            "name": event["name"],
            "ph": event.get("ph", "X"),
            "ts": round(float(event["ts"]) * 1e6, 1),
            "pid": int(event.get("proc", 0)) or pid,
            "tid": int(event.get("tid", 0)),
            "args": dict(event.get("args") or {}),
        }
        if out["ph"] == "X":
            out["dur"] = round(float(event.get("dur", 0.0)) * 1e6, 1)
        if out["ph"] == "i":
            out["s"] = "t"  # thread-scoped instant
        out["args"]["span_id"] = event.get("sid", 0)
        out["args"]["parent_id"] = event.get("parent", 0)
        if event.get("trace"):
            out["args"]["trace"] = event["trace"]
        if event.get("trace_id"):
            out["args"]["trace_id"] = event["trace_id"]
        yield out


def chrome_trace(trace: Optional[str] = None,
                 snap: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Render the buffer (or an explicit snapshot) as Chrome trace JSON."""
    pid = os.getpid()
    if snap is not None:
        raw = snap.get("events") or []
    else:
        raw = events(trace)
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    trace_events.extend(_iter_chrome(raw, pid))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "span_count": len(raw)},
    }


def write_chrome_trace(path: str, trace: Optional[str] = None,
                       snap: Optional[Dict[str, Any]] = None) -> int:
    """Write Chrome trace JSON to ``path``; returns the span count."""
    doc = chrome_trace(trace=trace, snap=snap)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    return int(doc["otherData"]["span_count"])
