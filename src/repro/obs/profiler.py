"""Continuous sampling profiler: folded stacks from ``SIGPROF`` ticks.

A stdlib-only statistical profiler built from two primitives:
``signal.setitimer(signal.ITIMER_PROF, ...)`` delivers ``SIGPROF`` after
the process consumes a slice of CPU time (user + system), and
``sys._current_frames()`` exposes every thread's live Python frame.  On
each tick the handler walks each thread's frame chain and folds it into
a collapsed-stack key -- ``file:func;file:func;...;leaf`` -- counting
samples per unique stack.  That is exactly the input format of
flame-graph tooling (Brendan Gregg's ``flamegraph.pl``, speedscope,
inferno): pipe the rendered text straight in.

Design points:

* **CPU-time driven.** ``ITIMER_PROF`` only fires while the process is
  actually burning CPU, so an idle daemon takes zero samples and the
  overhead budget is spent where the data is.  At the default 100 Hz a
  tick costs a few microseconds of frame walking -- well under the 1%
  overhead ceiling :mod:`benchmarks.bench_obs` enforces.
* **No locks in the handler.** CPython runs signal handlers only in the
  main thread, so the sample table has a single writer; readers take
  atomic ``dict()`` copies under the GIL.  A lock shared with reader
  threads could deadlock the handler against its own thread.
* **Process-local + merged views.** Worker children run their own
  profiler and ship count *deltas* back over the procpool heartbeat
  pipe; the daemon folds them into a merged aggregate via
  :func:`merge`, so ``GET /v1/debug/profile`` windows cover the whole
  process tree.

The profiler is POSIX-only (``SIGPROF``/``setitimer``) and must be
started from the main thread; :func:`start` returns ``False`` instead of
raising where the platform or calling thread cannot host it.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter
from typing import Dict, Optional

__all__ = [
    "start",
    "stop",
    "running",
    "interval",
    "local_counts",
    "cumulative",
    "window",
    "merge",
    "render",
    "reset",
    "DEFAULT_INTERVAL_SECONDS",
]

#: default sampling period -- 100 Hz of *CPU time*
DEFAULT_INTERVAL_SECONDS = 0.01

#: keep at most this many distinct stacks (drop-new past the cap, with a
#: counter, so a pathological workload cannot grow the table unbounded)
MAX_STACKS = 20_000

#: frames deeper than this are truncated from the stack root
MAX_DEPTH = 64

_running = False
_interval = DEFAULT_INTERVAL_SECONDS
_samples: Counter = Counter()          # written only by the signal handler
_overflow = 0
_merged: Counter = Counter()           # external (child) samples
_merged_lock = threading.Lock()
_prev_handler = None
_this_file = __file__


def _after_fork_in_child() -> None:
    # a forked child inherits the sample table and the armed itimer
    # disposition flag, but NOT the itimer itself (fork clears it); make
    # the child's state say so and start from an empty table
    global _running, _samples, _merged, _overflow, _merged_lock
    _running = False
    _samples = Counter()
    _merged = Counter()
    _overflow = 0
    _merged_lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_after_fork_in_child)


def _fold(frame) -> str:
    """Collapse a frame chain into ``root;...;leaf`` (flamegraph input)."""
    parts = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        code = frame.f_code
        filename = code.co_filename
        # the handler's own frames (and the signal trampoline) are noise
        if filename != _this_file:
            parts.append(
                f"{os.path.basename(filename)}:{code.co_name}")
            depth += 1
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


def _handler(signum, frame) -> None:  # noqa: ARG001 - signal signature
    global _overflow
    try:
        frames = sys._current_frames()
    except RuntimeError:  # pragma: no cover - interpreter shutdown
        return
    for thread_frame in frames.values():
        stack = _fold(thread_frame)
        if not stack:
            continue
        if stack not in _samples and len(_samples) >= MAX_STACKS:
            _overflow += 1
            continue
        _samples[stack] += 1


def start(interval_seconds: float = DEFAULT_INTERVAL_SECONDS) -> bool:
    """Arm the profiler; returns ``True`` iff sampling is now active.

    ``False`` means the platform lacks ``setitimer``/``SIGPROF``, the
    caller is not the main thread (CPython refuses the handler install),
    or ``interval_seconds`` is non-positive (the documented way to
    disable profiling from a config knob).
    """
    global _running, _interval, _prev_handler
    import signal

    if interval_seconds <= 0:
        return False
    if not hasattr(signal, "setitimer") or not hasattr(signal, "SIGPROF"):
        return False  # pragma: no cover - non-POSIX
    if threading.current_thread() is not threading.main_thread():
        return False
    if _running:
        return True
    try:
        _prev_handler = signal.signal(signal.SIGPROF, _handler)
        signal.setitimer(signal.ITIMER_PROF, interval_seconds,
                         interval_seconds)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        return False
    _interval = interval_seconds
    _running = True
    return True


def stop() -> None:
    """Disarm the itimer and restore the previous ``SIGPROF`` handler."""
    global _running, _prev_handler
    import signal

    if not _running:
        return
    try:
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        if _prev_handler is not None:
            signal.signal(signal.SIGPROF, _prev_handler)
    except (OSError, ValueError):  # pragma: no cover
        pass
    _prev_handler = None
    _running = False


def running() -> bool:
    return _running


def interval() -> float:
    """The active sampling period in seconds."""
    return _interval


def local_counts() -> Dict[str, int]:
    """This process's own cumulative ``{stack: samples}`` table."""
    # dict() of a dict is a single C-level copy: atomic under the GIL
    # against the handler's single-writer updates
    return dict(_samples)


def cumulative() -> Dict[str, int]:
    """Local samples plus everything :func:`merge`-d from children."""
    combined = Counter(_samples)
    with _merged_lock:
        combined.update(_merged)
    return dict(combined)


def window(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """``after - before`` for two counts snapshots.

    Used both by the child heartbeat shipper (delta vs. the last
    shipment) and by the ``/v1/debug/profile?seconds=N`` window (delta
    across the sleep).
    """
    out = Counter(after)
    for stack, count in before.items():
        out[stack] -= count
    return {stack: count for stack, count in out.items() if count > 0}


def merge(counts: Optional[Dict[str, int]]) -> int:
    """Fold a child's shipped sample delta into the merged aggregate."""
    if not counts:
        return 0
    added = 0
    with _merged_lock:
        for stack, count in counts.items():
            if not isinstance(stack, str):
                continue
            try:
                count = int(count)
            except (TypeError, ValueError):
                continue
            if count > 0:
                _merged[stack] += count
                added += count
    return added


def render(counts: Optional[Dict[str, int]] = None) -> str:
    """Collapsed-stack text: one ``stack count`` line, busiest first.

    The output is directly consumable by flamegraph.pl / speedscope;
    an empty table renders as ``""``.
    """
    if counts is None:
        counts = cumulative()
    lines = [f"{stack} {count}" for stack, count in
             sorted(counts.items(), key=lambda item: (-item[1], item[0]))]
    return "\n".join(lines) + ("\n" if lines else "")


def reset() -> None:
    """Clear all sample state (tests)."""
    global _samples, _merged, _overflow
    _samples = Counter()
    with _merged_lock:
        _merged = Counter()
    _overflow = 0
