"""Process-global metrics registry with Prometheus text exposition.

Counters, gauges, and histograms keyed by ``(name, sorted label items)``.
Unlike tracing, the registry is **always on**: incrementing a counter is
a dict update with a tuple key -- cheap enough for every call site here
(engine runs, store lookups, job transitions; never the CDCL loop).
What *is* gated is label-dict allocation on hot-ish paths: callers pass
labels as keyword arguments only when they have them.

:func:`render` produces the Prometheus text exposition format
(https://prometheus.io/docs/instrumenting/exposition_formats/) served by
the daemon's ``GET /metrics``; :func:`snapshot` returns plain dicts for
tests and the ``repro-map map --metrics`` summary table.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "inc",
    "set_gauge",
    "observe",
    "describe",
    "render",
    "snapshot",
    "dump",
    "merge_dump",
    "reset",
]

_LabelKey = Tuple[Tuple[str, str], ...]

_lock = threading.Lock()
_counters: Dict[Tuple[str, _LabelKey], float] = {}
_gauges: Dict[Tuple[str, _LabelKey], float] = {}
_hist_sum: Dict[Tuple[str, _LabelKey], float] = {}
_hist_count: Dict[Tuple[str, _LabelKey], int] = {}
_hist_buckets: Dict[Tuple[str, _LabelKey], List[int]] = {}

# Shared latency bucket bounds (seconds) for every histogram; small-run
# mapping attempts live in the 1ms..60s band.
BUCKET_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0,
)

_HELP: Dict[str, str] = {}
_TYPE: Dict[str, str] = {}


def _after_fork_in_child() -> None:
    # a service worker can fork while another thread holds the registry
    # lock; the child must get a fresh, unlocked one or its first metric
    # call deadlocks (its copied series are private and harmless)
    global _lock
    _lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_after_fork_in_child)


def describe(name: str, kind: str, help_text: str) -> None:
    """Register HELP/TYPE metadata for a metric name."""
    _HELP[name] = help_text
    _TYPE[name] = kind


def _key(name: str, labels: Dict[str, object]) -> Tuple[str, _LabelKey]:
    if not labels:
        return name, ()
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def inc(name: str, value: float = 1.0, **labels: object) -> None:
    """Add ``value`` to a counter."""
    key = _key(name, labels)
    with _lock:
        _counters[key] = _counters.get(key, 0.0) + value


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge to ``value``."""
    key = _key(name, labels)
    with _lock:
        _gauges[key] = float(value)


def observe(name: str, value: float, **labels: object) -> None:
    """Record ``value`` into a histogram (sum/count/cumulative buckets)."""
    key = _key(name, labels)
    with _lock:
        _hist_sum[key] = _hist_sum.get(key, 0.0) + value
        _hist_count[key] = _hist_count.get(key, 0) + 1
        buckets = _hist_buckets.get(key)
        if buckets is None:
            buckets = _hist_buckets[key] = [0] * (len(BUCKET_BOUNDS) + 1)
        for index, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                buckets[index] += 1
        buckets[-1] += 1  # +Inf


def reset() -> None:
    """Clear every series (tests)."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _hist_sum.clear()
        _hist_count.clear()
        _hist_buckets.clear()


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    items: Iterable[Tuple[str, str]] = labels if extra is None else (*labels, extra)
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}" if body else ""


def _emit_header(lines: List[str], name: str, default_type: str) -> None:
    help_text = _HELP.get(name)
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {_TYPE.get(name, default_type)}")


def render() -> str:
    """The registry in Prometheus text exposition format."""
    with _lock:
        counters = dict(_counters)
        gauges = dict(_gauges)
        hist_sum = dict(_hist_sum)
        hist_count = dict(_hist_count)
        hist_buckets = {k: list(v) for k, v in _hist_buckets.items()}

    lines: List[str] = []
    emitted = set()
    for family, default_type in ((counters, "counter"), (gauges, "gauge")):
        seen = set()
        for (name, labels) in sorted(family):
            if name not in seen:
                seen.add(name)
                emitted.add(name)
                _emit_header(lines, name, default_type)
            value = family[(name, labels)]
            lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")

    seen = set()
    for (name, labels) in sorted(hist_sum):
        if name not in seen:
            seen.add(name)
            emitted.add(name)
            _emit_header(lines, name, "histogram")
        buckets = hist_buckets[(name, labels)]
        for index, bound in enumerate(BUCKET_BOUNDS):
            label = _format_labels(labels, ("le", _format_value(bound)))
            lines.append(f"{name}_bucket{label} {buckets[index]}")
        inf_label = _format_labels(labels, ("le", "+Inf"))
        lines.append(f"{name}_bucket{inf_label} {buckets[-1]}")
        lines.append(
            f"{name}_sum{_format_labels(labels)} "
            f"{_format_value(hist_sum[(name, labels)])}"
        )
        lines.append(
            f"{name}_count{_format_labels(labels)} {hist_count[(name, labels)]}"
        )

    # Described families with no samples yet still advertise HELP/TYPE,
    # so a fresh daemon's /metrics already exposes the full inventory.
    for name in sorted(set(_HELP) - emitted):
        _emit_header(lines, name, "untyped")
    return "\n".join(lines) + "\n"


def dump() -> Dict[str, object]:
    """Raw, picklable registry state for cross-process aggregation.

    Worker children call this at the end of a job (after a job-start
    :func:`reset`, so it is a per-job delta) and ship it over the result
    pipe; the parent folds it in with :func:`merge_dump`, making the
    daemon's ``/metrics`` reflect engine-side series (latency
    histograms, engine counters) that are otherwise trapped in the
    child's registry. Gauges are process-local and excluded.
    """
    with _lock:
        return {
            "counters": dict(_counters),
            "hist_sum": dict(_hist_sum),
            "hist_count": dict(_hist_count),
            "hist_buckets": {k: list(v) for k, v in _hist_buckets.items()},
        }


def merge_dump(data: Optional[Dict[str, object]]) -> None:
    """Fold another process's :func:`dump` into this registry."""
    if not data:
        return
    with _lock:
        for key, value in (data.get("counters") or {}).items():
            _counters[key] = _counters.get(key, 0.0) + float(value)
        for key, value in (data.get("hist_sum") or {}).items():
            _hist_sum[key] = _hist_sum.get(key, 0.0) + float(value)
        for key, value in (data.get("hist_count") or {}).items():
            _hist_count[key] = _hist_count.get(key, 0) + int(value)
        for key, buckets in (data.get("hist_buckets") or {}).items():
            mine = _hist_buckets.get(key)
            if mine is None:
                _hist_buckets[key] = list(buckets)
            else:
                for index in range(min(len(mine), len(buckets))):
                    mine[index] += buckets[index]


def snapshot() -> Dict[str, Dict[str, float]]:
    """Plain-dict view: ``{metric: {label_string_or "": value}}``.

    Histograms are folded to ``name_sum`` / ``name_count`` entries.
    """
    out: Dict[str, Dict[str, float]] = {}
    with _lock:
        for (name, labels), value in _counters.items():
            out.setdefault(name, {})[_format_labels(labels)] = value
        for (name, labels), value in _gauges.items():
            out.setdefault(name, {})[_format_labels(labels)] = value
        for (name, labels), value in _hist_sum.items():
            out.setdefault(name + "_sum", {})[_format_labels(labels)] = value
        for (name, labels), count in _hist_count.items():
            out.setdefault(name + "_count", {})[_format_labels(labels)] = count
    return out


# ------------------------------------------------------------------ #
# Metric name inventory (described up front so /metrics always carries
# HELP/TYPE headers; see docs/observability.md for the full table)
# ------------------------------------------------------------------ #
describe("repro_engine_runs_total", "counter",
         "Engine map() calls by engine and outcome status.")
describe("repro_engine_seconds_total", "counter",
         "Wall-clock seconds spent in engine map() calls, by engine and phase.")
describe("repro_ii_attempt_seconds", "histogram",
         "Latency of individual II attempts, by engine.")
describe("repro_solver_tier_selected_total", "counter",
         "Native-kernel tier selections by resolved tier.")
describe("repro_solver_tier_degradations_total", "counter",
         "Requested native tier unavailable; fell back to a lower tier.")
describe("repro_store_hits_total", "counter",
         "Content-addressed store lookups that found a record.")
describe("repro_store_misses_total", "counter",
         "Content-addressed store lookups that found nothing.")
describe("repro_store_records", "gauge",
         "Records currently held by the result store.")
describe("repro_store_shards", "gauge",
         "Shard files backing the result store.")
describe("repro_store_skipped_lines_total", "counter",
         "Malformed or torn store lines skipped during load.")
describe("repro_service_jobs_total", "counter",
         "Service jobs by terminal status (hit/done/failed/cancelled).")
describe("repro_service_queue_depth", "gauge",
         "Jobs waiting in the service queue right now.")
describe("repro_service_fabric_cache_hits_total", "counter",
         "Worker-pool warm-fabric cache hits.")
describe("repro_http_requests_total", "counter",
         "HTTP requests served by the daemon, by method and route.")
describe("repro_batch_cases_total", "counter",
         "Batch-runner cases by outcome (ok/error/timeout/cache_hit).")
describe("repro_worker_crashes_total", "counter",
         "Service worker-process deaths by reason "
         "(crashed/stalled/hard_timeout).")
describe("repro_worker_restarts_total", "counter",
         "Service worker processes restarted by the supervisor.")
describe("repro_job_retries_total", "counter",
         "Service jobs requeued after a worker crash, by crash reason.")
describe("repro_backend_demotions_total", "counter",
         "Solver-backend demotions after repeated crashes on one job.")
describe("repro_service_degraded", "gauge",
         "1 when the process pool is unhealthy and jobs run in-thread.")
describe("repro_store_size_bytes", "gauge",
         "Total bytes held by the result store's files.")
describe("repro_journal_jobs_total", "counter",
         "Queued jobs checkpointed to / recovered from the drain journal.")
describe("repro_trace_dropped_spans_total", "counter",
         "Trace events evicted (drop-oldest) by the bounded span buffer.")
describe("repro_profile_samples_total", "counter",
         "Sampling-profiler stack samples aggregated by the daemon.")
