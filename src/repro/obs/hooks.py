"""Shared instrumentation hooks for the mapping engines.

Every engine's ``map()`` funnels through the same three hooks so the
span taxonomy, metric labels, and log-record shape cannot drift between
engines:

* :func:`engine_span` -- the root ``engine.map`` span;
* :func:`record_ii_attempt` -- the per-II latency histogram;
* :func:`finish_engine_run` -- terminal counters, the structured
  ``engine_run`` log record, and (under ``--profile`` + ``--trace``)
  synthesized solver-tier child spans from the :mod:`repro.perf`
  propagate/analyze/reduce attribution -- the CDCL loop itself is never
  spanned.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.obs import logjson, metrics, trace

__all__ = ["engine_span", "record_ii_attempt", "finish_engine_run"]


def engine_span(engine: str, **args: Any) -> Any:
    """The root span for one engine ``map()`` call."""
    return trace.span("engine.map", engine=engine, **args)


def record_ii_attempt(engine: str, seconds: float) -> None:
    """One II attempt finished; record its latency."""
    metrics.observe("repro_ii_attempt_seconds", seconds, engine=engine)


def _synthesize_solver_spans(perf: Any, end: float) -> None:
    """Turn profile-gated solver timings into child spans.

    The detailed propagate/analyze/reduce clocks are accumulated *inside*
    ``SATSolver.solve`` without any span machinery; here -- once per
    engine run, on the cold path -- they become complete events laid out
    sequentially inside a ``solver:<tier>`` parent so the exported trace
    shows CLI -> engine -> solver-tier nesting.  Timestamps are placed at
    the end of the run (total durations are faithful; interleaving within
    the solve window is not recorded and not claimed).
    """
    solve = getattr(perf, "solve_seconds", 0.0)
    if solve <= 0.0:
        return
    tier = perf.extra.get("solver_tier") or perf.extra.get("backend") or "sat"
    start = end - solve
    parent = trace.add_complete(
        f"solver:{tier}", start, solve,
        solve_calls=perf.solve_calls,
        conflicts=perf.conflicts,
        propagations=perf.propagations,
    )
    cursor = start
    for phase in ("propagate", "analyze", "reduce"):
        seconds = getattr(perf, f"{phase}_seconds", 0.0)
        if seconds <= 0.0:
            continue
        trace.add_complete(phase, cursor, seconds, parent=parent)
        cursor += seconds


def finish_engine_run(
    engine: str,
    result: Any,
    started: float,
    perf: Optional[Any] = None,
) -> None:
    """Terminal bookkeeping for one engine run (any outcome)."""
    status = str(result.status)
    metrics.inc("repro_engine_runs_total", engine=engine, status=status)
    metrics.inc("repro_engine_seconds_total", result.total_seconds,
                engine=engine, phase="total")
    if result.time_phase_seconds:
        metrics.inc("repro_engine_seconds_total", result.time_phase_seconds,
                    engine=engine, phase="time")
    if result.space_phase_seconds:
        metrics.inc("repro_engine_seconds_total", result.space_phase_seconds,
                    engine=engine, phase="space")
    if trace.enabled() and perf is not None and getattr(perf, "detailed", False):
        _synthesize_solver_spans(perf, time.monotonic())
    stats = result.stats if isinstance(result.stats, dict) else {}
    logjson.log(
        "engine_run",
        engine=engine,
        status=status,
        ii=result.ii,
        mii=result.mii,
        iis_tried=result.iis_tried,
        schedules_tried=result.schedules_tried,
        total_seconds=round(result.total_seconds, 6),
        tier=stats.get("solver_tier"),
        trace=trace.current_trace() or None,
        trace_id=trace.current_trace_id() or None,
        elapsed=round(time.monotonic() - started, 6),
    )
