"""Opt-in structured JSONL run log.

One JSON object per line, one record per interesting event (HTTP request,
job transition, engine attempt, store warning), each carrying a
``record`` type tag, a wall-clock ``ts``, and whatever fields the caller
attaches (trace id, job id, approach, tier, outcome, ...).

Disabled by default: :func:`log` is a no-op until :func:`configure` sets
a path, either programmatically (``repro-map map --log-json run.jsonl``)
or via the ``REPRO_LOG_JSON`` environment variable (picked up once, at
first use).  Each record is written and flushed atomically under a lock
so daemon worker threads interleave whole lines, never fragments.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, IO, Optional

__all__ = ["configure", "configured", "log", "close"]

ENV_VAR = "REPRO_LOG_JSON"

_lock = threading.Lock()
_handle: Optional[IO[str]] = None
_path: Optional[str] = None
_env_checked = False


def _after_fork_in_child() -> None:
    # a forked worker shares the parent's file offset through the
    # inherited handle; drop it (and take a fresh lock) so only the
    # parent process ever writes the run log
    global _lock, _handle, _path, _env_checked
    _lock = threading.Lock()
    _handle = None
    _path = None
    _env_checked = True


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_after_fork_in_child)


def configure(path: Optional[str]) -> None:
    """Open (append) the run log at ``path``; ``None`` turns logging off."""
    global _handle, _path, _env_checked
    with _lock:
        if _handle is not None:
            try:
                _handle.close()
            except OSError:
                pass
        _handle = None
        _path = None
        _env_checked = True  # explicit configure wins over the env var
        if path:
            _handle = open(path, "a", encoding="utf-8")
            _path = path


def configured() -> Optional[str]:
    """The active log path, or ``None``."""
    _maybe_env()
    return _path


def _maybe_env() -> None:
    global _env_checked
    if _env_checked:
        return
    with _lock:
        if _env_checked:
            return
        _env_checked = True
    path = os.environ.get(ENV_VAR)
    if path:
        configure(path)


def log(record: str, **fields: Any) -> None:
    """Append one structured record; no-op when unconfigured."""
    _maybe_env()
    if _handle is None:
        return
    payload = {"record": record, "ts": round(time.time(), 6)}
    payload.update(fields)
    line = json.dumps(payload, sort_keys=True, default=str)
    with _lock:
        if _handle is None:
            return
        _handle.write(line + "\n")
        _handle.flush()


def close() -> None:
    """Close the log (tests; daemons on shutdown)."""
    configure(None)
