"""Opt-in structured JSONL run log.

One JSON object per line, one record per interesting event (HTTP request,
job transition, engine attempt, store warning), each carrying a
``record`` type tag, a wall-clock ``ts``, and whatever fields the caller
attaches (trace id, job id, approach, tier, outcome, ...).

Disabled by default: :func:`log` is a no-op until :func:`configure` sets
a path, either programmatically (``repro-map map --log-json run.jsonl``)
or via the ``REPRO_LOG_JSON`` environment variable (picked up once, at
first use).  Each record is written and flushed atomically under a lock
so daemon worker threads interleave whole lines, never fragments.

Forked children never write the file (they would share the parent's
file offset); instead a child that wants its records kept -- the
procpool worker around an engine run -- brackets the work with
:func:`capture_begin`/:func:`capture_end` and ships the captured
records back over its result pipe for the parent to :func:`emit`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, IO, List, Optional

__all__ = ["configure", "configured", "log", "emit", "capture_begin",
           "capture_end", "close"]

ENV_VAR = "REPRO_LOG_JSON"

_lock = threading.Lock()
_handle: Optional[IO[str]] = None
_path: Optional[str] = None
_env_checked = False
_capture: Optional[List[Dict[str, Any]]] = None


def _after_fork_in_child() -> None:
    # a forked worker shares the parent's file offset through the
    # inherited handle; drop it (and take a fresh lock) so only the
    # parent process ever writes the run log
    global _lock, _handle, _path, _env_checked, _capture
    _lock = threading.Lock()
    _handle = None
    _path = None
    _env_checked = True
    _capture = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_after_fork_in_child)


def configure(path: Optional[str]) -> None:
    """Open (append) the run log at ``path``; ``None`` turns logging off."""
    global _handle, _path, _env_checked
    with _lock:
        if _handle is not None:
            try:
                _handle.close()
            except OSError:
                pass
        _handle = None
        _path = None
        _env_checked = True  # explicit configure wins over the env var
        if path:
            _handle = open(path, "a", encoding="utf-8")
            _path = path


def configured() -> Optional[str]:
    """The active log path, or ``None``."""
    _maybe_env()
    return _path


def _maybe_env() -> None:
    global _env_checked
    if _env_checked:
        return
    with _lock:
        if _env_checked:
            return
        _env_checked = True
    path = os.environ.get(ENV_VAR)
    if path:
        configure(path)


def capture_begin() -> None:
    """Start buffering records in memory instead of dropping them.

    Used by worker children (where the file handle is deliberately
    absent): the captured list is shipped back over the job pipe and the
    parent writes it via :func:`emit`, re-stamped with the job's ids.
    """
    global _capture
    _capture = []


def capture_end() -> List[Dict[str, Any]]:
    """Stop capturing; returns the buffered records."""
    global _capture
    captured, _capture = _capture, None
    return captured or []


def log(record: str, **fields: Any) -> None:
    """Append one structured record; no-op when unconfigured."""
    if _capture is None:
        _maybe_env()
        if _handle is None:
            return
    payload = {"record": record, "ts": round(time.time(), 6)}
    payload.update(fields)
    emit(payload)


def emit(payload: Dict[str, Any]) -> None:
    """Append a pre-built record dict (capture-aware, like :func:`log`)."""
    if _capture is not None:
        _capture.append(dict(payload))
        return
    _maybe_env()
    if _handle is None:
        return
    line = json.dumps(payload, sort_keys=True, default=str)
    with _lock:
        if _handle is None:
            return
        _handle.write(line + "\n")
        _handle.flush()


def close() -> None:
    """Close the log (tests; daemons on shutdown)."""
    configure(None)
