"""``repro.obs`` -- tracing, metrics, logging, and profiling.

Four stdlib-only pillars, each independently opt-in:

* :mod:`repro.obs.trace` -- context-manager spans over monotonic clocks,
  merged across process boundaries, stamped with a W3C-style distributed
  ``trace_id``, exported as Chrome trace-event JSON (``repro-map map
  --trace out.json``, viewable in Perfetto).
* :mod:`repro.obs.metrics` -- a process-global counter/gauge/histogram
  registry rendered as Prometheus text (``GET /metrics`` on the daemon,
  ``repro-map map --metrics`` locally).
* :mod:`repro.obs.logjson` -- an opt-in JSONL run log
  (``REPRO_LOG_JSON=path`` / ``--log-json path``), one record per
  request/job/engine attempt.
* :mod:`repro.obs.profiler` -- a ``SIGPROF`` sampling profiler producing
  collapsed-stack flame-graph text (``GET /v1/debug/profile`` on the
  daemon, ``repro-map profile --sample`` locally).

See docs/observability.md for the span taxonomy, metric inventory, and
log-record schema.
"""

from repro.obs import logjson, metrics, profiler, trace

__all__ = ["trace", "metrics", "logjson", "profiler"]
